"""COVID-19 before/after analysis (paper §4 and Figure 4).

Splits the Shanghai/Guangzhou pollutant dataset at the lockdown date, mines
both halves with the same parameters, and shows that "activity changes
affect not only the amounts of air pollutants but also their correlation
patterns": traffic-driven patterns (NO₂/CO/PM) vanish, background patterns
(SO₂/O₃) survive.

Run:
    python examples/covid19_before_after.py [output-dir]
"""

from __future__ import annotations

import sys
from datetime import datetime
from pathlib import Path

from repro import (
    CapReport,
    compare_periods,
    generate_covid19,
    recommended_parameters,
    render_map,
)

LOCKDOWN = datetime(2020, 1, 23)


def describe_caps(label: str, caps) -> None:
    print(f"\n{label}: {len(caps)} CAPs")
    for cap in caps[:6]:
        attrs = ", ".join(sorted(cap.attributes))
        cities = {sid.split("-")[1] for sid in cap.sensor_ids}
        print(f"  support={cap.support:3d}  {{{attrs}}}  in {'/'.join(sorted(cities))}")


def main(output_dir: str = "covid_output") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    dataset = generate_covid19(seed=0)
    params = recommended_parameters("covid19")
    comparison = compare_periods(dataset, LOCKDOWN, params)

    print(f"split at {LOCKDOWN:%Y-%m-%d} "
          f"(lockdown in Wuhan announced; activity collapse follows)")
    describe_caps("BEFORE lockdown", comparison.before.caps)
    describe_caps("AFTER lockdown", comparison.after.caps)

    print("\npattern diff:")
    print(f"  vanished: {len(comparison.vanished)}")
    print(f"  appeared: {len(comparison.appeared)}")
    print(f"  survived: {len(comparison.survived)}")

    print("\nmean level shift per attribute (after − before):")
    for attribute, shift in sorted(comparison.level_shifts().items()):
        print(f"  {attribute:>5s}: {shift:+8.2f}")

    # Figure-4 style panels: the same map, before-pattern vs after-pattern.
    if comparison.vanished:
        render_map(
            dataset, highlighted_sensors=comparison.vanished[0].sensor_ids,
            dim_unhighlighted=True,
            title="(a) Before: a traffic-pollutant CAP",
        ).save(str(out / "fig4_before.svg"))
    survivors = comparison.after.caps
    if survivors:
        render_map(
            dataset, highlighted_sensors=survivors[0].sensor_ids,
            dim_unhighlighted=True,
            title="(b) After: only background-pollutant CAPs remain",
        ).save(str(out / "fig4_after.svg"))

    CapReport(
        dataset.slice_time(dataset.timeline[0], LOCKDOWN, name="covid:before"),
        comparison.before, max_caps=4,
    ).save_html(out / "covid_before_report.html")
    CapReport(
        dataset.slice_time(LOCKDOWN, dataset.timeline[-1] + dataset.interval,
                           name="covid:after"),
        comparison.after, max_caps=4,
    ).save_html(out / "covid_after_report.html")
    print(f"\nwrote fig4_before.svg, fig4_after.svg and two reports under {out}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
