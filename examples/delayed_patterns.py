"""Time-delayed CAP mining (the DPD 2020 extension).

Simultaneous co-evolution misses cause-and-effect chains: traffic builds up
*then* NO₂ rises a couple of hours later.  The delayed miner assigns each
sensor a lag within δ and finds patterns whose members co-evolve at their
lagged timestamps.

This example builds a small scenario with a known 2-step lag between
traffic and NO₂, shows that the simultaneous miner misses it, and that the
delayed miner recovers both the pattern and the lag.

Run:
    python examples/delayed_patterns.py
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np

from repro import MiningParameters, MiscelaMiner, Sensor, SensorDataset


def build_lagged_city(lag_steps: int = 2, n: int = 200, seed: int = 4) -> SensorDataset:
    """Three sensors: traffic drives NO₂ after ``lag_steps``; O₃ independent."""
    rng = np.random.default_rng(seed)
    timeline = [datetime(2018, 6, 1) + timedelta(hours=i) for i in range(n)]
    jumps = np.where(rng.random(n) < 0.10, rng.choice([-6.0, 6.0], n), 0.0)
    jumps[0] = 0.0

    traffic = 120.0 + np.cumsum(jumps) + rng.normal(0, 0.1, n)
    lagged = np.zeros(n)
    lagged[lag_steps:] = np.cumsum(jumps)[:-lag_steps]
    no2 = 35.0 + 0.8 * lagged + rng.normal(0, 0.1, n)
    o3_jumps = np.where(rng.random(n) < 0.10, rng.choice([-6.0, 6.0], n), 0.0)
    o3_jumps[0] = 0.0
    o3 = 45.0 + np.cumsum(o3_jumps) + rng.normal(0, 0.1, n)

    sensors = [
        Sensor("traffic", "traffic_volume", 31.2304, 121.4737),
        Sensor("no2", "no2", 31.2310, 121.4742),
        Sensor("o3", "o3", 31.2299, 121.4731),
    ]
    return SensorDataset(
        "lagged-city", timeline, sensors,
        {"traffic": traffic, "no2": no2, "o3": o3},
    )


def main() -> None:
    dataset = build_lagged_city(lag_steps=2)
    base = dict(
        evolving_rate=3.0, distance_threshold=1.0, max_attributes=2, min_support=8
    )

    simultaneous = MiscelaMiner(MiningParameters(**base)).mine(dataset)
    print("simultaneous mining (δ=0):")
    print(f"  {simultaneous.num_caps} CAPs")
    for cap in simultaneous.caps:
        print(f"    {sorted(cap.sensor_ids)} support={cap.support}")

    delayed = MiscelaMiner(MiningParameters(**base, max_delay=3)).mine(dataset)
    print("\ndelayed mining (δ=3):")
    print(f"  {delayed.num_caps} CAPs")
    for cap in delayed.caps:
        lags = {sid: f"+{d}" for sid, d in sorted(cap.delays.items())}
        print(f"    {sorted(cap.sensor_ids)} support={cap.support} lags={lags}")

    traffic_no2 = [c for c in delayed.caps if c.sensor_ids == {"traffic", "no2"}]
    assert traffic_no2, "delayed miner should recover the traffic→no2 pattern"
    recovered = traffic_no2[0]
    print(f"\nrecovered lag: no2 reacts {recovered.delays['no2']} steps "
          f"after traffic (ground truth: 2)")


if __name__ == "__main__":
    main()
