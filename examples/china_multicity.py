"""Multi-city analysis (paper §4, "China dataset").

Reproduces the country-scale scenario: stations are correlated with their
east–west neighbours (pollution rides the prevailing wind) but *not* with
their north–south neighbours, even though both are equally close.  The paper
uses this to show the system "supports understanding reasons why sensors are
correlated and not correlated".

Run:
    python examples/china_multicity.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import (
    MiscelaMiner,
    axis_correlation_report,
    generate_china6,
    recommended_parameters,
    render_map,
)
from repro.analysis.statistics import pairwise_co_evolution


def main(output_dir: str = "china_output") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    dataset = generate_china6(seed=5)
    params = recommended_parameters("china6")
    result = MiscelaMiner(params).mine(dataset)
    print(f"{result.num_caps} CAPs across {len(dataset)} sensors "
          f"({dataset.name}, {dataset.num_timestamps} timestamps)")

    # The headline claim: CAP sensor pairs ≥10 km apart skew east–west.
    report = axis_correlation_report(dataset, result.caps, min_km=10.0)
    total = sum(report.values()) or 1
    print("\ncross-station CAP pairs by geographic axis:")
    for axis, count in report.items():
        print(f"  {axis:>12s}: {count:4d}  ({100.0 * count / total:.0f}%)")

    # Drill in like an attendee would: one station's PM2.5 against its
    # east and north neighbours.
    probe, east, north = "china6-r1c1-pm25", "china6-r1c2-pm25", "china6-r0c1-pm25"
    rates = pairwise_co_evolution(dataset, result.evolving, [probe, east, north])
    print(f"\nco-evolution rate {probe} ↔ east neighbour:  "
          f"{rates[tuple(sorted((probe, east)))]:.2f}")
    print(f"co-evolution rate {probe} ↔ north neighbour: "
          f"{rates[tuple(sorted((probe, north)))]:.2f}")

    # Map with one wind-corridor CAP highlighted.
    corridor = next(
        (cap for cap in result.caps
         if any(dataset.sensor(a).distance_km(dataset.sensor(b)) > 10.0
                for a in cap.sensor_ids for b in cap.sensor_ids)),
        result.caps[0],
    )
    render_map(
        dataset, highlighted_sensors=corridor.sensor_ids, dim_unhighlighted=True,
        adjacency=result.adjacency,
        title="A wind-corridor CAP: east-west correlated stations",
    ).save(str(out / "china_corridor_map.svg"))
    print(f"\nwrote {out}/china_corridor_map.svg")


if __name__ == "__main__":
    main(*sys.argv[1:2])
