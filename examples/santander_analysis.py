"""Single-city analysis (paper §4, "Santander dataset").

Reproduces the demo's city-scale scenario: find the traffic↔temperature
and light↔temperature correlations the paper highlights (its Figure 1),
check where they sit on the map, and sweep ψ to see how pattern counts react
— the interactive loop an attendee would drive through the UI, as a script.

Run:
    python examples/santander_analysis.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import (
    CapReport,
    MiscelaMiner,
    attribute_pair_counts,
    cap_summary,
    generate_santander,
    recommended_parameters,
    render_cap_timeseries,
    render_map,
    sweep,
)


def main(output_dir: str = "santander_output") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    dataset = generate_santander(seed=3)
    params = recommended_parameters("santander")
    result = MiscelaMiner(params).mine(dataset)

    print(f"{result.num_caps} CAPs in {dataset.name}")
    print("summary:", cap_summary(result.caps))

    # Which attribute combinations correlate, and how often?  The paper:
    # "we can find correlated patterns among temperatures and traffic
    # volumes and among light and temperature".
    print("\nattribute-pair pattern counts:")
    for (a, b), count in attribute_pair_counts(result.caps).most_common():
        print(f"  {a:>14s} × {b:<14s} {count}")

    # The Figure-1 pattern: traffic volume + temperature.
    fig1 = next(
        cap for cap in result.caps
        if cap.attributes >= {"traffic_volume", "temperature"}
    )
    print(f"\nFigure-1-style CAP: sensors={sorted(fig1.sensor_ids)} "
          f"support={fig1.support}")

    # Panel (a): sensor locations, the pattern highlighted.
    render_map(
        dataset, highlighted_sensors=fig1.sensor_ids, dim_unhighlighted=True,
        title="Traffic volume × temperature CAP (cf. paper Fig. 1a)",
    ).save(str(out / "fig1_map.svg"))

    # Panel (b): the co-evolving measurements.
    render_cap_timeseries(dataset, fig1).save(str(out / "fig1_series.svg"))

    # Interactive parameter exploration: the ψ dial.
    print("\nψ sweep (min_support → #CAPs):")
    for point in sweep(dataset, params, "min_support", [5, 10, 15, 20, 30]):
        print(f"  ψ={int(point.value):3d}  caps={point.num_caps:4d}  "
              f"({point.elapsed_seconds * 1000:.1f} ms)")

    CapReport(dataset, result, max_caps=8).save_html(out / "santander_report.html")
    print(f"\nwrote {out}/fig1_map.svg, fig1_series.svg, santander_report.html")


if __name__ == "__main__":
    main(*sys.argv[1:2])
