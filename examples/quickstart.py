"""Quickstart: mine CAPs from synthetic Santander data and render a report.

Run:
    python examples/quickstart.py [output-dir]

This is the 60-second tour of the library: generate a dataset, mine it with
the four paper parameters (ε, η, μ, ψ), inspect the patterns, and write the
Figure-3-style HTML report.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import CapReport, MiningParameters, MiscelaMiner, generate_santander


def main(output_dir: str = "quickstart_output") -> None:
    # 1. A dataset: 60 sensors (12 neighbourhoods × 5 attributes), two weeks
    #    of hourly data with Santander's published attribute set.
    dataset = generate_santander(seed=7)
    print(f"dataset: {dataset.name!r} — {len(dataset)} sensors, "
          f"{dataset.num_timestamps} timestamps, {dataset.num_records} records")

    # 2. Mining parameters (Section 2.1 of the paper):
    #    ε  evolving_rate       — ignore changes smaller than this
    #    η  distance_threshold  — km radius for "spatially close"
    #    μ  max_attributes      — at most this many attributes per pattern
    #    ψ  min_support         — co-evolve at least this many timestamps
    params = MiningParameters(
        evolving_rate=3.0,
        distance_threshold=0.35,
        max_attributes=3,
        min_support=10,
        max_sensors=4,
    )

    # 3. Mine.
    result = MiscelaMiner(params).mine(dataset)
    print(f"found {result.num_caps} CAPs in {result.elapsed_seconds:.3f}s")

    # 4. Inspect the strongest patterns.
    for cap in result.caps[:5]:
        attrs = ", ".join(sorted(cap.attributes))
        print(f"  support={cap.support:3d}  attributes={{{attrs}}}  "
              f"sensors={sorted(cap.sensor_ids)}")

    # 5. The click interaction: who is correlated with this sensor?
    probe = result.caps[0].key()[0]
    print(f"sensors correlated with {probe!r}: {sorted(result.correlated_sensors(probe))}")

    # 6. Save the visual report (map + charts per pattern).
    out = Path(output_dir)
    report_path = CapReport(dataset, result, max_caps=5).save_html(out / "report.html")
    print(f"wrote {report_path}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
