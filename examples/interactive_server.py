"""Run the Miscela-V API server (the paper's Figure-2 architecture).

Starts the WSGI app under the threaded ``wsgiref`` server, uploads the
synthetic Santander dataset through the chunked protocol, and prints the
curl-able endpoints.

Run:
    python examples/interactive_server.py [port]

Then, from another shell:

    curl localhost:8000/datasets
    curl -X POST localhost:8000/mine -d '{"dataset": "santander", "parameters": \
      {"evolving_rate": 3.0, "distance_threshold": 0.35, \
       "max_attributes": 3, "min_support": 10}}'
    curl localhost:8000/viz/santander/map > map.html
    curl localhost:8000/admin/stats

Long mines need not block the map — submit asynchronously and poll:

    curl -X POST localhost:8000/mine -d '{"dataset": "santander", \
      "mode": "async", "parameters": {"evolving_rate": 3.0, \
      "distance_threshold": 0.35, "max_attributes": 3, "min_support": 10}}'
    curl localhost:8000/jobs                      # all jobs
    curl localhost:8000/jobs/<job_id>             # status + progress + result
    curl -X POST localhost:8000/jobs/<job_id>/cancel
"""

from __future__ import annotations

import sys

from repro import generate_santander
from repro.server import TestClient, create_app
from repro.server.http import make_threaded_server, wsgi_adapter


def main(port: int = 8000) -> None:
    app = create_app(with_logging=True)

    # Pre-load the demo dataset exactly as a browser client would: via the
    # three-step chunked upload.
    dataset = generate_santander(seed=7)
    response = TestClient(app).upload_dataset(dataset, chunk_lines=10_000)
    assert response.status == 201, response.json()
    print(f"pre-loaded dataset 'santander' "
          f"({len(dataset)} sensors, {dataset.num_records} records)")

    # Thread-per-request: job polls and map clicks answer during a mine.
    server = make_threaded_server("127.0.0.1", port, wsgi_adapter(app))
    print(f"Miscela-V API listening on http://127.0.0.1:{port}")
    print("try:  curl localhost:%d/          (route index)" % port)
    print("      curl localhost:%d/datasets" % port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        app.close()
        print("\nbye")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
