"""Run the Miscela-V API server (the paper's Figure-2 architecture).

Starts the WSGI app under the threaded ``wsgiref`` server, uploads the
synthetic Santander dataset through the chunked protocol, and prints the
curl-able endpoints.

Run:
    python examples/interactive_server.py [port]

Then, from another shell (the versioned resource API):

    curl localhost:8000/api/v1                    # service doc + links
    curl localhost:8000/api/v1/schema             # generated route schema
    curl localhost:8000/api/v1/datasets
    curl -i -X POST localhost:8000/api/v1/datasets/santander/results \
      -d '{"parameters": {"evolving_rate": 3.0, "distance_threshold": 0.35, \
           "max_attributes": 3, "min_support": 10}}'
    # -> 201 with "Location: /api/v1/results/<key>" and an ETag

    curl localhost:8000/api/v1/results/<key>      # metadata (ETag again)
    curl -i localhost:8000/api/v1/results/<key> -H 'If-None-Match: <etag>'
    # -> 304 Not Modified

    curl 'localhost:8000/api/v1/results/<key>/caps?offset=0&limit=20'
    curl 'localhost:8000/api/v1/results/<key>/caps?sensor=<id>'
    curl localhost:8000/api/v1/datasets/santander/viz/map > map.html
    curl -H 'Accept: image/svg+xml' \
      localhost:8000/api/v1/datasets/santander/viz/map > map.svg
    curl localhost:8000/api/v1/admin/stats

Long mines need not block the map — submit asynchronously and poll:

    curl -i -X POST localhost:8000/api/v1/datasets/santander/results \
      -d '{"mode": "async", "parameters": {"evolving_rate": 3.0, \
           "distance_threshold": 0.35, "max_attributes": 3, "min_support": 10}}'
    # -> 202 with "Location: /api/v1/jobs/<job_id>"
    curl localhost:8000/api/v1/jobs               # all jobs (with links)
    curl localhost:8000/api/v1/jobs/<job_id>      # status + result link
    curl -X POST localhost:8000/api/v1/jobs/<job_id>/cancel

The pre-v1 unversioned routes (``POST /mine``, ``GET /caps/...``) still
answer, marked with a ``Deprecation: true`` header and a ``Link`` to the
v1 successor.
"""

from __future__ import annotations

import sys

from repro import generate_santander
from repro.server import TestClient, create_app
from repro.server.http import make_threaded_server, wsgi_adapter


def main(port: int = 8000) -> None:
    app = create_app(with_logging=True)

    # Pre-load the demo dataset exactly as a browser client would: via the
    # three-step chunked upload.
    dataset = generate_santander(seed=7)
    response = TestClient(app).upload_dataset(dataset, chunk_lines=10_000)
    assert response.status == 201, response.json()
    print(f"pre-loaded dataset 'santander' "
          f"({len(dataset)} sensors, {dataset.num_records} records)")

    # Thread-per-request: job polls and map clicks answer during a mine.
    server = make_threaded_server("127.0.0.1", port, wsgi_adapter(app))
    print(f"Miscela-V API listening on http://127.0.0.1:{port}")
    print("try:  curl localhost:%d/api/v1          (service doc + links)" % port)
    print("      curl localhost:%d/api/v1/schema   (generated route schema)" % port)
    print("      curl localhost:%d/api/v1/datasets" % port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        app.close()
        print("\nbye")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
