"""repro — a reproduction of Miscela-V (EDBT 2021).

Smart-city data analysis via visualization of correlated attribute patterns:
CAP mining (the MISCELA algorithm), the four demonstration datasets as
synthetic generators, a document store + result cache + API server matching
the paper's architecture, and an SVG/HTML visualization layer.

Quickstart::

    from repro import generate_santander, MiningParameters, MiscelaMiner, CapReport

    dataset = generate_santander(seed=7)
    params = MiningParameters(evolving_rate=3.0, distance_threshold=0.35,
                              max_attributes=3, min_support=10)
    result = MiscelaMiner(params).mine(dataset)
    CapReport(dataset, result).save_html("caps.html")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from .analysis import (
    PeriodComparison,
    attribute_pair_counts,
    axis_correlation_report,
    cap_summary,
    compare_periods,
    sweep,
)
from .cache import LRUPolicy, NoEviction, ResultCache, TTLPolicy, cache_key
from .core import (
    CAP,
    EvolvingSet,
    MiningCancelled,
    MiningControl,
    MiningParameters,
    MiningResult,
    MiscelaMiner,
    NaiveMiner,
    Sensor,
    SensorDataset,
    StreamingMiner,
    filter_maximal,
    haversine_km,
)
from .data import (
    DATASET_NAMES,
    PAPER_SHAPES,
    dataset_table,
    generate,
    generate_china6,
    generate_china13,
    generate_covid19,
    generate_santander,
    read_dataset_dir,
    recommended_parameters,
    write_dataset_dir,
)
from .jobs import Job, JobQueue, JobStore
from .server import TestClient, create_app, create_wsgi_app
from .store import Database
from .viz import (
    CapReport,
    caps_to_geojson,
    caps_to_json,
    render_cap_timeseries,
    render_map,
    render_timeseries,
)

__version__ = "1.0.0"

__all__ = [
    "CAP",
    "CapReport",
    "DATASET_NAMES",
    "Database",
    "EvolvingSet",
    "Job",
    "JobQueue",
    "JobStore",
    "LRUPolicy",
    "MiningCancelled",
    "MiningControl",
    "MiningParameters",
    "MiningResult",
    "MiscelaMiner",
    "NaiveMiner",
    "NoEviction",
    "PAPER_SHAPES",
    "PeriodComparison",
    "ResultCache",
    "Sensor",
    "SensorDataset",
    "StreamingMiner",
    "TTLPolicy",
    "TestClient",
    "attribute_pair_counts",
    "axis_correlation_report",
    "cache_key",
    "cap_summary",
    "caps_to_geojson",
    "caps_to_json",
    "compare_periods",
    "create_app",
    "create_wsgi_app",
    "dataset_table",
    "filter_maximal",
    "generate",
    "generate_china6",
    "generate_china13",
    "generate_covid19",
    "generate_santander",
    "haversine_km",
    "read_dataset_dir",
    "recommended_parameters",
    "render_cap_timeseries",
    "render_map",
    "render_timeseries",
    "sweep",
    "write_dataset_dir",
    "__version__",
]
