"""Eviction policies for the result cache.

The paper's cache grows without bound; a production deployment needs a cap.
Policies track *keys only* — the cached payloads live in the document store
— and tell the cache which key to drop when it is full.

* :class:`NoEviction` — the paper's behaviour (unbounded).
* :class:`LRUPolicy` — least-recently-used, the default bounded policy.
* :class:`TTLPolicy` — entries expire after a fixed lifetime, useful when
  datasets are re-uploaded under the same name.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Protocol

__all__ = ["EvictionPolicy", "NoEviction", "LRUPolicy", "TTLPolicy"]


class EvictionPolicy(Protocol):
    """The interface the cache drives."""

    def on_store(self, key: str) -> list[str]:
        """Record a new entry; returns keys that must be evicted now."""
        ...

    def on_hit(self, key: str) -> bool:
        """Record an access; returns False if the entry must be treated as gone."""
        ...

    def on_evict(self, key: str) -> None:
        """The cache dropped a key for external reasons (invalidation)."""
        ...


class NoEviction:
    """Unbounded cache — exactly the paper's described behaviour."""

    def on_store(self, key: str) -> list[str]:
        return []

    def on_hit(self, key: str) -> bool:
        return True

    def on_evict(self, key: str) -> None:
        return None


class LRUPolicy:
    """Keep at most ``capacity`` entries, dropping the least recently used."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_store(self, key: str) -> list[str]:
        if key in self._order:
            self._order.move_to_end(key)
        else:
            self._order[key] = None
        evicted: list[str] = []
        while len(self._order) > self.capacity:
            victim, _ = self._order.popitem(last=False)
            evicted.append(victim)
        return evicted

    def on_hit(self, key: str) -> bool:
        if key in self._order:
            self._order.move_to_end(key)
        return True

    def on_evict(self, key: str) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)


class TTLPolicy:
    """Entries expire ``ttl_seconds`` after being stored.

    A ``clock`` injection point keeps the tests deterministic.
    """

    def __init__(self, ttl_seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._stored_at: dict[str, float] = {}

    def on_store(self, key: str) -> list[str]:
        now = self._clock()
        self._stored_at[key] = now
        expired = [k for k, at in self._stored_at.items() if now - at > self.ttl_seconds]
        for k in expired:
            del self._stored_at[k]
        return expired

    def on_hit(self, key: str) -> bool:
        at = self._stored_at.get(key)
        if at is None:
            return False
        if self._clock() - at > self.ttl_seconds:
            del self._stored_at[key]
            return False
        return True

    def on_evict(self, key: str) -> None:
        self._stored_at.pop(key, None)

    def __len__(self) -> int:
        return len(self._stored_at)
