"""Result caching for interactive analysis (paper Section 3.3)."""

from .cache import CacheStats, ResultCache
from .eviction import EvictionPolicy, LRUPolicy, NoEviction, TTLPolicy
from .keys import cache_key, canonical_payload, short_key

__all__ = [
    "CacheStats",
    "EvictionPolicy",
    "LRUPolicy",
    "NoEviction",
    "ResultCache",
    "TTLPolicy",
    "cache_key",
    "canonical_payload",
    "short_key",
]
