"""Canonical cache keys for mining results (Section 3.3).

The paper caches CAP results under "the name of the dataset [and the]
parameters".  Equal parameter settings must map to the same key regardless
of dict ordering or float formatting, so the key is a SHA-256 over a
canonical JSON encoding of ``(dataset_name, parameters)``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ..core.parameters import MiningParameters

__all__ = ["canonical_payload", "cache_key", "short_key"]


def canonical_payload(dataset_name: str, params: MiningParameters) -> dict[str, Any]:
    """The exact structure hashed into the cache key (also stored for audit)."""
    if not dataset_name:
        raise ValueError("dataset_name must be non-empty")
    return {"dataset": dataset_name, "parameters": params.to_document()}


def cache_key(dataset_name: str, params: MiningParameters) -> str:
    """Deterministic hex key for a (dataset, parameters) pair."""
    payload = canonical_payload(dataset_name, params)
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def short_key(key: str, length: int = 10) -> str:
    """A display-friendly prefix of a cache key (job ids, log lines).

    Purely cosmetic — dedup and storage always use the full key; the prefix
    only makes identifiers derived from it readable.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    return key[:length]
