"""The CAP result cache (Section 3.3).

"Before computing CAPs by Miscela, our system searches for CAPs with the
same parameters and the name of the dataset from the database."  This module
implements exactly that: :class:`ResultCache` sits between callers and a
miner, storing :class:`~repro.core.miner.MiningResult` documents in the
``cap_results`` collection of a :class:`~repro.store.Database`, keyed by the
canonical hash of (dataset name, parameters).

``mine_cached`` is the interactive-analysis entry point: a hit replays the
stored result (``from_cache=True``), a miss runs the miner and stores the
outcome.  Statistics (hits/misses/evictions) feed the caching benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from ..core.miner import MiningResult, MiscelaMiner
from ..core.parallel import MiningControl
from ..core.parameters import MiningParameters
from ..core.types import SensorDataset
from ..obs.metrics import get_registry
from ..store.database import Database
from .eviction import EvictionPolicy, NoEviction
from .keys import cache_key, canonical_payload

__all__ = ["CacheStats", "ResultCache"]

_COLLECTION = "cap_results"

# Process-wide counters next to the per-instance CacheStats: the stats
# object feeds /admin/stats per cache, these feed the Prometheus scrape.
_HITS = get_registry().counter(
    "repro_cache_hits_total", "Result-cache lookups served from the store."
)
_MISSES = get_registry().counter(
    "repro_cache_misses_total", "Result-cache lookups that found nothing."
)
_EVICTIONS = get_registry().counter(
    "repro_cache_evictions_total", "Cached results evicted by policy."
)
_INVALIDATIONS = get_registry().counter(
    "repro_cache_invalidations_total",
    "Cached results dropped by dataset invalidation.",
)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ResultCache:
    """Parameter-keyed cache of mining results backed by the document store."""

    def __init__(self, database: Database, policy: EvictionPolicy | None = None) -> None:
        self.database = database
        self.policy: EvictionPolicy = policy if policy is not None else NoEviction()
        self.stats = CacheStats()
        # The threaded server and the async job executor hit one cache from
        # several threads; Collection writes are multi-step (id counter,
        # index maintenance), so every store access serializes here.  Mining
        # itself (``mine_cached``'s miss path) runs outside the lock.
        self._lock = threading.RLock()
        collection = database.collection(_COLLECTION)
        collection.create_index("key", "hash")
        collection.create_index("payload.dataset", "hash")

    # -- raw get/put ----------------------------------------------------------

    def get(self, dataset_name: str, params: MiningParameters) -> MiningResult | None:
        """The cached result for (dataset, params), or None."""
        key = cache_key(dataset_name, params)
        with self._lock:
            if not self.policy.on_hit(key):
                # Policy says expired: drop the stored document too.
                self._delete_key(key)
                self.stats.misses += 1
                _MISSES.inc()
                return None
            document = self.database[_COLLECTION].find_one({"key": key})
            if document is None:
                self.stats.misses += 1
                _MISSES.inc()
                return None
            self.stats.hits += 1
            _HITS.inc()
        return MiningResult.from_document(document["result"])

    def put(self, result: MiningResult) -> str:
        """Store a mining result; returns its cache key."""
        key = cache_key(result.dataset_name, result.parameters)
        document = {
            "key": key,
            "payload": canonical_payload(result.dataset_name, result.parameters),
            "result": result.to_document(),
        }
        with self._lock:
            collection = self.database[_COLLECTION]
            if collection.replace_one({"key": key}, document) is None:
                collection.insert_one(document)
            for victim in self.policy.on_store(key):
                if victim != key:
                    self._delete_key(victim)
                    self.stats.evictions += 1
                    _EVICTIONS.inc()
        return key

    def delete_key(self, key: str) -> None:
        """Drop one cached result by key (stale-result reconciliation)."""
        with self._lock:
            self._delete_key(key)

    def _delete_key(self, key: str) -> None:
        self.database[_COLLECTION].delete_many({"key": key})
        self.policy.on_evict(key)

    # -- the interactive-analysis entry point ----------------------------------

    def mine_cached(
        self,
        dataset: SensorDataset,
        params: MiningParameters,
        miner_factory: Callable[[MiningParameters], MiscelaMiner] = MiscelaMiner,
        control: MiningControl | None = None,
    ) -> MiningResult:
        """Return cached CAPs when available, otherwise mine and cache.

        Note the cache key uses the *dataset name*, like the paper — callers
        re-uploading different data under the same name must call
        :meth:`invalidate_dataset` first (the upload handler does).

        ``control`` is forwarded to the miner (progress + cooperative
        cancellation, see :class:`~repro.core.parallel.MiningControl`); a
        cancelled run stores nothing.  Only passed along when set, so custom
        ``miner_factory`` objects without the parameter keep working.
        """
        cached = self.get(dataset.name, params)
        if cached is not None:
            return cached
        miner = MiscelaMiner(params) if miner_factory is MiscelaMiner \
            else miner_factory(params)
        result = miner.mine(dataset, control=control) if control is not None \
            else miner.mine(dataset)
        self.put(result)
        return result

    def invalidate_dataset(self, dataset_name: str) -> int:
        """Drop every cached result for one dataset (after re-upload)."""
        with self._lock:
            collection = self.database[_COLLECTION]
            victims = collection.find({"payload.dataset": dataset_name})
            for document in victims:
                self.policy.on_evict(document["key"])
            removed = collection.delete_many({"payload.dataset": dataset_name})
            self.stats.invalidations += removed
            if removed:
                _INVALIDATIONS.inc(amount=removed)
            return removed

    def __len__(self) -> int:
        return len(self.database[_COLLECTION])
