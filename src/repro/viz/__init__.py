"""Visualization: SVG maps, time-series charts, HTML reports, JSON export."""

from .charts import render_support_histogram, render_sweep_chart
from .colors import ATTRIBUTE_COLORS, DIM_COLOR, HIGHLIGHT_COLOR, PALETTE, color_map
from .export import caps_to_geojson, caps_to_json, result_to_json
from .heatmap import render_coevolution_heatmap
from .map_view import MapProjection, render_map
from .report import CapReport, densest_window
from .svg import SvgCanvas, escape
from .timeseries_view import render_cap_timeseries, render_timeseries

__all__ = [
    "ATTRIBUTE_COLORS",
    "CapReport",
    "DIM_COLOR",
    "HIGHLIGHT_COLOR",
    "MapProjection",
    "PALETTE",
    "SvgCanvas",
    "caps_to_geojson",
    "caps_to_json",
    "color_map",
    "densest_window",
    "escape",
    "render_cap_timeseries",
    "render_coevolution_heatmap",
    "render_map",
    "render_support_histogram",
    "render_sweep_chart",
    "render_timeseries",
    "result_to_json",
]
