"""The composed CAP report — the paper's Figure 3 as a standalone HTML page.

For a mining result, :class:`CapReport` renders:

* panel (A): the full sensor map;
* per CAP, panel (B): the map with that CAP's sensors highlighted,
  panel (C): the full-range measurement chart with co-evolving timestamps
  marked, and panel (D): a zoomed window around the densest co-evolution
  burst — the zoom-in the demo performs live.

Everything is a single self-contained HTML file (inline SVG, no external
assets), so reports can be archived next to experiment outputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.miner import MiningResult
from ..core.search import filter_maximal
from ..core.types import CAP, SensorDataset
from .map_view import render_map
from .svg import escape
from .timeseries_view import render_cap_timeseries

__all__ = ["CapReport", "densest_window"]


def densest_window(cap: CAP, num_timestamps: int, width: int = 48) -> tuple[int, int]:
    """The ``width``-long window containing the most co-evolving timestamps.

    This is what the report zooms panel (D) into; ties resolve to the
    earliest window.  Falls back to the start of the timeline for patterns
    without recorded evolving indices.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    width = min(width, num_timestamps)
    if not cap.evolving_indices:
        return 0, width
    indices = np.asarray(cap.evolving_indices, dtype=np.int64)
    best_start, best_count = 0, -1
    for start in range(0, num_timestamps - width + 1):
        count = int(np.count_nonzero((indices >= start) & (indices < start + width)))
        if count > best_count:
            best_start, best_count = start, count
    return best_start, best_start + width


class CapReport:
    """Render a mining result into a self-contained HTML report."""

    def __init__(
        self,
        dataset: SensorDataset,
        result: MiningResult,
        max_caps: int = 10,
        maximal_only: bool = True,
        zoom_width: int = 48,
    ) -> None:
        if max_caps < 1:
            raise ValueError(f"max_caps must be >= 1, got {max_caps}")
        self.dataset = dataset
        self.result = result
        self.max_caps = max_caps
        self.zoom_width = zoom_width
        caps: Sequence[CAP] = result.caps
        if maximal_only:
            caps = filter_maximal(caps)
        self.caps = list(caps)[:max_caps]

    # -- fragments -------------------------------------------------------------

    def _header_html(self) -> str:
        params = self.result.parameters
        rows = [
            ("dataset", self.dataset.name),
            ("sensors", len(self.dataset)),
            ("timestamps", self.dataset.num_timestamps),
            ("evolving rate ε", params.evolving_rate),
            ("distance threshold η (km)", params.distance_threshold),
            ("max attributes μ", params.max_attributes),
            ("min support ψ", params.min_support),
            ("patterns found", self.result.num_caps),
            ("patterns shown", len(self.caps)),
            ("mining time (s)", f"{self.result.elapsed_seconds:.3f}"),
            ("served from cache", self.result.from_cache),
        ]
        cells = "".join(
            f"<tr><td>{escape(k)}</td><td>{escape(v)}</td></tr>" for k, v in rows
        )
        return (
            "<h1>Miscela-V CAP report</h1>"
            f"<table class='meta'>{cells}</table>"
        )

    def _cap_section_html(self, index: int, cap: CAP) -> str:
        highlighted = cap.sensor_ids
        map_svg = render_map(
            self.dataset,
            highlighted_sensors=highlighted,
            dim_unhighlighted=True,
            title=f"CAP {index + 1}: sensor locations",
        ).to_string()
        full_chart = render_cap_timeseries(self.dataset, cap).to_string()
        window = densest_window(cap, self.dataset.num_timestamps, self.zoom_width)
        zoom_chart = render_cap_timeseries(self.dataset, cap, window=window).to_string()
        sensors_list = ", ".join(
            f"{sid} ({self.dataset.sensor(sid).attribute})" for sid in sorted(cap.sensor_ids)
        )
        delays = ""
        if cap.is_delayed:
            delay_text = ", ".join(
                f"{sid}: +{d}" for sid, d in sorted(cap.delays.items()) if d
            )
            delays = f"<p><b>delays:</b> {escape(delay_text)} steps</p>"
        return (
            f"<section class='cap'>"
            f"<h2>CAP {index + 1} — attributes {{{escape(', '.join(sorted(cap.attributes)))}}}, "
            f"support {cap.support}</h2>"
            f"<p><b>sensors:</b> {escape(sensors_list)}</p>{delays}"
            f"<div class='panels'>"
            f"<div class='panel'><h3>(B) map, CAP highlighted</h3>{map_svg}</div>"
            f"<div class='panel'><h3>(C) measurements, full range</h3>{full_chart}</div>"
            f"<div class='panel'><h3>(D) zoom: steps {window[0]}–{window[1]}</h3>{zoom_chart}</div>"
            f"</div></section>"
        )

    _CSS = """
    body { font-family: sans-serif; margin: 24px; color: #222; }
    table.meta { border-collapse: collapse; margin-bottom: 24px; }
    table.meta td { border: 1px solid #ccc; padding: 4px 10px; }
    section.cap { border-top: 2px solid #e0e0e0; margin-top: 28px; padding-top: 8px; }
    .panels { display: flex; flex-wrap: wrap; gap: 16px; }
    .panel h3 { margin: 4px 0; font-size: 13px; color: #555; }
    """

    def to_html(self) -> str:
        overview = render_map(
            self.dataset,
            adjacency=self.result.adjacency or None,
            title=f"(A) all sensors in {self.dataset.name}",
        ).to_string()
        sections = "".join(
            self._cap_section_html(i, cap) for i, cap in enumerate(self.caps)
        )
        if not self.caps:
            sections = "<p><i>No CAPs found with these parameters.</i></p>"
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>Miscela-V report: {escape(self.dataset.name)}</title>"
            f"<style>{self._CSS}</style></head><body>"
            f"{self._header_html()}"
            f"<section><h2>Overview</h2>{overview}</section>"
            f"{sections}"
            "</body></html>"
        )

    def save_html(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html())
        return path
