"""Sensor-location maps (panels A/B of the paper's Figure 3).

Renders a dataset's sensors as colored dots on an equirectangular
projection, optionally with:

* η-proximity edges (which sensor pairs count as "spatially close"),
* a highlighted sensor set (a CAP, or everything correlated with a clicked
  sensor) drawn in the highlight color with halos — the paper's
  "sensors are highlighted if their measurements are correlated to
  measurements of the clicked sensor".

The paper uses Google Maps tiles; offline we draw a light graticule instead.
The projection, dot semantics, and highlight behaviour — the parts the
analysis depends on — are faithful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.types import SensorDataset
from .colors import DIM_COLOR, EDGE_COLOR, HIGHLIGHT_COLOR, color_map
from .svg import SvgCanvas

__all__ = ["MapProjection", "render_map"]


@dataclass(frozen=True)
class MapProjection:
    """Equirectangular lat/lon → canvas mapping with padded bounds."""

    min_lat: float
    max_lat: float
    min_lon: float
    max_lon: float
    width: float
    height: float
    padding: float = 40.0

    @classmethod
    def fit(
        cls,
        dataset: SensorDataset,
        width: float = 720.0,
        height: float = 520.0,
        padding: float = 40.0,
    ) -> "MapProjection":
        lats = [s.lat for s in dataset]
        lons = [s.lon for s in dataset]
        min_lat, max_lat = min(lats), max(lats)
        min_lon, max_lon = min(lons), max(lons)
        # Avoid a degenerate projection for co-located sensors.
        if max_lat - min_lat < 1e-6:
            min_lat -= 0.005
            max_lat += 0.005
        if max_lon - min_lon < 1e-6:
            min_lon -= 0.005
            max_lon += 0.005
        return cls(min_lat, max_lat, min_lon, max_lon, width, height, padding)

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        """Project a coordinate into canvas space (y grows downward)."""
        usable_w = self.width - 2 * self.padding
        usable_h = self.height - 2 * self.padding
        x = self.padding + (lon - self.min_lon) / (self.max_lon - self.min_lon) * usable_w
        y = self.padding + (self.max_lat - lat) / (self.max_lat - self.min_lat) * usable_h
        return x, y

    def graticule_steps(self) -> tuple[list[float], list[float]]:
        """Grid-line positions: ~5 lines per axis at a round degree step."""

        def steps(lo: float, hi: float) -> list[float]:
            span = hi - lo
            raw = span / 5.0
            magnitude = 10.0 ** math.floor(math.log10(raw)) if raw > 0 else 1.0
            for mult in (1.0, 2.0, 5.0, 10.0):
                step = magnitude * mult
                if span / step <= 6:
                    break
            first = math.ceil(lo / step) * step
            values = []
            v = first
            while v <= hi + 1e-12:
                values.append(round(v, 10))
                v += step
            return values

        return steps(self.min_lat, self.max_lat), steps(self.min_lon, self.max_lon)


def render_map(
    dataset: SensorDataset,
    highlighted_sensors: Iterable[str] = (),
    adjacency: Mapping[str, set[str]] | None = None,
    width: float = 720.0,
    height: float = 520.0,
    dim_unhighlighted: bool = False,
    title: str | None = None,
) -> SvgCanvas:
    """Draw the sensor map.

    Parameters
    ----------
    dataset:
        The sensors to draw.
    highlighted_sensors:
        Sensor ids drawn in the highlight style (e.g. one CAP's members).
    adjacency:
        Optional η-proximity graph; edges are drawn beneath the dots.
    dim_unhighlighted:
        When highlighting, grey out everything else (the paper's panel (B)
        look) instead of keeping attribute colors.
    """
    highlighted = set(highlighted_sensors)
    unknown = highlighted - set(dataset.sensor_ids)
    if unknown:
        raise KeyError(f"highlighted sensors not in dataset: {sorted(unknown)}")
    projection = MapProjection.fit(dataset, width, height)
    canvas = SvgCanvas(width, height, background="#f4f8fb")
    colors = color_map(dataset.attributes)

    # Graticule (the offline stand-in for map tiles).
    lat_lines, lon_lines = projection.graticule_steps()
    for lat in lat_lines:
        x1, y = projection.to_xy(lat, projection.min_lon)
        x2, _ = projection.to_xy(lat, projection.max_lon)
        canvas.line(x1, y, x2, y, stroke="#dde6ee", stroke_width=1)
        canvas.text(4, y + 3, f"{lat:.3g}°", size=9, fill="#7a8a99")
    for lon in lon_lines:
        x, y1 = projection.to_xy(projection.max_lat, lon)
        _, y2 = projection.to_xy(projection.min_lat, lon)
        canvas.line(x, y1, x, y2, stroke="#dde6ee", stroke_width=1)
        canvas.text(x, height - 6, f"{lon:.3g}°", size=9, fill="#7a8a99", anchor="middle")

    # Proximity edges beneath the dots.
    if adjacency:
        drawn: set[tuple[str, str]] = set()
        for sid, neighbours in adjacency.items():
            if sid not in dataset:
                continue
            a = dataset.sensor(sid)
            for other in neighbours:
                edge = (min(sid, other), max(sid, other))
                if edge in drawn or other not in dataset:
                    continue
                drawn.add(edge)
                b = dataset.sensor(other)
                x1, y1 = projection.to_xy(a.lat, a.lon)
                x2, y2 = projection.to_xy(b.lat, b.lon)
                canvas.line(x1, y1, x2, y2, stroke=EDGE_COLOR, stroke_width=1)

    # Halos first so dots sit on top.
    for sensor in dataset:
        if sensor.sensor_id in highlighted:
            x, y = projection.to_xy(sensor.lat, sensor.lon)
            canvas.circle(x, y, 10, fill="none", stroke=HIGHLIGHT_COLOR, stroke_width=2)

    for sensor in dataset:
        x, y = projection.to_xy(sensor.lat, sensor.lon)
        if sensor.sensor_id in highlighted:
            fill = HIGHLIGHT_COLOR
        elif highlighted and dim_unhighlighted:
            fill = DIM_COLOR
        else:
            fill = colors[sensor.attribute]
        canvas.group_open()
        canvas.circle(x, y, 5, fill=fill, stroke="#333333", stroke_width=0.8)
        canvas.title_tooltip(f"{sensor.sensor_id} ({sensor.attribute})")
        canvas.group_close()

    # Legend.
    legend_y = 18.0
    for attribute in dataset.attributes:
        canvas.circle(width - 150, legend_y - 4, 5, fill=colors[attribute])
        canvas.text(width - 140, legend_y, attribute, size=11, fill="#333333")
        legend_y += 16
    if highlighted:
        canvas.circle(width - 150, legend_y - 4, 5, fill=HIGHLIGHT_COLOR)
        canvas.text(width - 140, legend_y, "correlated (CAP)", size=11, fill="#333333")

    if title:
        canvas.text(width / 2, 20, title, size=14, anchor="middle", fill="#222222")
    return canvas
