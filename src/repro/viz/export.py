"""JSON export of mining results.

"Miscela returns a set of sets of sensors as CAPs ... and its format is
JSON" (Section 3.4).  These helpers produce exactly that interchange shape
— the payload the API returns and the front end consumes — plus a GeoJSON
export so results drop into standard GIS tooling.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from ..core.miner import MiningResult
from ..core.types import CAP, SensorDataset

__all__ = ["caps_to_json", "result_to_json", "caps_to_geojson"]


def caps_to_json(caps: Sequence[CAP], indent: int | None = None) -> str:
    """The paper's CAP interchange format: a JSON array of sensor-set objects."""
    return json.dumps([cap.to_document() for cap in caps], indent=indent, sort_keys=True)


def result_to_json(result: MiningResult, indent: int | None = None) -> str:
    """A full mining result (dataset, parameters, CAPs) as JSON."""
    return json.dumps(result.to_document(), indent=indent, sort_keys=True)


def caps_to_geojson(
    dataset: SensorDataset, caps: Sequence[CAP], indent: int | None = None
) -> str:
    """CAPs as a GeoJSON FeatureCollection.

    Each CAP becomes one MultiPoint feature over its sensor locations with
    the pattern's attributes and support as properties; each sensor also
    appears once as a Point feature.  Coordinates are ``[lon, lat]`` per the
    GeoJSON spec.
    """
    features: list[dict[str, Any]] = []
    for sensor in dataset:
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "Point", "coordinates": [sensor.lon, sensor.lat]},
                "properties": {
                    "kind": "sensor",
                    "id": sensor.sensor_id,
                    "attribute": sensor.attribute,
                },
            }
        )
    for i, cap in enumerate(caps):
        coordinates = []
        for sid in sorted(cap.sensor_ids):
            sensor = dataset.sensor(sid)
            coordinates.append([sensor.lon, sensor.lat])
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "MultiPoint", "coordinates": coordinates},
                "properties": {
                    "kind": "cap",
                    "index": i,
                    "sensors": sorted(cap.sensor_ids),
                    "attributes": sorted(cap.attributes),
                    "support": cap.support,
                },
            }
        )
    return json.dumps(
        {"type": "FeatureCollection", "features": features}, indent=indent, sort_keys=True
    )
