"""Time-series charts (panels C/D of the paper's Figure 3).

Draws the temporal behaviour of selected sensors' measurements so the
analyst can "see that three measurements frequently increase/decrease
together".  Features reproduced from the demo:

* multiple sensors overlaid, one color per sensor (attribute-stable colors);
* per-sensor normalisation so attributes with different units co-plot;
* a zoom window (``window=(start_index, end_index)``) — the paper's
  zoom-in/zoom-out over panels C → D;
* optional markers on the pattern's co-evolving timestamps, which is what
  makes the correlation visually obvious.

NaN gaps break the polyline rather than interpolating across missing data.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..core.types import CAP, SensorDataset
from .colors import HIGHLIGHT_COLOR, PALETTE, color_map
from .svg import SvgCanvas

__all__ = ["render_timeseries", "render_cap_timeseries"]


def _nice_ticks(n: int, max_ticks: int = 8) -> list[int]:
    """Evenly spaced index ticks including the endpoints."""
    if n <= 1:
        return [0]
    step = max(1, (n - 1) // max_ticks)
    ticks = list(range(0, n, step))
    if ticks[-1] != n - 1:
        ticks.append(n - 1)
    return ticks


def render_timeseries(
    dataset: SensorDataset,
    sensor_ids: Sequence[str],
    window: tuple[int, int] | None = None,
    normalize: bool = True,
    mark_indices: Iterable[int] = (),
    width: float = 860.0,
    height: float = 320.0,
    title: str | None = None,
) -> SvgCanvas:
    """Chart the measurements of the given sensors.

    Parameters
    ----------
    window:
        ``(start, end)`` timeline-index bounds (end exclusive) — the zoom.
    normalize:
        Min-max scale each series inside the window so different units
        share the canvas (the paper charts do the same visually by using
        separate axes; normalisation is the single-axis equivalent).
    mark_indices:
        Timeline indices to mark with vertical ticks (a CAP's co-evolving
        timestamps).
    """
    if not sensor_ids:
        raise ValueError("sensor_ids must be non-empty")
    for sid in sensor_ids:
        if sid not in dataset:
            raise KeyError(f"unknown sensor id: {sid!r}")
    n = dataset.num_timestamps
    if window is None:
        lo, hi = 0, n
    else:
        lo, hi = window
        if not (0 <= lo < hi <= n):
            raise ValueError(f"window {window} out of range for {n} timestamps")
    span = hi - lo

    pad_left, pad_right, pad_top, pad_bottom = 55.0, 20.0, 30.0, 45.0
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    canvas = SvgCanvas(width, height)
    colors = color_map(dataset.attributes)

    def x_at(index: int) -> float:
        if span == 1:
            return pad_left + plot_w / 2
        return pad_left + (index - lo) / (span - 1) * plot_w

    # Axes frame.
    canvas.rect(pad_left, pad_top, plot_w, plot_h, fill="none", stroke="#999999")

    # Co-evolution markers under the curves.
    marks = [i for i in mark_indices if lo <= i < hi]
    for index in marks:
        x = x_at(index)
        canvas.line(x, pad_top, x, pad_top + plot_h, stroke="#ffd9d9", stroke_width=2)

    # X tick labels from the timeline.
    for tick in _nice_ticks(span):
        index = lo + tick
        x = x_at(index)
        label = dataset.timeline[index].strftime("%m-%d %H:%M")
        canvas.line(x, pad_top + plot_h, x, pad_top + plot_h + 4, stroke="#999999")
        canvas.text(x, pad_top + plot_h + 16, label, size=9, anchor="middle", fill="#555555")

    series_colors: dict[str, str] = {}
    for k, sid in enumerate(sensor_ids):
        sensor = dataset.sensor(sid)
        base = colors.get(sensor.attribute, PALETTE[k % len(PALETTE)])
        # Distinguish same-attribute sensors by cycling when colliding.
        if base in series_colors.values():
            base = PALETTE[(k + 3) % len(PALETTE)]
        series_colors[sid] = base

    for sid in sensor_ids:
        values = dataset.values(sid)[lo:hi].astype(np.float64)
        finite = values[~np.isnan(values)]
        if finite.size == 0:
            continue
        if normalize:
            vmin, vmax = float(finite.min()), float(finite.max())
            scale = (vmax - vmin) if vmax > vmin else 1.0
            norm = (values - vmin) / scale
        else:
            norm = values
            vmin = float(finite.min())
            vmax = float(finite.max())
            scale = (vmax - vmin) if vmax > vmin else 1.0
            norm = (values - vmin) / scale
        # Build polyline runs broken at NaNs.
        run: list[tuple[float, float]] = []
        for offset, value in enumerate(norm):
            if math.isnan(value):
                canvas.polyline(run, stroke=series_colors[sid], stroke_width=1.6)
                run = []
                continue
            y = pad_top + (1.0 - value) * plot_h
            run.append((x_at(lo + offset), y))
        canvas.polyline(run, stroke=series_colors[sid], stroke_width=1.6)

    # Legend.
    legend_x = pad_left
    legend_y = height - 10
    for sid in sensor_ids:
        sensor = dataset.sensor(sid)
        canvas.line(legend_x, legend_y - 4, legend_x + 18, legend_y - 4,
                    stroke=series_colors[sid], stroke_width=3)
        label = f"{sid} ({sensor.attribute})"
        canvas.text(legend_x + 22, legend_y, label, size=10, fill="#333333")
        legend_x += 30 + 6.2 * len(label)

    if marks:
        canvas.text(width - pad_right, pad_top - 8,
                    f"{len(marks)} co-evolving timestamps marked",
                    size=10, anchor="end", fill=HIGHLIGHT_COLOR)
    if title:
        canvas.text(width / 2, 16, title, size=13, anchor="middle", fill="#222222")
    return canvas


def render_cap_timeseries(
    dataset: SensorDataset,
    cap: CAP,
    window: tuple[int, int] | None = None,
    **kwargs: object,
) -> SvgCanvas:
    """Chart one CAP's sensors with its co-evolving timestamps marked."""
    sensor_ids = sorted(cap.sensor_ids)
    return render_timeseries(
        dataset,
        sensor_ids,
        window=window,
        mark_indices=cap.evolving_indices,
        title=f"CAP over {{{', '.join(sorted(cap.attributes))}}} — support {cap.support}",
        **kwargs,  # type: ignore[arg-type]
    )
