"""Color assignment for attributes and highlight states.

A fixed qualitative palette keyed by attribute order keeps colors stable
across a session (the same attribute is the same color on the map and in
every chart), with named overrides for the smart-city attributes the paper's
datasets use so figures look domain-appropriate.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "PALETTE",
    "ATTRIBUTE_COLORS",
    "HIGHLIGHT_COLOR",
    "DIM_COLOR",
    "EDGE_COLOR",
    "color_map",
]

#: Qualitative palette (colorblind-safe ordering, Okabe–Ito derived).
PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#D55E00",  # vermillion
    "#CC79A7",  # purple-pink
    "#56B4E9",  # sky blue
    "#F0E442",  # yellow
    "#8C510A",  # brown
    "#5E3C99",  # violet
    "#1B9E77",  # teal
)

#: Domain overrides for the paper's attributes.
ATTRIBUTE_COLORS: Mapping[str, str] = {
    "temperature": "#D55E00",
    "traffic_volume": "#0072B2",
    "light": "#E69F00",
    "sound": "#5E3C99",
    "humidity": "#009E73",
    "pm25": "#555555",
    "pm10": "#8C510A",
    "so2": "#CC79A7",
    "no2": "#0072B2",
    "co": "#E69F00",
    "o3": "#009E73",
}

HIGHLIGHT_COLOR = "#FF2D2D"
DIM_COLOR = "#C8C8C8"
EDGE_COLOR = "#B0C4DE"


def color_map(attributes: Iterable[str]) -> dict[str, str]:
    """A stable attribute → color mapping.

    Named attributes get their domain color; everything else cycles through
    the palette in attribute order.
    """
    mapping: dict[str, str] = {}
    cursor = 0
    for attribute in attributes:
        if attribute in ATTRIBUTE_COLORS:
            mapping[attribute] = ATTRIBUTE_COLORS[attribute]
        else:
            mapping[attribute] = PALETTE[cursor % len(PALETTE)]
            cursor += 1
    return mapping
