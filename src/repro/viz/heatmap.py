"""Co-evolution heatmap.

A matrix view of pairwise co-evolution rates between sensors — the "why are
these correlated" question at a glance, complementing the map (where) and
the time series (when).  Cells are shaded white→deep blue by rate; rows and
columns carry sensor ids and attribute-colored markers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.types import EvolvingSet, SensorDataset
from ..analysis.statistics import co_evolution_rate
from .colors import color_map
from .svg import SvgCanvas

__all__ = ["render_coevolution_heatmap"]


def _shade(rate: float) -> str:
    """White (0.0) → deep blue (1.0)."""
    rate = min(max(rate, 0.0), 1.0)
    # Interpolate between #ffffff and #0b4f8a.
    r = round(255 + (11 - 255) * rate)
    g = round(255 + (79 - 255) * rate)
    b = round(255 + (138 - 255) * rate)
    return f"#{r:02x}{g:02x}{b:02x}"


def render_coevolution_heatmap(
    dataset: SensorDataset,
    evolving: Mapping[str, EvolvingSet],
    sensor_ids: Sequence[str] | None = None,
    cell: float = 22.0,
    title: str = "pairwise co-evolution rate",
) -> SvgCanvas:
    """Draw the co-evolution rate matrix for the given sensors.

    Parameters
    ----------
    sensor_ids:
        Which sensors to include (rows == columns).  Defaults to the whole
        dataset; keep it under ~40 for readability.
    cell:
        Cell edge length in pixels.
    """
    ids = list(sensor_ids) if sensor_ids is not None else list(dataset.sensor_ids)
    if not ids:
        raise ValueError("sensor_ids must be non-empty")
    for sid in ids:
        if sid not in dataset:
            raise KeyError(f"unknown sensor id: {sid!r}")
        if sid not in evolving:
            raise KeyError(f"no evolving set for sensor {sid!r}")
    n = len(ids)
    label_w = 10 + max(len(sid) for sid in ids) * 6.2
    pad_top = 36.0
    width = label_w + n * cell + 80
    height = pad_top + label_w + n * cell + 10
    canvas = SvgCanvas(width, height)
    colors = color_map(dataset.attributes)
    canvas.text(width / 2, 20, title, size=13, anchor="middle", fill="#222222")

    origin_x, origin_y = label_w, pad_top + label_w
    for i, row_id in enumerate(ids):
        for j, col_id in enumerate(ids):
            if row_id == col_id:
                rate = 1.0
            else:
                rate = co_evolution_rate(evolving[row_id], evolving[col_id])
            canvas.group_open()
            canvas.rect(
                origin_x + j * cell, origin_y + i * cell, cell - 1, cell - 1,
                fill=_shade(rate), stroke="#dddddd", stroke_width=0.5,
            )
            canvas.title_tooltip(f"{row_id} × {col_id}: {rate:.2f}")
            canvas.group_close()

    for i, sid in enumerate(ids):
        attribute = dataset.sensor(sid).attribute
        y = origin_y + i * cell + cell / 2
        canvas.circle(origin_x - 8, y - 1, 3.5, fill=colors[attribute])
        canvas.text(origin_x - 16, y + 3, sid, size=9, anchor="end", fill="#333333")
        # Column labels, rotated via per-glyph positioning is overkill:
        # draw them diagonally with a transform group.
        x = origin_x + i * cell + cell / 2
        canvas.raw(
            f'<g transform="translate({x:.1f},{origin_y - 8:.1f}) rotate(-55)">'
            f'<text font-size="9" font-family="sans-serif" fill="#333333">'
            f"{sid}</text></g>"
        )

    # Scale legend.
    legend_x = origin_x + n * cell + 16
    for k in range(11):
        rate = k / 10.0
        canvas.rect(legend_x, origin_y + (10 - k) * 14, 16, 13, fill=_shade(rate))
    canvas.text(legend_x + 20, origin_y + 12, "1.0", size=9, fill="#333333")
    canvas.text(legend_x + 20, origin_y + 10 * 14 + 12, "0.0", size=9, fill="#333333")
    return canvas
