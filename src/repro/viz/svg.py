"""SVG primitives.

The whole visualization layer draws through :class:`SvgCanvas`, a small
element builder that produces standalone SVG documents or embeds them in a
self-contained HTML page.  No JavaScript is required for the core renders;
hover highlighting uses CSS (see :mod:`repro.viz.report` for the composed
interactive page).
"""

from __future__ import annotations

import html
from typing import Iterable, Sequence

__all__ = ["SvgCanvas", "escape"]


def escape(text: str) -> str:
    """Escape text for SVG/HTML content."""
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact coordinate formatting (2 decimals is sub-pixel)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SvgCanvas:
    """An SVG document under construction."""

    def __init__(self, width: float, height: float, background: str | None = "#ffffff") -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas size must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._elements: list[str] = []
        self._defs: list[str] = []
        self._styles: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives ----------------------------------------------------------

    def _attrs(self, **attributes: object) -> str:
        parts: list[str] = []
        for key, value in attributes.items():
            if value is None:
                continue
            name = key.rstrip("_").replace("_", "-")
            parts.append(f'{name}="{escape(value)}"')
        return " ".join(parts)

    def raw(self, element: str) -> None:
        """Append a raw SVG fragment (trusted input only)."""
        self._elements.append(element)

    def add_style(self, css: str) -> None:
        self._styles.append(css)

    def circle(self, cx: float, cy: float, r: float, **attributes: object) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f"{self._attrs(**attributes)}/>"
        )

    def rect(
        self, x: float, y: float, width: float, height: float, **attributes: object
    ) -> None:
        self._elements.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" '
            f'height="{_fmt(height)}" {self._attrs(**attributes)}/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, **attributes: object) -> None:
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f"{self._attrs(**attributes)}/>"
        )

    def polyline(self, points: Sequence[tuple[float, float]], **attributes: object) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="none" {self._attrs(**attributes)}/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12.0,
        anchor: str = "start",
        **attributes: object,
    ) -> None:
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'text-anchor="{escape(anchor)}" font-family="sans-serif" '
            f"{self._attrs(**attributes)}>{escape(content)}</text>"
        )

    def group_open(self, **attributes: object) -> None:
        self._elements.append(f"<g {self._attrs(**attributes)}>")

    def group_close(self) -> None:
        self._elements.append("</g>")

    def title_tooltip(self, text: str) -> None:
        """A <title> child for the previous element — browsers show a tooltip.

        Must be called between :meth:`group_open`/:meth:`group_close` (the
        tooltip attaches to the group).
        """
        self._elements.append(f"<title>{escape(text)}</title>")

    # -- output ---------------------------------------------------------------

    def to_string(self) -> str:
        style = (
            f"<style>{''.join(self._styles)}</style>" if self._styles else ""
        )
        defs = f"<defs>{''.join(self._defs)}</defs>" if self._defs else ""
        body = "".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
            f"{style}{defs}{body}</svg>"
        )

    def to_html_page(self, title: str = "Miscela-V") -> str:
        """Wrap the SVG in a minimal standalone HTML page."""
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{escape(title)}</title></head>"
            f"<body style='font-family:sans-serif;margin:16px'>"
            f"<h2>{escape(title)}</h2>{self.to_string()}</body></html>"
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_string())
