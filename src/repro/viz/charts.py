"""Analytical charts: sensitivity curves and support distributions.

Companions to the map/time-series views for the *analysis about the
analysis*: how #CAPs reacts to a parameter (§2.1), and how pattern supports
distribute.  Pure SVG like everything else in :mod:`repro.viz`.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.sensitivity import SweepPoint
from ..core.types import CAP
from .colors import PALETTE
from .svg import SvgCanvas

__all__ = ["render_sweep_chart", "render_support_histogram"]


def _axis_positions(lo: float, hi: float, length: float, pad: float):
    span = hi - lo if hi > lo else 1.0

    def place(value: float) -> float:
        return pad + (value - lo) / span * length

    return place


def render_sweep_chart(
    points: Sequence[SweepPoint],
    width: float = 560.0,
    height: float = 340.0,
    title: str | None = None,
) -> SvgCanvas:
    """#CAPs vs parameter value, one marker per sweep point."""
    if not points:
        raise ValueError("points must be non-empty")
    parameter = points[0].parameter
    xs = [p.value for p in points]
    ys = [p.num_caps for p in points]
    pad = 55.0
    plot_w, plot_h = width - 2 * pad, height - 2 * pad
    place_x = _axis_positions(min(xs), max(xs), plot_w, pad)
    place_y = _axis_positions(0.0, max(max(ys), 1), plot_h, pad)

    canvas = SvgCanvas(width, height)
    canvas.rect(pad, pad, plot_w, plot_h, fill="none", stroke="#999999")

    # Gridlines + y labels at quarters.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        value = frac * max(max(ys), 1)
        y = height - place_y(value)
        canvas.line(pad, y, pad + plot_w, y, stroke="#eeeeee")
        canvas.text(pad - 6, y + 3, f"{value:.0f}", size=9, anchor="end", fill="#666666")

    series = [(place_x(x), height - place_y(y)) for x, y in zip(xs, ys)]
    canvas.polyline(series, stroke=PALETTE[0], stroke_width=2)
    for (cx, cy), x, y in zip(series, xs, ys):
        canvas.group_open()
        canvas.circle(cx, cy, 3.5, fill=PALETTE[0])
        canvas.title_tooltip(f"{parameter}={x:g} → {y} CAPs")
        canvas.group_close()
        canvas.text(cx, height - pad + 16, f"{x:g}", size=9, anchor="middle", fill="#555555")

    canvas.text(width / 2, height - 12, parameter, size=11, anchor="middle", fill="#333333")
    canvas.text(14, height / 2, "#CAPs", size=11, anchor="middle", fill="#333333")
    canvas.text(width / 2, 20, title or f"#CAPs vs {parameter}", size=13,
                anchor="middle", fill="#222222")
    return canvas


def render_support_histogram(
    caps: Sequence[CAP],
    bins: int = 12,
    width: float = 560.0,
    height: float = 300.0,
    title: str = "CAP support distribution",
) -> SvgCanvas:
    """Histogram of pattern supports — how strong the discovered CAPs are."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    canvas = SvgCanvas(width, height)
    pad = 50.0
    plot_w, plot_h = width - 2 * pad, height - 2 * pad
    canvas.rect(pad, pad, plot_w, plot_h, fill="none", stroke="#999999")
    canvas.text(width / 2, 20, title, size=13, anchor="middle", fill="#222222")
    if not caps:
        canvas.text(width / 2, height / 2, "no CAPs", size=12, anchor="middle", fill="#888888")
        return canvas

    supports = [cap.support for cap in caps]
    lo, hi = min(supports), max(supports)
    span = max(hi - lo, 1)
    counts = [0] * bins
    for s in supports:
        index = min(int((s - lo) / span * bins), bins - 1)
        counts[index] += 1
    top = max(counts)
    bar_w = plot_w / bins
    for i, count in enumerate(counts):
        bar_h = (count / top) * (plot_h - 6) if top else 0.0
        x = pad + i * bar_w
        canvas.group_open()
        canvas.rect(x + 1, pad + plot_h - bar_h, bar_w - 2, bar_h,
                    fill=PALETTE[2], stroke="#336655", stroke_width=0.5)
        bucket_lo = lo + span * i / bins
        bucket_hi = lo + span * (i + 1) / bins
        canvas.title_tooltip(f"support {bucket_lo:.0f}–{bucket_hi:.0f}: {count} CAPs")
        canvas.group_close()
    canvas.text(pad, height - 12, f"{lo}", size=9, fill="#555555")
    canvas.text(pad + plot_w, height - 12, f"{hi}", size=9, anchor="end", fill="#555555")
    canvas.text(width / 2, height - 12, "support", size=11, anchor="middle", fill="#333333")
    return canvas
