"""Minimal HTTP request/response model for the API server.

The paper uses django purely as an API layer between the JavaScript front
end, MISCELA, and MongoDB.  We reproduce that layer as plain WSGI: this
module defines the framework-ish primitives (:class:`Request`,
:class:`Response`, :class:`HTTPError`) and the WSGI adapter; routing and
handlers live in their own modules so "we can modify each component
individually" (Section 3.4) holds here too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence
from urllib.parse import parse_qs

__all__ = ["Request", "Response", "HTTPError", "json_response", "wsgi_adapter"]

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    301: "Moved Permanently",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Machine-readable error codes for the v1 error envelope, by status.
_DEFAULT_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    406: "not_acceptable",
    409: "conflict",
    410: "gone",
    413: "payload_too_large",
    500: "internal_error",
}


class HTTPError(Exception):
    """An error with an HTTP status; the middleware renders it as JSON.

    ``code`` is the stable machine-readable identifier the v1 error
    envelope exposes (defaults to a per-status constant); ``headers`` are
    merged into the rendered error response (e.g. ``Allow`` on a 405).
    """

    def __init__(
        self,
        status: int,
        message: str,
        details: Any = None,
        code: str | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details
        self.code = code if code is not None else _DEFAULT_ERROR_CODES.get(status, "error")
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Mapping[str, list[str]] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Filled by the router with the matched path parameters.
    path_params: dict[str, str] = field(default_factory=dict)
    #: Filled by the router with the matched route, so the error envelope
    #: can add deprecation headers even when the handler raises.
    route: Any = field(default=None, repr=False, compare=False)
    #: Filled by the request-id middleware: the honored ``X-Request-Id``
    #: header or a freshly minted id.  Stamped onto submitted jobs so
    #: spans across processes share the request's trace.
    trace_id: str | None = None

    def param(self, name: str, default: str | None = None) -> str | None:
        """First query-string value for ``name``."""
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> Any:
        """Parse the body as JSON; raises 400 on malformed input."""
        if not self.body:
            raise HTTPError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from exc

    def text(self) -> str:
        """The body as UTF-8 text (CSV chunk uploads)."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HTTPError(400, f"body is not valid UTF-8: {exc}") from exc


@dataclass
class Response:
    """One HTTP response."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def status_line(self) -> str:
        return f"{self.status} {_STATUS_TEXT.get(self.status, 'Unknown')}"

    def json(self) -> Any:
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8")) if self.body else None


def json_response(payload: Any, status: int = 200) -> Response:
    """A JSON response with the right content type."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(
        status=status,
        headers={"Content-Type": "application/json; charset=utf-8"},
        body=body,
    )


def html_response(markup: str, status: int = 200) -> Response:
    """An HTML response (the visualization endpoints)."""
    return Response(
        status=status,
        headers={"Content-Type": "text/html; charset=utf-8"},
        body=markup.encode("utf-8"),
    )


def svg_response(markup: str, status: int = 200) -> Response:
    """A raw SVG response (``Accept: image/svg+xml`` on viz endpoints)."""
    return Response(
        status=status,
        headers={"Content-Type": "image/svg+xml; charset=utf-8"},
        body=markup.encode("utf-8"),
    )


def negotiate_media_type(request: Request, offered: Sequence[str]) -> str:
    """Pick the best of ``offered`` media types for the request's Accept.

    Standard q-value negotiation, simplified to what the viz endpoints
    need: exact types beat ``type/*`` beat ``*/*``; among equal matches the
    client's header order wins, and with no ``Accept`` header (or an
    unweighted wildcard tie) the server's first offer is the default.
    Raises a 406 when the header excludes every offered type.
    """
    header = (request.headers or {}).get("accept", "")
    if not header.strip():
        return offered[0]
    ranges: list[tuple[str, float, int]] = []
    for position, part in enumerate(header.split(",")):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(";")
        media = pieces[0].strip().lower()
        quality = 1.0
        for piece in pieces[1:]:
            piece = piece.strip()
            if piece.startswith("q="):
                try:
                    quality = float(piece[2:])
                except ValueError:
                    quality = 0.0
        ranges.append((media, quality, position))
    best: tuple[float, int, int] | None = None
    best_offer = ""
    for offer in offered:
        main_type = offer.split("/", 1)[0]
        for media, quality, position in ranges:
            if quality <= 0.0:
                continue
            if media == offer:
                specificity = 2
            elif media == f"{main_type}/*":
                specificity = 1
            elif media == "*/*":
                specificity = 0
            else:
                continue
            candidate = (quality, specificity, -position)
            if best is None or candidate > best:
                best = candidate
                best_offer = offer
    if best is None:
        raise HTTPError(
            406,
            f"cannot satisfy Accept: {header!r}; offered types: {', '.join(offered)}",
            details={"offered": list(offered)},
        )
    return best_offer


Handler = Callable[[Request], Response]


def wsgi_adapter(handler: Handler) -> Callable[..., Iterable[bytes]]:
    """Wrap the app's root handler as a WSGI callable (for ``wsgiref``)."""

    def application(environ: Mapping[str, Any], start_response: Callable[..., Any]) -> Iterable[bytes]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        body = environ["wsgi.input"].read(length) if length else b""
        headers = {
            key[5:].replace("_", "-").lower(): value
            for key, value in environ.items()
            if key.startswith("HTTP_")
        }
        if environ.get("CONTENT_TYPE"):
            headers["content-type"] = environ["CONTENT_TYPE"]
        request = Request(
            method=environ.get("REQUEST_METHOD", "GET").upper(),
            path=environ.get("PATH_INFO", "/"),
            query=parse_qs(environ.get("QUERY_STRING", "")),
            headers=headers,
            body=body,
        )
        response = handler(request)
        start_response(response.status_line, sorted(response.headers.items()))
        return [response.body]

    return application


def make_threaded_server(host: str, port: int, wsgi_app: Callable[..., Iterable[bytes]]):
    """A ``wsgiref`` server that handles each request on its own thread.

    The stock ``make_server`` is single-threaded: one long ``POST /mine``
    freezes every map click until mining finishes.  Mixing in
    :class:`socketserver.ThreadingMixIn` gives a thread per request, so
    job-status polls and visualization requests are answered while a mine
    runs (sync on a request thread, or async on the job executor).  Daemon
    threads: in-flight requests don't block interpreter exit on Ctrl-C.
    """
    from socketserver import ThreadingMixIn
    from wsgiref.simple_server import WSGIServer, make_server

    class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
        daemon_threads = True

    return make_server(host, port, wsgi_app, server_class=ThreadingWSGIServer)


__all__.append("html_response")
__all__.append("svg_response")
__all__.append("negotiate_media_type")
__all__.append("make_threaded_server")
