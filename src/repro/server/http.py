"""Minimal HTTP request/response model for the API server.

The paper uses django purely as an API layer between the JavaScript front
end, MISCELA, and MongoDB.  We reproduce that layer as plain WSGI: this
module defines the framework-ish primitives (:class:`Request`,
:class:`Response`, :class:`HTTPError`) and the WSGI adapter; routing and
handlers live in their own modules so "we can modify each component
individually" (Section 3.4) holds here too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping
from urllib.parse import parse_qs

__all__ = ["Request", "Response", "HTTPError", "json_response", "wsgi_adapter"]

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HTTPError(Exception):
    """An error with an HTTP status; the middleware renders it as JSON."""

    def __init__(self, status: int, message: str, details: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Mapping[str, list[str]] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Filled by the router with the matched path parameters.
    path_params: dict[str, str] = field(default_factory=dict)

    def param(self, name: str, default: str | None = None) -> str | None:
        """First query-string value for ``name``."""
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> Any:
        """Parse the body as JSON; raises 400 on malformed input."""
        if not self.body:
            raise HTTPError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"malformed JSON body: {exc}") from exc

    def text(self) -> str:
        """The body as UTF-8 text (CSV chunk uploads)."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HTTPError(400, f"body is not valid UTF-8: {exc}") from exc


@dataclass
class Response:
    """One HTTP response."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def status_line(self) -> str:
        return f"{self.status} {_STATUS_TEXT.get(self.status, 'Unknown')}"

    def json(self) -> Any:
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8")) if self.body else None


def json_response(payload: Any, status: int = 200) -> Response:
    """A JSON response with the right content type."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(
        status=status,
        headers={"Content-Type": "application/json; charset=utf-8"},
        body=body,
    )


def html_response(markup: str, status: int = 200) -> Response:
    """An HTML response (the visualization endpoints)."""
    return Response(
        status=status,
        headers={"Content-Type": "text/html; charset=utf-8"},
        body=markup.encode("utf-8"),
    )


Handler = Callable[[Request], Response]


def wsgi_adapter(handler: Handler) -> Callable[..., Iterable[bytes]]:
    """Wrap the app's root handler as a WSGI callable (for ``wsgiref``)."""

    def application(environ: Mapping[str, Any], start_response: Callable[..., Any]) -> Iterable[bytes]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        body = environ["wsgi.input"].read(length) if length else b""
        headers = {
            key[5:].replace("_", "-").lower(): value
            for key, value in environ.items()
            if key.startswith("HTTP_")
        }
        if environ.get("CONTENT_TYPE"):
            headers["content-type"] = environ["CONTENT_TYPE"]
        request = Request(
            method=environ.get("REQUEST_METHOD", "GET").upper(),
            path=environ.get("PATH_INFO", "/"),
            query=parse_qs(environ.get("QUERY_STRING", "")),
            headers=headers,
            body=body,
        )
        response = handler(request)
        start_response(response.status_line, sorted(response.headers.items()))
        return [response.body]

    return application


def make_threaded_server(host: str, port: int, wsgi_app: Callable[..., Iterable[bytes]]):
    """A ``wsgiref`` server that handles each request on its own thread.

    The stock ``make_server`` is single-threaded: one long ``POST /mine``
    freezes every map click until mining finishes.  Mixing in
    :class:`socketserver.ThreadingMixIn` gives a thread per request, so
    job-status polls and visualization requests are answered while a mine
    runs (sync on a request thread, or async on the job executor).  Daemon
    threads: in-flight requests don't block interpreter exit on Ctrl-C.
    """
    from socketserver import ThreadingMixIn
    from wsgiref.simple_server import WSGIServer, make_server

    class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
        daemon_threads = True

    return make_server(host, port, wsgi_app, server_class=ThreadingWSGIServer)


__all__.append("html_response")
__all__.append("make_threaded_server")
