"""URL routing.

A tiny django-style URL dispatcher: routes are method + path patterns with
``{name}`` placeholders, matched in registration order.  ``{name}``
captures one path segment; captured values land in ``request.path_params``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from .http import HTTPError, Request, Response

__all__ = ["Router", "Route"]

Handler = Callable[[Request], Response]

_PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    if not pattern.startswith("/"):
        raise ValueError(f"route pattern must start with '/', got {pattern!r}")
    parts: list[str] = []
    last = 0
    for match in _PLACEHOLDER.finditer(pattern):
        parts.append(re.escape(pattern[last : match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        last = match.end()
    parts.append(re.escape(pattern[last:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    regex: re.Pattern[str]
    handler: Handler


class Router:
    """Ordered route table with 404/405 semantics."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        method = method.upper()
        if method not in ("GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"):
            raise ValueError(f"unsupported method {method!r}")
        self._routes.append(Route(method, pattern, _compile_pattern(pattern), handler))

    def get(self, pattern: str) -> Callable[[Handler], Handler]:
        """Decorator form: ``@router.get("/caps/{dataset}")``."""
        return self._decorator("GET", pattern)

    def post(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("POST", pattern)

    def delete(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._decorator("DELETE", pattern)

    def _decorator(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler)
            return handler

        return register

    def dispatch(self, request: Request) -> Response:
        """Route a request; raises 404/405 HTTPError when nothing matches."""
        path_matched = False
        for route in self._routes:
            match = route.regex.match(request.path)
            if match is None:
                continue
            path_matched = True
            if route.method != request.method:
                continue
            request.path_params = dict(match.groupdict())
            return route.handler(request)
        if path_matched:
            raise HTTPError(405, f"method {request.method} not allowed for {request.path}")
        raise HTTPError(404, f"no route for {request.path}")

    def routes(self) -> list[tuple[str, str]]:
        """(method, pattern) pairs — the API index endpoint's payload."""
        return [(r.method, r.pattern) for r in self._routes]
