"""URL routing.

A tiny django-style URL dispatcher: routes are method + path patterns with
``{name}`` placeholders, matched in registration order.  ``{name}``
captures one path segment; captured values land in ``request.path_params``.

Routes carry *metadata* beyond the handler — a name, a one-line summary
(defaulting to the handler's docstring), declared query parameters and
response descriptions, and a deprecation flag with a pointer at the v1
successor route.  The metadata feeds two consumers:

* ``GET /api/v1/schema`` — :mod:`repro.server.schema` walks
  :meth:`Router.describe` and emits an OpenAPI-style document covering
  every registered route (the CI route-parity check keeps `API.md` in
  sync with it);
* the dispatcher itself — deprecated routes answer normally but gain
  ``Deprecation: true`` and a ``Link: <successor>; rel="successor-version"``
  header, and a method mismatch raises a 405 carrying the ``Allow`` header.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .http import HTTPError, Request, Response

__all__ = ["Router", "Route", "apply_deprecation_headers"]

Handler = Callable[[Request], Response]


def apply_deprecation_headers(route: "Route | None", response: Response) -> None:
    """Mark a response served by a deprecated route (success or error)."""
    if route is None or not route.deprecated:
        return
    response.headers.setdefault("Deprecation", "true")
    if route.successor:
        response.headers.setdefault(
            "Link", f'<{route.successor}>; rel="successor-version"'
        )

_PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    if not pattern.startswith("/"):
        raise ValueError(f"route pattern must start with '/', got {pattern!r}")
    parts: list[str] = []
    last = 0
    for match in _PLACEHOLDER.finditer(pattern):
        parts.append(re.escape(pattern[last : match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        last = match.end()
    parts.append(re.escape(pattern[last:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    regex: re.Pattern[str]
    handler: Handler
    #: Operation id for the schema (defaults to the handler's ``__name__``).
    name: str = ""
    #: One-line human description (defaults to the docstring's first line).
    summary: str = ""
    #: Declared query parameters: ``{"name", "type", "description"}`` dicts.
    query: tuple[Mapping[str, str], ...] = ()
    #: Response descriptions keyed by status code string.
    responses: Mapping[str, str] = field(default_factory=dict)
    #: Deprecated routes still answer, but with deprecation headers.
    deprecated: bool = False
    #: The v1 route that replaces this one (``Link rel="successor-version"``).
    successor: str | None = None

    @property
    def path_params(self) -> list[str]:
        return _PLACEHOLDER.findall(self.pattern)


class Router:
    """Ordered route table with 404/405 semantics and schema introspection."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Handler,
        *,
        name: str | None = None,
        summary: str | None = None,
        query: Sequence[Mapping[str, str]] = (),
        responses: Mapping[str, str] | None = None,
        deprecated: bool = False,
        successor: str | None = None,
    ) -> None:
        method = method.upper()
        if method not in ("GET", "POST", "PUT", "DELETE", "PATCH", "HEAD"):
            raise ValueError(f"unsupported method {method!r}")
        if name is None:
            name = getattr(handler, "__name__", "") or ""
        if summary is None:
            doc = (getattr(handler, "__doc__", "") or "").strip()
            summary = doc.splitlines()[0].strip() if doc else ""
        self._routes.append(
            Route(
                method,
                pattern,
                _compile_pattern(pattern),
                handler,
                name=name,
                summary=summary,
                query=tuple(dict(q) for q in query),
                responses=dict(responses or {}),
                deprecated=deprecated,
                successor=successor,
            )
        )

    def get(self, pattern: str, **meta: Any) -> Callable[[Handler], Handler]:
        """Decorator form: ``@router.get("/caps/{dataset}")``."""
        return self._decorator("GET", pattern, **meta)

    def post(self, pattern: str, **meta: Any) -> Callable[[Handler], Handler]:
        return self._decorator("POST", pattern, **meta)

    def delete(self, pattern: str, **meta: Any) -> Callable[[Handler], Handler]:
        return self._decorator("DELETE", pattern, **meta)

    def patch(self, pattern: str, **meta: Any) -> Callable[[Handler], Handler]:
        return self._decorator("PATCH", pattern, **meta)

    def _decorator(
        self, method: str, pattern: str, **meta: Any
    ) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self.add(method, pattern, handler, **meta)
            return handler

        return register

    def dispatch(self, request: Request) -> Response:
        """Route a request; raises 404/405 HTTPError when nothing matches."""
        allowed: set[str] = set()
        for route in self._routes:
            match = route.regex.match(request.path)
            if match is None:
                continue
            if route.method != request.method:
                allowed.add(route.method)
                continue
            request.path_params = dict(match.groupdict())
            request.route = route
            response = route.handler(request)
            apply_deprecation_headers(route, response)
            return response
        if allowed:
            raise HTTPError(
                405,
                f"method {request.method} not allowed for {request.path}",
                code="method_not_allowed",
                headers={"Allow": ", ".join(sorted(allowed))},
            )
        raise HTTPError(404, f"no route for {request.path}", code="not_found")

    def routes(self) -> list[tuple[str, str]]:
        """(method, pattern) pairs — the API index endpoint's payload."""
        return [(r.method, r.pattern) for r in self._routes]

    def describe(self) -> list[dict[str, Any]]:
        """Full metadata per route — the schema generator's input."""
        return [
            {
                "method": route.method,
                "pattern": route.pattern,
                "name": route.name,
                "summary": route.summary,
                "path_params": route.path_params,
                "query": [dict(q) for q in route.query],
                "responses": dict(route.responses),
                "deprecated": route.deprecated,
                "successor": route.successor,
            }
            for route in self._routes
        ]
