"""The versioned resource-oriented HTTP API: ``/api/v1``.

Where the legacy surface translated the paper's Figure-2 flow
endpoint-by-endpoint into RPC calls (``POST /mine`` sometimes mines,
sometimes replays cache, sometimes enqueues a job), v1 models the system as
resources with durable identities:

* **Datasets** — ``/api/v1/datasets/{name}``: uploaded through the same
  chunked session protocol, now race-safe and abortable.
* **Results** — ``/api/v1/results/{key}``: a mined (dataset, parameters)
  outcome, addressed by its cache key.  ``POST
  /api/v1/datasets/{name}/results`` creates (or dedups onto) one and
  returns ``201 Location: /api/v1/results/{key}`` for sync mining or
  ``202 Location: /api/v1/jobs/{id}`` for async.  Metadata GETs carry an
  ``ETag`` derived from the cache key + the dataset *generation*, so
  conditional requests (``If-None-Match``) revalidate for free with a 304.
* **CAP pages** — ``/api/v1/results/{key}/caps?offset=&limit=&sensor=&attribute=``:
  paginated, filterable slices of the CAP list, served from the memoized
  result object (the sensor filter rides its inverted index) with RFC-5988
  ``Link`` headers for next/prev/first/last.
* **Jobs** — ``/api/v1/jobs/{id}``: the async lifecycle, every
  representation carrying links from submission through the result
  resource.
* **Schema** — ``GET /api/v1/schema``: a generated OpenAPI-style
  description of every registered route (see :mod:`repro.server.schema`);
  `API.md` is rendered from it and CI enforces parity.

Visualization endpoints content-negotiate: ``Accept: image/svg+xml``
returns the bare SVG document, ``text/html`` (the default) the standalone
page.

Every error rendered under this prefix uses the uniform envelope
``{"error": {"code", "message", "detail"}}`` (see
:mod:`repro.server.middleware`).
"""

from __future__ import annotations

import time
from typing import Any, Mapping
from urllib.parse import urlencode

from ..cache.keys import cache_key
from ..obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE, get_registry
from ..obs.trace import trace_tree
from ..jobs import (
    KIND_MERGE,
    KIND_SHARD,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobStateError,
)
from ..stream import (
    ALERT_RULES,
    ALERTS,
    BatchError,
    RetentionError,
    RuleError,
    append_batch,
    feed_snapshot,
    first_live_seq,
    get_retention,
    latest_seq,
    public_event,
    public_rule,
    read_events,
    render_sse,
    render_sse_bootstrap,
    set_retention,
    validate_rule,
)
from .handlers import (
    ServerState,
    admin_stats_payload,
    correlated_sensors_core,
    dataset_result_documents,
    evicted_job_response,
    parse_mine_mode,
    parse_parameters,
    parse_upload_begin,
    render_viz_svg,
    results_by_dataset_payload,
)
from .http import (
    HTTPError,
    Request,
    Response,
    html_response,
    json_response,
    negotiate_media_type,
    svg_response,
)

__all__ = ["register_v1_routes", "API_PREFIX", "DEFAULT_PAGE_LIMIT", "MAX_PAGE_LIMIT"]

API_PREFIX = "/api/v1"

#: Page sizing for ``GET /api/v1/results/{key}/caps``.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: Long-poll ceiling for the change-feed endpoints; the HTTP server's
#: request timeout is 30s, so the poll must resolve comfortably inside it.
MAX_WAIT_SECONDS = 20.0


def _url(path: str) -> str:
    return f"{API_PREFIX}{path}"


# -- representation helpers ----------------------------------------------------


def _dataset_links(name: str) -> dict[str, str]:
    return {
        "self": _url(f"/datasets/{name}"),
        "results": _url(f"/datasets/{name}/results"),
        "viz_map": _url(f"/datasets/{name}/viz/map"),
    }


def _result_links(key: str, dataset: str) -> dict[str, str]:
    return {
        "self": _url(f"/results/{key}"),
        "caps": _url(f"/results/{key}/caps"),
        "dataset": _url(f"/datasets/{dataset}"),
    }


def _job_resource(job: Job, children: list[Job] | None = None) -> dict[str, Any]:
    document = job.to_document()
    links = {
        "self": _url(f"/jobs/{job.job_id}"),
        "dataset": _url(f"/datasets/{job.dataset}"),
    }
    if job.state not in TERMINAL_STATES:
        links["cancel"] = _url(f"/jobs/{job.job_id}/cancel")
    if job.state == SUCCEEDED and job.result_key is not None:
        links["result"] = _url(f"/results/{job.result_key}")
    document["links"] = links
    if children:
        # The distributed parent's shard tree: per-sub-job state, attempts,
        # and workers, so one GET shows where a distributed mine stands.
        document["shards"] = [
            _subjob_entry(child) for child in children if child.kind == KIND_SHARD
        ]
        merge = next((c for c in children if c.kind == KIND_MERGE), None)
        if merge is not None:
            document["merge"] = _subjob_entry(merge)
    return document


def _subjob_entry(child: Job) -> dict[str, Any]:
    return {
        "job_id": child.job_id,
        "kind": child.kind,
        "shard_index": child.shard_index,
        "state": child.state,
        "attempt": child.attempt,
        "max_attempts": child.max_attempts,
        "worker_id": child.worker_id,
        "lease_expires_at": child.lease_expires_at,
        "not_before": child.not_before,
        "error": child.error.to_document() if child.error else None,
    }


def _result_resource(state: ServerState, document: Mapping[str, Any]) -> dict[str, Any]:
    """Result *metadata* — identity, shape, and links; never the CAP list.

    The CAPs themselves are a sub-resource (``…/caps``) so a big mine's
    metadata stays a small constant-size payload.
    """
    key = str(document["key"])
    dataset = str(document["payload"]["dataset"])
    return {
        "key": key,
        "dataset": dataset,
        "parameters": document["payload"]["parameters"],
        "num_caps": len(document["result"]["caps"]),
        "elapsed_seconds": document["result"].get("elapsed_seconds", 0.0),
        "links": _result_links(key, dataset),
    }


def _result_etag(state: ServerState, key: str, dataset: str, *parts: object) -> str:
    """A strong ETag for one result representation.

    Keyed off the cache key (content identity) and the dataset generation
    (a re-upload/delete invalidates every representation even if a key were
    ever resurrected from a snapshot); paginated representations append a
    digest of their offset/limit/filters so each page validates
    independently.  The digest keeps distinct parameter combinations from
    colliding (and arbitrary filter strings out of the header value).
    """
    generation = state.dataset_generation(dataset)
    suffix = ""
    if any(part is not None and part != "" for part in parts):
        import hashlib
        import json as _json

        digest = hashlib.sha256(
            _json.dumps([None if p == "" else p for p in parts]).encode("utf-8")
        ).hexdigest()[:12]
        suffix = f"-p{digest}"
    return f'"{key[:24]}-g{generation}{suffix}"'


def _not_modified(request: Request, etag: str) -> Response | None:
    """A 304 when ``If-None-Match`` revalidates ``etag``, else None."""
    header = (request.headers or {}).get("if-none-match", "")
    if not header:
        return None
    tags = [tag.strip() for tag in header.split(",")]
    if "*" in tags or etag in tags:
        return Response(status=304, headers={"ETag": etag})
    return None


def _int_param(request: Request, name: str, default: int, minimum: int, maximum: int) -> int:
    raw = request.param(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise HTTPError(
            400, f"{name} must be an integer, got {raw!r}", code="invalid_pagination"
        ) from exc
    if not minimum <= value <= maximum:
        raise HTTPError(
            400,
            f"{name} must be between {minimum} and {maximum}, got {value}",
            code="invalid_pagination",
        )
    return value


def _wait_param(request: Request) -> float:
    """The long-poll ``wait`` query parameter in seconds (default 0)."""
    raw = request.param("wait")
    if raw is None:
        return 0.0
    try:
        value = float(raw)
    except ValueError as exc:
        raise HTTPError(
            400, f"wait must be a number of seconds, got {raw!r}", code="invalid_wait"
        ) from exc
    if not 0 <= value <= MAX_WAIT_SECONDS:
        raise HTTPError(
            400,
            f"wait must be between 0 and {MAX_WAIT_SECONDS:g} seconds, got {value:g}",
            code="invalid_wait",
        )
    return value


#: Long-poll back-off bounds: start fast so a feed that lands events
#: moments after the poll parks answers promptly, then double up to a cap
#: so an idle 20s poll costs ~80 wakeups, not 400 fixed-rate rescans.
POLL_BACKOFF_INITIAL = 0.05
POLL_BACKOFF_MAX = 0.25


def _require_live_cursor(state: ServerState, name: str, cursor: int) -> int:
    """The feed's ``first_live_seq``; raises 410 when ``cursor`` predates it.

    After a retention fold the events below the horizon are gone — a
    cursor parked behind ``first_live_seq - 1`` can never be answered
    faithfully again.  The 410 envelope carries everything the client
    needs to recover: the horizon itself and a link to the feed snapshot
    that replaces the trimmed prefix.
    """
    first_live = first_live_seq(state.database, name)
    if cursor < first_live - 1:
        raise HTTPError(
            410,
            f"cursor {cursor} predates the retention horizon; events below "
            f"seq {first_live} have been folded into the feed snapshot",
            code="cursor_expired",
            details={
                "cursor": int(cursor),
                "first_live_seq": int(first_live),
                "links": {
                    "snapshot": _url(f"/datasets/{name}/events/snapshot"),
                    "events": _url(f"/datasets/{name}/events"),
                },
            },
        )
    return first_live


def _poll_events(
    state: ServerState, name: str, cursor: int, limit: int, wait: float
) -> list[dict[str, Any]]:
    """One change-feed page past ``cursor``, long-polling up to ``wait`` s.

    Each poll beat first adopts peers' persisted tail (the resident miner
    may run in another worker process), so a long-poll parked on an idle
    feed wakes as soon as *any* process lands events.  The cursor is
    horizon-checked every beat, not just on entry: a retention fold in
    another process can expire a parked cursor mid-poll, and answering
    with a silently-empty page would look like "no new events" instead
    of "your history is gone".  Idle beats back off exponentially
    (doubling from {POLL_BACKOFF_INITIAL}s, capped at {POLL_BACKOFF_MAX}s
    and at the remaining wait), trading a bounded wake latency for far
    fewer store rescans under parked long-polls.
    """
    deadline = time.monotonic() + wait
    delay = POLL_BACKOFF_INITIAL
    while True:
        state._refresh_shared()
        _require_live_cursor(state, name, cursor)
        events = read_events(state.database, name, cursor, limit)
        remaining = deadline - time.monotonic()
        if events or remaining <= 0:
            return events
        time.sleep(min(delay, remaining))
        delay = min(delay * 2, POLL_BACKOFF_MAX)


def _page_link_header(
    base_path: str, offset: int, limit: int, total: int, filters: Mapping[str, str]
) -> str:
    """RFC-5988 ``Link`` header with first/prev/next/last page relations."""

    def page_url(page_offset: int) -> str:
        query = {"offset": page_offset, "limit": limit, **filters}
        return f"{base_path}?{urlencode(query)}"

    last_offset = ((total - 1) // limit) * limit if total > 0 else 0
    links = [f'<{page_url(0)}>; rel="first"', f'<{page_url(last_offset)}>; rel="last"']
    if offset > 0:
        links.append(f'<{page_url(max(0, offset - limit))}>; rel="prev"')
    if offset + limit < total:
        links.append(f'<{page_url(offset + limit)}>; rel="next"')
    return ", ".join(links)


def register_v1_routes(router: Any, state: ServerState) -> None:
    """Attach the ``/api/v1`` resource routes to a router."""

    @router.get(
        "/api/v1",
        responses={"200": "service document with top-level resource links"},
    )
    def v1_index(request: Request) -> Response:
        """Service document: version, top-level links, deprecation policy."""
        return json_response(
            {
                "service": "miscela-v",
                "api_version": "v1",
                "links": {
                    "self": API_PREFIX,
                    "schema": _url("/schema"),
                    "datasets": _url("/datasets"),
                    "jobs": _url("/jobs"),
                    "admin_stats": _url("/admin/stats"),
                },
                "deprecation_policy": (
                    "unversioned routes answer with 'Deprecation: true' and a "
                    "'Link: rel=\"successor-version\"' header pointing here"
                ),
            }
        )

    @router.get(
        "/api/v1/schema",
        responses={"200": "OpenAPI-style description of every registered route"},
    )
    def v1_schema(request: Request) -> Response:
        """Self-describing schema generated from router introspection."""
        from .schema import build_schema  # local: schema imports nothing from here

        return json_response(build_schema(router))

    # -- datasets -------------------------------------------------------------

    @router.get(
        "/api/v1/datasets",
        responses={"200": "dataset collection with per-item links"},
    )
    def v1_list_datasets(request: Request) -> Response:
        """List uploaded datasets as linked resources."""
        return json_response(
            {
                "datasets": [
                    {"name": name, "links": _dataset_links(name)}
                    for name in state.dataset_names()
                ]
            }
        )

    @router.get(
        "/api/v1/datasets/{name}",
        responses={"200": "dataset summary", "404": "unknown dataset"},
    )
    def v1_describe_dataset(request: Request) -> Response:
        """Describe one dataset (sensors, records, attributes, time span)."""
        name = request.path_params["name"]
        dataset = state.get_dataset(name)
        payload = dict(dataset.describe())
        payload["links"] = _dataset_links(name)
        return json_response(payload)

    @router.delete(
        "/api/v1/datasets/{name}",
        responses={"204": "dataset deleted", "404": "unknown dataset"},
    )
    def v1_delete_dataset(request: Request) -> Response:
        """Delete a dataset and every result mined from it."""
        name = request.path_params["name"]
        if not state.delete_dataset(name):
            raise HTTPError(404, f"unknown dataset {name!r}", code="unknown_dataset")
        return Response(status=204)

    # -- uploads --------------------------------------------------------------

    @router.post(
        "/api/v1/datasets/{name}/upload/begin",
        responses={"201": "upload session opened",
                   "409": "a session is already open for this name"},
    )
    def v1_upload_begin(request: Request) -> Response:
        """Open a chunked-upload session (location + attribute CSVs)."""
        name = request.path_params["name"]
        locations, attributes = parse_upload_begin(request)
        state.begin_upload(name, locations, attributes)
        return json_response(
            {
                "dataset": name,
                "status": "upload started",
                "links": {
                    "chunk": _url(f"/datasets/{name}/upload/chunk"),
                    "finish": _url(f"/datasets/{name}/upload/finish"),
                    "abort": _url(f"/datasets/{name}/upload/abort"),
                },
            },
            status=201,
        )

    @router.post(
        "/api/v1/datasets/{name}/upload/chunk",
        responses={"200": "chunk accepted", "400": "malformed chunk",
                   "409": "no session open"},
    )
    def v1_upload_chunk(request: Request) -> Response:
        """Append one ≤10,000-line data.csv chunk to the open session."""
        name = request.path_params["name"]
        chunks, rows, total = state.append_upload_chunk(name, request.text())
        return json_response(
            {"dataset": name, "chunk": chunks, "rows_in_chunk": rows,
             "rows_total": total}
        )

    @router.post(
        "/api/v1/datasets/{name}/upload/finish",
        responses={"201": "dataset validated and stored",
                   "400": "validation failed", "409": "no session open"},
    )
    def v1_upload_finish(request: Request) -> Response:
        """Validate, assemble, and store the uploaded dataset."""
        name = request.path_params["name"]
        dataset = state.finish_upload(name)
        response = json_response(
            {"dataset": name, "summary": dataset.describe(),
             "links": _dataset_links(name)},
            status=201,
        )
        response.headers["Location"] = _url(f"/datasets/{name}")
        return response

    @router.post(
        "/api/v1/datasets/{name}/upload/abort",
        responses={"200": "session discarded", "409": "no session open"},
    )
    def v1_upload_abort(request: Request) -> Response:
        """Discard an open upload session (e.g. after a rejected chunk)."""
        name = request.path_params["name"]
        if not state.abort_upload(name):
            raise HTTPError(
                409,
                f"no upload in progress for dataset {name!r}",
                code="no_upload_in_progress",
            )
        return json_response({"dataset": name, "status": "upload aborted"})

    # -- results --------------------------------------------------------------

    @router.post(
        "/api/v1/datasets/{name}/results",
        responses={
            "201": "result resource created (or dedup'd onto); Location set",
            "202": "async, distributed, or streaming job accepted; Location "
                   "points at the job (mode=distributed shards the mine into "
                   "sub-jobs any worker process can claim; mode=streaming "
                   "opens the resident miner that drains appended "
                   "observation batches into the CAP change feed)",
            "400": "bad body/parameters/mode",
            "404": "unknown dataset",
            "409": "mode=distributed or mode=streaming without a durable "
                   "job registry",
        },
    )
    def v1_create_result(request: Request) -> Response:
        """Mine (or dedup onto) the result resource for (dataset, parameters)."""
        name = request.path_params["name"]
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "expected a JSON object")
        if "parameters" not in payload:
            raise HTTPError(
                400, "body must contain 'parameters'", code="missing_fields"
            )
        mode = parse_mine_mode(payload, request)
        dataset = state.get_dataset(name)
        params = parse_parameters(payload["parameters"])
        if mode == "streaming":
            job, created = state.submit_stream_job(
                dataset, params, trace_id=request.trace_id
            )
            body = _job_resource(job)
            body["deduplicated"] = not created
            response = json_response(body, status=202)
            response.headers["Location"] = _url(f"/jobs/{job.job_id}")
            return response
        if mode in ("async", "distributed"):
            plan_workers = payload.get("plan_workers")
            if plan_workers is not None and (
                not isinstance(plan_workers, int) or plan_workers < 1
            ):
                raise HTTPError(
                    400, "'plan_workers' must be a positive integer",
                    code="bad_plan_workers",
                )
            job, created = state.submit_mine_job(
                dataset,
                params,
                distributed=(mode == "distributed"),
                plan_workers=plan_workers,
                trace_id=request.trace_id,
            )
            body = _job_resource(job)
            body["deduplicated"] = not created
            response = json_response(body, status=202)
            response.headers["Location"] = _url(f"/jobs/{job.job_id}")
            return response
        result = state.cache.mine_cached(dataset, params)
        key = cache_key(name, params)
        body = {
            "key": key,
            "dataset": name,
            "parameters": params.to_document(),
            "num_caps": result.num_caps,
            "elapsed_seconds": result.elapsed_seconds,
            "from_cache": result.from_cache,
            "links": _result_links(key, name),
        }
        response = json_response(body, status=201)
        response.headers["Location"] = _url(f"/results/{key}")
        response.headers["ETag"] = _result_etag(state, key, name)
        return response

    @router.get(
        "/api/v1/datasets/{name}/results",
        responses={"200": "result resources mined from this dataset",
                   "404": "unknown dataset"},
    )
    def v1_list_results(request: Request) -> Response:
        """List the result resources mined from one dataset."""
        name = request.path_params["name"]
        documents = dataset_result_documents(state, name)
        return json_response(
            {
                "dataset": name,
                "results": [_result_resource(state, doc) for doc in documents],
            }
        )

    @router.get(
        "/api/v1/results/{key}",
        responses={"200": "result metadata with ETag",
                   "304": "If-None-Match revalidated", "404": "unknown result"},
    )
    def v1_get_result(request: Request) -> Response:
        """Result metadata; conditional via ETag/If-None-Match."""
        key = request.path_params["key"]
        document = state.get_result_document(key)
        dataset = str(document["payload"]["dataset"])
        etag = _result_etag(state, key, dataset)
        not_modified = _not_modified(request, etag)
        if not_modified is not None:
            return not_modified
        response = json_response(_result_resource(state, document))
        response.headers["ETag"] = etag
        return response

    @router.delete(
        "/api/v1/results/{key}",
        responses={"204": "result deleted", "404": "unknown result"},
    )
    def v1_delete_result(request: Request) -> Response:
        """Evict one cached result resource."""
        key = request.path_params["key"]
        state.get_result_document(key)  # 404 when absent
        state.forget_result(key)
        return Response(status=204)

    @router.get(
        "/api/v1/results/{key}/caps",
        query=(
            {"name": "offset", "type": "integer",
             "description": "first CAP position to return (default 0)"},
            {"name": "limit", "type": "integer",
             "description": f"page size, 1–{MAX_PAGE_LIMIT} "
                            f"(default {DEFAULT_PAGE_LIMIT})"},
            {"name": "sensor", "type": "string",
             "description": "only CAPs containing this sensor id "
                            "(served from the inverted index)"},
            {"name": "attribute", "type": "string",
             "description": "only CAPs involving this attribute"},
        ),
        responses={"200": "one CAP page with Link pagination headers",
                   "304": "If-None-Match revalidated",
                   "400": "invalid pagination", "404": "unknown result"},
    )
    def v1_result_caps(request: Request) -> Response:
        """Paginated, filterable CAP pages of one result.

        Pages preserve mining order, so concatenating every page (no
        filters) reproduces the legacy full-payload CAP list exactly.
        """
        key = request.path_params["key"]
        document = state.get_result_document(key)
        dataset = str(document["payload"]["dataset"])
        offset = _int_param(request, "offset", 0, 0, 10**9)
        limit = _int_param(request, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        sensor = request.param("sensor")
        attribute = request.param("attribute")

        etag = _result_etag(state, key, dataset, offset, limit, sensor, attribute)
        not_modified = _not_modified(request, etag)
        if not_modified is not None:
            return not_modified

        result = state.result_from_document(document)
        caps = result.caps_containing(sensor) if sensor else result.caps
        if attribute:
            caps = [cap for cap in caps if attribute in cap.attributes]
        total = len(caps)
        page = caps[offset : offset + limit]
        filters: dict[str, str] = {}
        if sensor:
            filters["sensor"] = sensor
        if attribute:
            filters["attribute"] = attribute
        response = json_response(
            {
                "key": key,
                "dataset": dataset,
                "total": total,
                "offset": offset,
                "limit": limit,
                "caps": [cap.to_document() for cap in page],
                "links": _result_links(key, dataset),
            }
        )
        response.headers["ETag"] = etag
        response.headers["Link"] = _page_link_header(
            _url(f"/results/{key}/caps"), offset, limit, total, filters
        )
        return response

    # -- interaction ----------------------------------------------------------

    @router.get(
        "/api/v1/datasets/{name}/sensors/{sensor_id}/correlated",
        responses={"200": "correlated sensors with shared attributes",
                   "404": "unknown dataset/sensor", "409": "nothing mined yet"},
    )
    def v1_correlated_sensors(request: Request) -> Response:
        """The map's click interaction: who is correlated with this sensor?"""
        name = request.path_params["name"]
        sensor_id = request.path_params["sensor_id"]
        correlated = correlated_sensors_core(state, name, sensor_id)
        return json_response(
            {
                "dataset": name,
                "sensor": sensor_id,
                "correlated": correlated,
                "links": {"dataset": _url(f"/datasets/{name}")},
            }
        )

    # -- live ingestion & change feed -----------------------------------------

    @router.post(
        "/api/v1/datasets/{name}/observations",
        responses={
            "202": "batch appended durably (WAL-fsynced before this answer) "
                   "and the dataset's stream epoch bumped; the resident "
                   "streaming miner picks it up on its next drain",
            "400": "batch fails schema validation: wrong sensor set, ragged "
                   "rows, non-numeric readings, or timestamps that do not "
                   "continue the dataset's sampling grid",
            "404": "unknown dataset",
        },
    )
    def v1_append_observations(request: Request) -> Response:
        """Append one timestamp-ordered observation batch (live ingestion)."""
        name = request.path_params["name"]
        dataset = state.get_dataset(name)
        try:
            receipt = append_batch(state.database, dataset, request.json())
        except BatchError as exc:
            raise HTTPError(400, str(exc), code="invalid_batch") from exc
        receipt["links"] = {
            "dataset": _url(f"/datasets/{name}"),
            "events": _url(f"/datasets/{name}/events"),
        }
        return json_response(receipt, status=202)

    feed_query = (
        {"name": "cursor", "type": "integer",
         "description": "resume token: highest event seq already seen "
                        "(default 0 = from the beginning; durable across "
                        "server restarts)"},
        {"name": "limit", "type": "integer",
         "description": f"page size, 1–{MAX_PAGE_LIMIT} "
                        f"(default {DEFAULT_PAGE_LIMIT})"},
        {"name": "wait", "type": "number",
         "description": "long-poll: hold the request up to this many "
                        f"seconds (0–{MAX_WAIT_SECONDS:g}, default 0) until "
                        "events past the cursor exist"},
    )

    @router.get(
        "/api/v1/datasets/{name}/events",
        query=feed_query,
        responses={"200": "CAP change events past the cursor, ascending by "
                          "seq, plus the next resume cursor",
                   "400": "invalid cursor/limit/wait",
                   "404": "unknown dataset",
                   "410": "cursor predates the retention horizon; the error "
                          "detail carries first_live_seq and a link to the "
                          "feed snapshot to bootstrap from"},
    )
    def v1_dataset_events(request: Request) -> Response:
        """One page of the dataset's CAP change feed (optionally long-polled).

        Events are persisted store documents, so a cursor saved before a
        server restart resumes exactly where it left off — unless
        retention folded it away, in which case the poll answers 410
        ``cursor_expired`` instead of a silently-empty page.
        """
        name = request.path_params["name"]
        state.get_dataset(name)
        cursor = _int_param(request, "cursor", 0, 0, 10**12)
        limit = _int_param(request, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        wait = _wait_param(request)
        events = _poll_events(state, name, cursor, limit, wait)
        return json_response(
            {
                "dataset": name,
                "cursor": int(events[-1]["seq"]) if events else cursor,
                "latest_seq": latest_seq(state.database, name),
                "first_live_seq": first_live_seq(state.database, name),
                "events": events,
                "links": {
                    "self": _url(f"/datasets/{name}/events"),
                    "stream": _url(f"/datasets/{name}/events/stream"),
                    "snapshot": _url(f"/datasets/{name}/events/snapshot"),
                },
            }
        )

    @router.get(
        "/api/v1/datasets/{name}/events/stream",
        query=feed_query,
        responses={"200": "the same feed page framed as text/event-stream "
                          "(bounded body; each frame's id: line is its seq — "
                          "reconnect with Last-Event-ID or ?cursor= to "
                          "continue)",
                   "400": "invalid cursor/limit/wait",
                   "404": "unknown dataset"},
    )
    def v1_dataset_events_sse(request: Request) -> Response:
        """The change feed in Server-Sent-Events framing.

        The server fully buffers responses, so each request serves a
        *bounded* stream; clients follow the standard SSE reconnect
        contract, passing the last ``id:`` back via ``Last-Event-ID`` (or
        ``cursor=``) to resume.  A reconnect whose id fell behind the
        retention horizon does **not** error (the SSE contract has no
        useful error channel): the stream instead opens with one
        ``event: snapshot`` frame carrying the folded CAP state, whose
        ``id:`` is ``first_live_seq - 1``, and continues with the live
        tail from there.
        """
        name = request.path_params["name"]
        state.get_dataset(name)
        last_event_id = (request.headers or {}).get("last-event-id")
        if last_event_id is not None and request.param("cursor") is None:
            try:
                cursor = int(last_event_id)
            except ValueError as exc:
                raise HTTPError(
                    400,
                    f"Last-Event-ID must be an integer seq, got {last_event_id!r}",
                    code="invalid_cursor",
                ) from exc
            if cursor < 0:
                raise HTTPError(
                    400, "Last-Event-ID must be >= 0", code="invalid_cursor"
                )
        else:
            cursor = _int_param(request, "cursor", 0, 0, 10**12)
        limit = _int_param(request, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        wait = _wait_param(request)
        state._refresh_shared()
        prefix = ""
        first_live = first_live_seq(state.database, name)
        if cursor < first_live - 1:
            snapshot = feed_snapshot(state.database, name)
            if snapshot is not None:
                prefix = render_sse_bootstrap(snapshot)
            cursor = first_live - 1
        events = _poll_events(state, name, cursor, limit, wait)
        return Response(
            status=200,
            headers={
                "Content-Type": "text/event-stream; charset=utf-8",
                "Cache-Control": "no-store",
            },
            body=(prefix + render_sse(events)).encode("utf-8"),
        )

    @router.get(
        "/api/v1/datasets/{name}/events/snapshot",
        responses={"200": "the durable feed snapshot: the folded CAP state "
                          "as of first_live_seq - 1, the bootstrap point "
                          "for cursors the retention fold expired",
                   "404": "unknown dataset, or the feed has never been "
                          "folded (every event is still live; read from "
                          "cursor 0 instead)"},
    )
    def v1_dataset_events_snapshot(request: Request) -> Response:
        """The feed snapshot that replaces events behind the retention horizon."""
        name = request.path_params["name"]
        state.get_dataset(name)
        state._refresh_shared()
        snapshot = feed_snapshot(state.database, name)
        if snapshot is None:
            raise HTTPError(
                404,
                f"dataset {name!r} has no feed snapshot; retention has never "
                "folded this feed — replay it from cursor 0",
                code="no_snapshot",
            )
        snapshot["links"] = {
            "self": _url(f"/datasets/{name}/events/snapshot"),
            "events": _url(f"/datasets/{name}/events"),
        }
        return json_response(snapshot)

    @router.get(
        "/api/v1/datasets/{name}/stream-config",
        responses={"200": "the dataset's effective stream retention "
                          "configuration (per-dataset overrides merged over "
                          "the server default)",
                   "404": "unknown dataset"},
    )
    def v1_get_stream_config(request: Request) -> Response:
        """The effective stream retention configuration for one dataset."""
        name = request.path_params["name"]
        state.get_dataset(name)
        state._refresh_shared()
        config = get_retention(
            state.database, name, default=state.stream_default_retention
        )
        config["links"] = {
            "self": _url(f"/datasets/{name}/stream-config"),
            "events": _url(f"/datasets/{name}/events"),
        }
        return json_response(config)

    @router.patch(
        "/api/v1/datasets/{name}/stream-config",
        responses={"200": "retention settings merged and stored; the next "
                          "retention sweep applies them",
                   "400": "unknown key or invalid value (retention_seqs "
                          "must be a positive integer or null, "
                          "retention_seconds a positive number or null)",
                   "404": "unknown dataset"},
    )
    def v1_patch_stream_config(request: Request) -> Response:
        """Set (or clear, with null) per-dataset stream retention horizons."""
        name = request.path_params["name"]
        state.get_dataset(name)
        try:
            stored = set_retention(state.database, name, request.json())
        except RetentionError as exc:
            raise HTTPError(400, str(exc), code="invalid_retention") from exc
        effective = get_retention(
            state.database, name, default=state.stream_default_retention
        )
        return json_response(
            {
                "dataset": name,
                "stored": stored,
                "effective": {
                    k: effective[k] for k in ("retention_seqs", "retention_seconds")
                },
                "links": {"self": _url(f"/datasets/{name}/stream-config")},
            }
        )

    # -- alerting -------------------------------------------------------------

    @router.post(
        "/api/v1/datasets/{name}/alert-rules",
        responses={
            "201": "rule stored (created or replaced, idempotent by "
                   "rule_id); the resident miner evaluates it against every "
                   "subsequent epoch's events",
            "400": "rule fails the grammar (see DESIGN.md: rule_id, "
                   "optional event_types/attribute, >= 1 severity levels "
                   "with distinct min_sensors >= 2)",
            "404": "unknown dataset",
        },
    )
    def v1_put_alert_rule(request: Request) -> Response:
        """Create or replace one threshold alert rule for this dataset."""
        name = request.path_params["name"]
        state.get_dataset(name)
        try:
            document = validate_rule(name, request.json())
        except RuleError as exc:
            raise HTTPError(400, str(exc), code="invalid_rule") from exc
        document["rule_uid"] = f"{name}:{document['rule_id']}"
        with state.database.exclusive():
            collection = state.database.collection(ALERT_RULES)
            replaced = (
                collection.replace_one({"rule_uid": document["rule_uid"]}, document)
                is not None
            )
            if not replaced:
                collection.insert_one(document)
        body = public_rule(document)
        body["replaced"] = replaced
        body["links"] = {
            "rules": _url(f"/datasets/{name}/alert-rules"),
            "alerts": _url(f"/datasets/{name}/alerts"),
        }
        return json_response(body, status=201)

    @router.get(
        "/api/v1/datasets/{name}/alert-rules",
        responses={"200": "the dataset's alert rules, sorted by rule_id",
                   "404": "unknown dataset"},
    )
    def v1_list_alert_rules(request: Request) -> Response:
        """List the alert rules registered for one dataset."""
        name = request.path_params["name"]
        state.get_dataset(name)
        state._refresh_shared()
        rows = state.database.collection(ALERT_RULES).find(
            {"dataset": name}, sort="rule_id"
        )
        return json_response(
            {"dataset": name, "rules": [public_rule(row) for row in rows]}
        )

    @router.delete(
        "/api/v1/datasets/{name}/alert-rules/{rule_id}",
        responses={"204": "rule deleted", "404": "unknown dataset or rule"},
    )
    def v1_delete_alert_rule(request: Request) -> Response:
        """Delete one alert rule (already-fired alerts are kept)."""
        name = request.path_params["name"]
        rule_id = request.path_params["rule_id"]
        state.get_dataset(name)
        query = {"dataset": name, "rule_id": rule_id}
        removed = state.database.collection(ALERT_RULES).delete_many(query)
        if not removed:
            raise HTTPError(404, f"unknown rule {rule_id!r}", code="unknown_rule")
        if state.durable_jobs:
            state.jobs.store.persist_removal(ALERT_RULES, query)
        return Response(status=204)

    @router.get(
        "/api/v1/datasets/{name}/alerts",
        query=(
            {"name": "rule", "type": "string",
             "description": "only alerts fired by this rule_id"},
            {"name": "limit", "type": "integer",
             "description": f"page size, 1–{MAX_PAGE_LIMIT} "
                            f"(default {DEFAULT_PAGE_LIMIT})"},
        ),
        responses={"200": "fired alerts, ascending by the event seq that "
                          "triggered them",
                   "400": "invalid limit",
                   "404": "unknown dataset"},
    )
    def v1_list_alerts(request: Request) -> Response:
        """List alerts the stream engine has fired for one dataset."""
        name = request.path_params["name"]
        state.get_dataset(name)
        limit = _int_param(request, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        rule = request.param("rule")
        state._refresh_shared()
        rows = state.database.collection(ALERTS).find({"dataset": name}, sort="seq")
        if rule:
            rows = [row for row in rows if row.get("rule_id") == rule]
        return json_response(
            {
                "dataset": name,
                "alerts": [public_event(row) for row in rows[:limit]],
            }
        )

    # -- jobs -----------------------------------------------------------------

    @router.get(
        "/api/v1/jobs",
        query=({"name": "status", "type": "string",
                "description": "filter by job state"},),
        responses={"200": "job resources (each carries its lease fields: "
                          "worker_id, lease_expires_at, attempt)",
                   "400": "unknown status"},
    )
    def v1_list_jobs(request: Request) -> Response:
        """List mining jobs as linked resources."""
        status = request.param("status")
        try:
            jobs = state.jobs.list(status)
        except JobStateError as exc:
            raise HTTPError(400, str(exc), code="invalid_status") from exc
        return json_response({"jobs": [_job_resource(job) for job in jobs]})

    @router.get(
        "/api/v1/jobs/{job_id}",
        responses={"200": "job resource (links to the result once succeeded; "
                          "worker_id/lease_expires_at/attempt expose the "
                          "durable registry's lease state; a distributed "
                          "parent inlines its shard tree — per-shard states, "
                          "attempts, and workers plus the merge step)",
                   "301": "metadata evicted; Location points at the result",
                   "404": "unknown job"},
    )
    def v1_job_status(request: Request) -> Response:
        """One job's status/progress; links to the result resource on success."""
        job_id = request.path_params["job_id"]
        job = state.jobs.get(job_id)
        if job is None:
            evicted = evicted_job_response(state, job_id)
            if evicted is not None:
                return evicted
            raise HTTPError(404, f"unknown job {job_id!r}", code="unknown_job")
        children = state.jobs.children(job_id) if job.distributed else None
        response = json_response(_job_resource(job, children))
        if job.state == SUCCEEDED and job.result_key is not None:
            response.headers["Link"] = (
                f'<{_url(f"/results/{job.result_key}")}>; rel="result"'
            )
        return response

    @router.get(
        "/api/v1/jobs/{job_id}/trace",
        responses={"200": "the job's span tree: per-attempt spans (status, "
                          "worker, start/end) for the job and, on a "
                          "distributed parent, every shard and merge "
                          "sub-job, plus measured shard wall-times",
                   "404": "unknown job",
                   "409": "job registry is not durable (no persisted spans)"},
    )
    def v1_job_trace(request: Request) -> Response:
        """The persisted trace of one job as a JSON span tree.

        The same tree ``repro trace <job_id>`` renders as an ASCII
        waterfall.  Requires the durable registry — spans live in the
        store's ``spans`` collection.
        """
        job_id = request.path_params["job_id"]
        store = getattr(state.jobs, "store", None)
        if store is None or getattr(store, "spans", None) is None:
            raise HTTPError(
                409,
                "tracing requires the durable job registry "
                "(start the server on a snapshot path)",
                code="not_durable",
            )
        try:
            tree = trace_tree(store, job_id)
        except KeyError as exc:
            raise HTTPError(404, f"unknown job {job_id!r}", code="unknown_job") from exc
        return json_response(tree)

    @router.post(
        "/api/v1/jobs/{job_id}/cancel",
        responses={"200": "cancellation requested", "404": "unknown job",
                   "409": "job already finished"},
    )
    def v1_job_cancel(request: Request) -> Response:
        """Request cooperative cancellation of a queued/running job."""
        job_id = request.path_params["job_id"]
        try:
            job = state.jobs.cancel(job_id)
        except KeyError as exc:
            raise HTTPError(404, f"unknown job {job_id!r}", code="unknown_job") from exc
        except JobStateError as exc:
            raise HTTPError(409, str(exc), code="job_finished") from exc
        return json_response(_job_resource(job))

    # -- visualization --------------------------------------------------------

    def _viz_handler(kind: str):
        def handler(request: Request) -> Response:
            name = request.path_params["name"]
            media = negotiate_media_type(request, ("text/html", "image/svg+xml"))
            svg, title = render_viz_svg(state, kind, name, request)
            if media == "image/svg+xml":
                return svg_response(svg.to_string())
            return html_response(svg.to_html_page(title=title))

        handler.__name__ = f"v1_viz_{kind}"
        handler.__doc__ = (
            f"{kind.capitalize()} visualization; negotiates text/html vs image/svg+xml."
        )
        return handler

    viz_query = {
        "map": ({"name": "highlight", "type": "string",
                 "description": "comma-separated sensor ids to highlight"},),
        "heatmap": ({"name": "sensors", "type": "string",
                     "description": "comma-separated sensor ids (default: first 20)"},),
        "timeseries": ({"name": "sensors", "type": "string",
                        "description": "comma-separated sensor ids (required)"},),
    }
    for kind in ("map", "heatmap", "timeseries"):
        router.add(
            "GET",
            f"/api/v1/datasets/{{name}}/viz/{kind}",
            _viz_handler(kind),
            query=viz_query[kind],
            responses={"200": "text/html page or image/svg+xml document "
                              "(content-negotiated)",
                       "404": "unknown dataset/sensor",
                       "406": "Accept matches neither offered type"},
        )

    # -- admin ----------------------------------------------------------------

    @router.get(
        "/api/v1/admin/stats",
        responses={"200": "store/cache/job counters (durable registries add "
                          "per-lease health: active vs expired, a per-kind "
                          "job breakdown, and the dead-lettered job count)"},
    )
    def v1_admin_stats(request: Request) -> Response:
        """Store, cache, and job-queue counters."""
        return json_response(admin_stats_payload(state))

    @router.get(
        "/api/v1/metrics",
        responses={"200": "Prometheus text exposition (format 0.0.4) of "
                          "every process-local metric family: HTTP "
                          "requests/latency, job lifecycle counters, WAL "
                          "append/fsync timings, cache hits/misses"},
    )
    def v1_metrics(request: Request) -> Response:
        """Prometheus scrape endpoint for the process-local registry."""
        return Response(
            status=200,
            headers={"Content-Type": METRICS_CONTENT_TYPE},
            body=get_registry().render().encode("utf-8"),
        )

    @router.get(
        "/api/v1/admin/results-by-dataset",
        responses={"200": "per-dataset cached-result aggregation"},
    )
    def v1_admin_results_by_dataset(request: Request) -> Response:
        """Aggregation-pipeline summary of the cached results per dataset."""
        return json_response(results_by_dataset_payload(state))
