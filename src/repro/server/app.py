"""Application assembly — the django-substitute's ``urls.py + settings.py``.

:func:`create_app` wires store → cache → handlers → router → middleware into
a single callable, and :func:`create_wsgi_app` adapts it to WSGI so it runs
under any WSGI server (``wsgiref.simple_server`` in the example).

Two route sets share one router and one :class:`ServerState`: the versioned
resource API (:func:`repro.server.api_v1.register_v1_routes`, the canonical
surface) and the legacy unversioned routes
(:func:`repro.server.handlers.register_routes`), which answer with their
historical payloads plus deprecation headers.

The in-process :class:`TestClient` drives the app without sockets; the
integration tests and the pipeline benchmark use it, which keeps the whole
"system" benchmarkable in-process.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..store.compaction import CompactionThread
from ..store.database import Database
from ..stream import sweep_retention
from .api_v1 import register_v1_routes
from .handlers import ServerState, register_routes
from .http import Request, Response, wsgi_adapter
from .middleware import (
    body_limit_middleware,
    error_middleware,
    logging_middleware,
    metrics_middleware,
    request_id_middleware,
)
from .routing import Router

__all__ = ["App", "TestClient", "create_app", "create_wsgi_app"]

#: Chunks are 10,000 CSV lines; a generous per-request ceiling on top.
DEFAULT_BODY_LIMIT = 4 * 1024 * 1024


class App:
    """The assembled application: a ``Request -> Response`` callable."""

    def __init__(
        self,
        state: ServerState,
        handler: Callable[[Request], Response],
        router: Router,
    ) -> None:
        self.state = state
        self.router = router
        self._handler = handler
        self.compactor: CompactionThread | None = None

    def __call__(self, request: Request) -> Response:
        return self._handler(request)

    def close(self, wait: bool = False) -> None:
        """Stop the background job machinery (pending queued jobs dropped).

        Stops the lease-polling worker (if started) and the executor.
        ``wait=True`` blocks until the worker threads exit — bounded,
        because shutdown cancels running jobs first and they abort at their
        next checkpoint.  Required before ``Database.save``: a snapshot
        taken while a worker is still writing a result would iterate a
        mutating collection.  With the durable registry, queued jobs
        survive anyway — whichever process next recovers the store picks
        them up.

        Order matters: the polling worker is *signalled* first but only
        joined after ``jobs.shutdown`` has swept cancellation over running
        jobs — a worker synchronously mining a claimed job needs that
        cancel to reach its next checkpoint, otherwise joining it would
        wait out the whole mine.
        """
        if self.compactor is not None:
            self.compactor.stop(wait=wait)
        self.state.stop_job_worker(wait=False)
        self.state.jobs.shutdown(wait=wait)
        self.state.stop_job_worker(wait=wait)


def create_app(
    database: Database | None = None,
    body_limit: int = DEFAULT_BODY_LIMIT,
    with_logging: bool = False,
    job_workers: int = 2,
    durable_jobs: bool | None = None,
    worker_id: str | None = None,
    lease_seconds: float = 30.0,
    max_attempts: int = 5,
    auto_compact_seconds: float | None = None,
    stream_retention: Mapping[str, object] | None = None,
) -> App:
    """Build the Miscela-V API application.

    Parameters
    ----------
    database:
        Backing store; pass a :class:`Database` opened on a snapshot path
        for persistence across restarts.  Defaults to in-memory.
    body_limit:
        Maximum request body size (enforces the chunked-upload protocol).
    with_logging:
        Attach the request-logging middleware.
    job_workers:
        Width of the async mining executor (``POST
        /api/v1/datasets/{name}/results`` with ``mode=async``).  Each
        worker is a *driver* thread — the mining itself may fan out
        further through ``MiningParameters.n_jobs``.
    durable_jobs:
        ``True`` persists the job registry in the database's ``jobs``
        collection with lease-based multi-process claiming; ``None``
        (default) enables it exactly when the database is bound to a
        snapshot path.  Startup recovery runs here: interrupted jobs are
        requeued and rescheduled before the first request is served.
    worker_id, lease_seconds:
        Durable-registry identity and claim lifetime (see
        :class:`repro.jobs.DurableJobStore`).
    max_attempts:
        Durable-registry dead-letter bound: a job (or shard sub-job) that
        loses its worker on this many attempts fails with a structured
        ``AttemptsExhausted`` error instead of requeueing forever
        (``0`` disables the bound).
    auto_compact_seconds:
        Interval of the background compaction sweep (see
        :class:`repro.store.compaction.CompactionThread`).  ``None``
        (default) disables it.  On the WAL engine the sweep folds log
        segments; on every engine it additionally runs the stream
        retention pass (:func:`repro.stream.sweep_retention`) for
        datasets with retention configured.
    stream_retention:
        Server-wide default stream retention config (e.g.
        ``{"retention_seqs": 500}``), overridable per dataset through
        ``PATCH /api/v1/datasets/{name}/stream-config``.  ``None``
        (default) keeps retention strictly per-dataset opt-in.
    """
    state = ServerState(
        database,
        job_workers=job_workers,
        durable_jobs=durable_jobs,
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        stream_retention=stream_retention,
    )
    state.recover_jobs()
    router = Router()
    register_v1_routes(router, state)
    register_routes(router, state)  # legacy shims, deprecation-flagged
    handler: Callable[[Request], Response] = router.dispatch
    handler = body_limit_middleware(body_limit)(handler)
    if with_logging:
        handler = logging_middleware(handler)
    handler = error_middleware(handler)
    # Outside the error layer: metrics observe the final rendered status,
    # and the request id lands on error envelopes too.
    handler = metrics_middleware(handler)
    handler = request_id_middleware(handler)
    app = App(state, handler, router)
    if auto_compact_seconds is not None:
        # The sweep thread carries two folds: WAL segment compaction
        # (engine-gated inside sweep()) and the stream retention pass,
        # which applies on any engine — the feed horizon is a document
        # model property, not a storage-engine one.
        app.compactor = CompactionThread(
            state.database,
            interval_seconds=auto_compact_seconds,
            extra_sweep=lambda: sweep_retention(
                state.database, default=state.stream_default_retention
            ),
        )
        app.compactor.start()
    return app


def create_wsgi_app(
    database: Database | None = None, **kwargs: object
) -> Callable[..., Iterable[bytes]]:
    """The WSGI entry point (``wsgiref.simple_server.make_server`` ready)."""
    return wsgi_adapter(create_app(database, **kwargs))  # type: ignore[arg-type]


class TestClient:
    """Drive an :class:`App` in-process (no sockets)."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, app: App) -> None:
        self.app = app

    def request(
        self,
        method: str,
        url: str,
        json_body: object = None,
        text_body: str | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        import json as _json
        from urllib.parse import parse_qs, urlsplit

        if json_body is not None and text_body is not None:
            raise ValueError("pass json_body or text_body, not both")
        split = urlsplit(url)
        body = b""
        if json_body is not None:
            body = _json.dumps(json_body).encode("utf-8")
        elif text_body is not None:
            body = text_body.encode("utf-8")
        request = Request(
            method=method.upper(),
            path=split.path,
            query=parse_qs(split.query),
            headers={key.lower(): value for key, value in (headers or {}).items()},
            body=body,
        )
        return self.app(request)

    def get(self, url: str, headers: Mapping[str, str] | None = None) -> Response:
        return self.request("GET", url, headers=headers)

    def post(
        self,
        url: str,
        json_body: object = None,
        text_body: str | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        return self.request(
            "POST", url, json_body=json_body, text_body=text_body, headers=headers
        )

    def delete(self, url: str, headers: Mapping[str, str] | None = None) -> Response:
        return self.request("DELETE", url, headers=headers)

    def upload_dataset(
        self, dataset, chunk_lines: int = 10_000, base: str = "/api/v1"
    ) -> Response:
        """Run the full three-step chunked upload for a dataset object.

        Goes through the v1 session endpoints by default; pass ``base=""``
        to exercise the legacy shims (same state methods either way).
        """
        import csv
        import io

        from ..data.csv_io import dataset_to_rows, iter_chunks
        from ..data.schema import LOCATION_COLUMNS

        data_rows, location_rows = dataset_to_rows(dataset)
        loc_buffer = io.StringIO()
        writer = csv.writer(loc_buffer)
        writer.writerow(LOCATION_COLUMNS)
        for row in location_rows:
            writer.writerow([row.sensor_id, row.attribute, repr(row.lat), repr(row.lon)])
        attr_text = "\n".join(dataset.attributes) + "\n"
        begin = self.post(
            f"{base}/datasets/{dataset.name}/upload/begin",
            json_body={
                "location_csv": loc_buffer.getvalue(),
                "attribute_csv": attr_text,
            },
        )
        if begin.status != 201:
            return begin
        for chunk in iter_chunks(data_rows, chunk_lines):
            response = self.post(
                f"{base}/datasets/{dataset.name}/upload/chunk", text_body=chunk
            )
            if response.status != 200:
                return response
        return self.post(f"{base}/datasets/{dataset.name}/upload/finish")
