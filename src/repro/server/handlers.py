"""Server state, shared handler cores, and the legacy (unversioned) routes.

The canonical HTTP surface is the versioned resource API registered by
:mod:`repro.server.api_v1`.  This module keeps two things:

* :class:`ServerState` — store, cache, upload sessions, job queue: the
  shared state every handler (v1 and legacy) runs against;
* the *legacy* unversioned routes of the paper's Figure-2 flow
  (``POST /mine``, ``GET /caps/{dataset}``, …), registered as thin
  deprecation shims: each delegates to the same core helpers the v1
  handlers use and answers with its historical payload shape plus
  ``Deprecation: true`` and a ``Link: <successor>; rel="successor-version"``
  header pointing at the v1 resource that replaces it.

Upload protocol (Section 3.2):

1. ``POST .../upload/begin`` — JSON body with the contents of
   ``location.csv`` and ``attribute.csv``;
2. ``POST .../upload/chunk`` — one ≤10,000-line piece of ``data.csv`` per
   request (text body);
3. ``POST .../upload/finish`` — validate, assemble, store.

Upload sessions are serialized behind ``ServerState.lock`` (the threaded
WSGI server runs handlers concurrently); beginning an upload for a name
whose session is already open is a 409, and ``.../upload/abort`` discards a
session (e.g. after a rejected chunk).
"""

from __future__ import annotations

import io
import os
import threading
import time
from typing import Any, Mapping

from ..cache.cache import ResultCache
from ..cache.keys import cache_key
from ..core.miner import MiningResult, MiscelaMiner
from ..core.parameters import MiningParameters
from ..core.types import SensorDataset
from ..data.csv_io import ChunkAssembler, read_attribute_csv, read_location_csv
from ..data.documents import dataset_from_document, dataset_to_document
from ..core.parallel import MiningCancelled
from ..jobs import (
    HANDLED,
    KIND_MERGE,
    KIND_SHARD,
    KIND_STREAM,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    DurableJobStore,
    Job,
    JobQueue,
    JobStateError,
    JobWorker,
    execute_units,
    maybe_fault,
    merge_outputs,
    plan_mine,
)
from ..obs.metrics import get_registry
from ..obs.profiler import Profiler
from ..store.database import Database
from ..stream import (
    ALERT_RULES,
    ALERTS,
    CAP_EVENTS,
    FEED_SNAPSHOTS,
    OBSERVATIONS,
    STREAM_CONFIG,
    STREAM_EPOCHS,
    STREAM_STATE,
    StreamSession,
)
from .http import HTTPError, Request, Response, html_response, json_response

__all__ = ["ServerState", "register_routes"]

_DATASETS = "datasets"
_RESULTS = "cap_results"
_GENERATIONS = "generations"

#: Test hook: seconds to sleep inside the mining runner before the engine
#: starts.  The fault-injection harness sets it to hold a job mid-mine long
#: enough to ``kill -9`` the server at a chosen moment; unset in production.
_MINE_DELAY_ENV = "REPRO_JOBS_MINE_DELAY"

#: Test hook: seconds to sleep inside the *shard* runner before executing
#: its units — holds a shard sub-job mid-flight so the two-server matrix
#: can ``kill -9`` the process that claimed it.  Unset in production.
_SHARD_DELAY_ENV = "REPRO_JOBS_SHARD_DELAY"


class ServerState:
    """Shared state behind the handlers: store, cache, uploads, job queue.

    With the threaded WSGI server and the background job executor, handlers
    run concurrently; ``self.lock`` guards the in-memory mutable state
    (dataset registry caches, upload sessions, the memoized-result LRU).
    Mining itself never holds the lock — only the bookkeeping around it
    does.

    When the backing database is bound to a snapshot path, the job
    registry is the **durable** one by default: jobs live in the ``jobs``
    collection, every transition persists, and any number of server
    processes sharing the snapshot claim work through leases (pass
    ``durable_jobs=False`` to opt out).  ``recover_jobs`` (called by
    :func:`repro.server.app.create_app`) requeues interrupted work on
    startup, and :meth:`start_job_worker` turns this process into a
    polling worker for jobs other processes enqueued.
    """

    def __init__(
        self,
        database: Database | None = None,
        job_workers: int = 2,
        durable_jobs: bool | None = None,
        worker_id: str | None = None,
        lease_seconds: float = 30.0,
        max_attempts: int = 5,
        stream_retention: Mapping[str, Any] | None = None,
    ) -> None:
        self.database = database if database is not None else Database()
        self.cache = ResultCache(self.database)
        self.database.collection(_DATASETS).create_index("name", "hash")
        # Dataset generations live in the store (on the WAL engine each
        # bump is a log record), so a re-upload on one server process
        # withdraws results mid-mine on every process sharing the store.
        self.database.collection(_GENERATIONS).create_index("name", "hash")
        # Stream subsystem lookups (batch replay, event dedup, feed reads).
        self.database.collection(OBSERVATIONS).create_index("batch_id", "hash")
        self.database.collection(OBSERVATIONS).create_index("dataset", "hash")
        self.database.collection(CAP_EVENTS).create_index("event_id", "hash")
        self.database.collection(CAP_EVENTS).create_index("dataset", "hash")
        # Feed tail reads are range queries past the poll cursor; the
        # sorted index turns each long-poll beat into a tail touch
        # instead of a full collection scan.
        self.database.collection(CAP_EVENTS).create_index("seq", "sorted")
        self.database.collection(ALERT_RULES).create_index("rule_id", "hash")
        self.database.collection(ALERTS).create_index("alert_id", "hash")
        self.database.collection(FEED_SNAPSHOTS).create_index("dataset", "hash")
        self.database.collection(STREAM_CONFIG).create_index("name", "hash")
        #: Server-wide retention default (``--stream-retention``); merged
        #: under per-dataset ``stream_config`` documents by
        #: :func:`repro.stream.get_retention`.  None = retention opt-in
        #: per dataset only.
        self.stream_default_retention = (
            dict(stream_retention) if stream_retention else None
        )
        # Resident-miner cadence: a drained stream job idles this long
        # before releasing its claim, gated for re-claim after the poll
        # interval (sub-second so appended batches surface quickly; tests
        # shorten both).
        self.stream_idle_seconds = 0.5
        self.stream_poll_seconds = 0.25
        self.lock = threading.RLock()
        if durable_jobs is None:
            durable_jobs = self.database.path is not None
        self.durable_jobs = durable_jobs
        if durable_jobs:
            store = DurableJobStore(
                self.database,
                worker_id=worker_id,
                lease_seconds=lease_seconds,
                max_attempts=max_attempts,
            )
            self.jobs = JobQueue(store=store, width=job_workers)
        else:
            self.jobs = JobQueue(width=job_workers)
        self._worker: JobWorker | None = None
        self._pending: dict[str, ChunkAssembler] = {}
        self._pending_meta: dict[str, tuple[list, list]] = {}
        # One lock per open upload session: chunks of the same session must
        # serialize (the assembler's row stream would interleave), but CSV
        # parsing must not happen under the global ``self.lock`` — one
        # client streaming a big upload would stall every other handler.
        self._pending_locks: dict[str, threading.Lock] = {}
        self._loaded: dict[str, SensorDataset] = {}
        # Deserialized mining results memoized per cache key so the
        # map-click hot path reuses each result's sensor→CAP inverted index
        # instead of rebuilding the object (and rescanning) per request.
        # LRU-bounded: a parameter sweep must not pin every result in RAM.
        self._results: dict[str, MiningResult] = {}
        self._results_capacity = 32
        # Dataset generations (see ``_bump_generation``) are bumped on
        # every re-upload/delete; async jobs snapshot the value at submit
        # and refuse to publish a result mined from superseded data, and v1
        # result ETags embed it so conditional GETs never revalidate a
        # representation derived from replaced data.

    # -- upload sessions ------------------------------------------------------

    def begin_upload(self, name: str, locations: list, attributes: list) -> None:
        """Open the chunked-upload session for ``name``.

        One session per name: a concurrent ``begin`` while a session is
        open is a 409 (two interleaved uploaders would corrupt each other's
        chunk stream).  Sessions end at ``finish`` or ``abort``.
        """
        with self.lock:
            if name in self._pending:
                raise HTTPError(
                    409,
                    f"an upload for dataset {name!r} is already in progress; "
                    f"finish or abort it first",
                    code="upload_in_progress",
                )
            self._pending[name] = ChunkAssembler(name)
            self._pending_meta[name] = (locations, attributes)
            self._pending_locks[name] = threading.Lock()

    def append_upload_chunk(self, name: str, text: str) -> tuple[int, int, int]:
        """Add one data.csv chunk; returns (chunks, rows_in_chunk, rows_total).

        Chunks of one session serialize on the *session* lock; the global
        lock is held only for the registry lookup, so parsing a chunk never
        blocks handlers for other datasets.
        """
        with self.lock:
            assembler = self._pending.get(name)
            session_lock = self._pending_locks.get(name)
            if assembler is None or session_lock is None:
                raise HTTPError(
                    409,
                    f"no upload in progress for dataset {name!r}",
                    code="no_upload_in_progress",
                )
        with session_lock:
            rows = assembler.add_chunk(text)
            return assembler.chunks_received, rows, assembler.rows_received

    def finish_upload(self, name: str) -> SensorDataset:
        """Close the session, validate and store the assembled dataset."""
        with self.lock:
            assembler = self._pending.pop(name, None)
            meta = self._pending_meta.pop(name, None)
            session_lock = self._pending_locks.pop(name, None)
        if assembler is None or meta is None or session_lock is None:
            raise HTTPError(
                409,
                f"no upload in progress for dataset {name!r}",
                code="no_upload_in_progress",
            )
        locations, attributes = meta
        # Assembly runs outside the global lock — it scales with the
        # dataset, and the session is already detached from the registry.
        # Taking the session lock first lets an in-flight chunk parse
        # complete before the rows are assembled.
        with session_lock:
            dataset = assembler.finish(locations, attributes)
        self.put_dataset(dataset)
        return dataset

    def abort_upload(self, name: str) -> bool:
        """Discard an open session; True when one existed."""
        with self.lock:
            assembler = self._pending.pop(name, None)
            self._pending_meta.pop(name, None)
            self._pending_locks.pop(name, None)
            return assembler is not None

    # -- dataset registry -----------------------------------------------------

    def dataset_names(self) -> list[str]:
        return sorted(
            doc["name"] for doc in self.database[_DATASETS].find()
        )

    def get_dataset(self, name: str) -> SensorDataset:
        with self.lock:
            if name in self._loaded:
                return self._loaded[name]
        document = self.database[_DATASETS].find_one({"name": name})
        if document is None and self._refresh_shared():
            # Another process sharing the store may have uploaded it.
            document = self.database[_DATASETS].find_one({"name": name})
        if document is None:
            raise HTTPError(404, f"unknown dataset {name!r}", code="unknown_dataset")
        dataset = dataset_from_document(document["dataset"])
        with self.lock:
            self._loaded[name] = dataset
        return dataset

    def _refresh_shared(self) -> bool:
        """Merge changes other processes persisted; False when not durable."""
        if not self.durable_jobs:
            return False
        self.jobs.store.refresh()
        return True

    def put_dataset(self, dataset: SensorDataset) -> None:
        with self.lock:
            collection = self.database[_DATASETS]
            document = {"name": dataset.name, "dataset": dataset_to_document(dataset)}
            if collection.replace_one({"name": dataset.name}, document) is None:
                collection.insert_one(document)
            # Re-uploading under an existing name invalidates its cached CAPs.
            self.cache.invalidate_dataset(dataset.name)
            self._drop_results(dataset.name)
            self._loaded[dataset.name] = dataset
        self._bump_generation(dataset.name)
        self._cancel_dataset_jobs(dataset.name)
        self._purge_stream(dataset.name)
        if self.durable_jobs:
            # Purge the superseded results from the shared snapshot too (the
            # replaced dataset document itself wins the merge by name).
            self.jobs.store.persist_removal(_RESULTS, {"payload.dataset": dataset.name})

    def delete_dataset(self, name: str) -> bool:
        """Delete a dataset; only an *actual* delete invalidates anything.

        Deleting a name that was never uploaded must not bump the dataset
        generation or cancel its jobs — a stray DELETE for a typo'd name
        would otherwise withdraw in-flight mining results for nothing.
        """
        with self.lock:
            removed = self.database[_DATASETS].delete_many({"name": name})
            if not removed:
                return False
            self.cache.invalidate_dataset(name)
            self._drop_results(name)
            self._loaded.pop(name, None)
        self._bump_generation(name)
        self._cancel_dataset_jobs(name)
        self._purge_stream(name)
        if self.durable_jobs:
            # Without this the union-merge refresh would resurrect the
            # dataset (and its results) from the shared snapshot.
            self.jobs.store.persist_removal(_DATASETS, {"name": name})
            self.jobs.store.persist_removal(_RESULTS, {"payload.dataset": name})
        return True

    def _cancel_dataset_jobs(self, dataset_name: str) -> None:
        """In-flight jobs for a replaced/deleted dataset are obsolete."""
        jobs = self.jobs.list()
        if self.durable_jobs:
            # Resident stream jobs are not in the default (mine) listing.
            jobs += self.jobs.store.list(kind=KIND_STREAM)
        for job in jobs:
            if job.dataset == dataset_name and job.state not in TERMINAL_STATES:
                try:
                    self.jobs.cancel(job.job_id)
                except (KeyError, JobStateError):
                    pass  # finished in the meantime — the generation check below catches it

    def _purge_stream(self, name: str) -> None:
        """A destructive re-upload or delete resets the dataset's stream.

        Observations, epochs, the miner high-water mark, the event feed,
        and fired alerts all describe the *replaced* data, so they go;
        alert rules survive — they express monitoring intent about the
        name, not one generation's measurements.  The stream epoch
        restarting at 0 is exactly what distinguishes it from the
        ever-growing destructive generation.
        """
        queries = {
            OBSERVATIONS: {"dataset": name},
            STREAM_EPOCHS: {"name": name},
            STREAM_STATE: {"name": name},
            CAP_EVENTS: {"dataset": name},
            ALERTS: {"dataset": name},
            FEED_SNAPSHOTS: {"dataset": name},
        }
        for collection, query in queries.items():
            self.database.collection(collection).delete_many(query)
            if self.durable_jobs:
                # Tombstone the shared snapshot too, or the union-merge
                # refresh would resurrect the purged stream.
                self.jobs.store.persist_removal(collection, query)

    def _bump_generation(self, name: str) -> None:
        """Advance a dataset's generation in the shared store.

        Runs inside the store's exclusive section so concurrent bumps from
        several processes serialize: each one replays peers' records first,
        then appends its own increment.  (On non-WAL engines ``exclusive``
        degrades to the process-local lock, preserving the old semantics.)
        """
        collection = self.database.collection(_GENERATIONS)
        with self.database.exclusive():
            document = collection.find_one({"name": name})
            if document is None:
                collection.insert_one({"name": name, "generation": 1})
            else:
                collection.update_one(
                    {"name": name}, {"generation": document["generation"] + 1}
                )

    def dataset_generation(self, name: str) -> int:
        """The current generation of ``name`` (0 until first upload).

        Reads through the shared store — with a peer-visible refresh when
        durable — so a runner's mid-mine currency check observes a
        re-upload that happened in another process.
        """
        self._refresh_shared()
        document = self.database.collection(_GENERATIONS).find_one({"name": name})
        return int(document["generation"]) if document else 0

    def _drop_results(self, dataset_name: str) -> None:
        self._results = {
            key: result
            for key, result in self._results.items()
            if result.dataset_name != dataset_name
        }

    # -- result resources -------------------------------------------------------

    def get_result_document(self, key: str) -> Mapping[str, Any]:
        """The stored ``cap_results`` document for one key; 404 when absent."""
        document = self.database[_RESULTS].find_one({"key": key})
        if document is None and self._refresh_shared():
            # A worker in another process may have published it.
            document = self.database[_RESULTS].find_one({"key": key})
        if document is None:
            raise HTTPError(404, f"unknown result {key!r}", code="unknown_result")
        return document

    def result_from_document(self, document: Mapping[str, Any]) -> MiningResult:
        """The stored result behind one ``cap_results`` document, memoized."""
        key = str(document["key"])
        with self.lock:
            result = self._results.pop(key, None)
            if result is not None:
                self._results[key] = result  # re-insert: dict order is LRU order
                return result
        # Deserialize outside the lock — it can be slow for big results.
        result = MiningResult.from_document(document["result"])
        with self.lock:
            self._results.setdefault(key, result)
            while len(self._results) > self._results_capacity:
                self._results.pop(next(iter(self._results)))
            return self._results[key]

    def forget_result(self, key: str) -> None:
        """Drop one result: the stored document and its memoized object."""
        self.cache.delete_key(key)
        with self.lock:
            self._results.pop(key, None)
        if self.durable_jobs:
            # Make the deletion the shared snapshot's truth, or the next
            # refresh would re-adopt the result from disk.
            self.jobs.store.persist_removal(_RESULTS, {"key": key})

    # -- async mining jobs ------------------------------------------------------

    def submit_mine_job(
        self,
        dataset: SensorDataset,
        params: MiningParameters,
        distributed: bool = False,
        plan_workers: int | None = None,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Open (or dedup onto) the async mining job for (dataset, params).

        The runner executes on an executor thread and funnels its result
        through the exact sync path — :meth:`ResultCache.mine_cached` — so
        async-mined CAPs land in the same ``cap_results`` documents (and
        the same memoized-deserialization path) that result reads and map
        clicks use.

        A re-upload or delete of the dataset while the job is in flight
        makes the captured dataset object stale: :meth:`put_dataset` /
        :meth:`delete_dataset` bump the dataset's generation and request
        cancellation of its jobs, and the runner checks the generation
        *before publishing* (so CAPs mined from replaced data normally
        never reach the cache) plus once more after, withdrawing the entry
        if a re-upload slipped between check and put.  Either way the job
        ends ``cancelled``, never serving superseded data.

        ``distributed=True`` (durable registry only) submits the job as a
        distributed *parent*: the scheduled runner is the planner, which
        splits the mine into shard sub-jobs + a merge sub-job that any
        process's polling worker can claim under its own lease.
        """
        key = cache_key(dataset.name, params)
        if distributed:
            if not self.durable_jobs:
                raise HTTPError(
                    409,
                    "distributed mining requires the durable job registry "
                    "(run the server with --store)",
                    code="not_durable",
                )
            job, created = self.jobs.store.open_job(
                dataset.name,
                params.to_document(),
                key,
                distributed=True,
                plan_workers=plan_workers,
                trace_id=trace_id,
            )
            if created:
                # The planner runs as the parent's claimed execution; the
                # runner needs the job id, which only exists post-open.
                self.jobs.schedule(job.job_id, self._planner_runner(job.job_id))
            return job, created
        runner = self._mine_runner(dataset, params, key)
        return self.jobs.submit(
            dataset.name, params.to_document(), key, runner, trace_id=trace_id
        )

    def submit_stream_job(
        self,
        dataset: SensorDataset,
        params: MiningParameters,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Open (or dedup onto) the resident streaming-miner job.

        ``mode=streaming`` turns the (dataset, parameters) pair into a
        long-lived ``stream`` job: it mines the epoch-0 baseline, then
        drains observation batches as they are appended, re-mining
        incrementally and publishing CAP deltas to the change feed (see
        :mod:`repro.stream`).  One per dataset — resubmission dedups onto
        the live job.  Durable registry only: residency is implemented as
        lease-claim/release cycles, and recovery replays the WAL-backed
        observation log.
        """
        if not self.durable_jobs:
            raise HTTPError(
                409,
                "streaming mining requires the durable job registry "
                "(run the server with --store)",
                code="not_durable",
            )
        if params.segmentation != "none":
            raise HTTPError(
                400,
                "mode=streaming requires segmentation='none': smoothing is a "
                "whole-series operation and cannot be maintained incrementally",
                code="invalid_parameters",
            )
        key = cache_key(dataset.name, params)
        job, created = self.jobs.store.open_stream_job(
            dataset.name, params.to_document(), key, trace_id=trace_id
        )
        if created:
            self.jobs.schedule(job.job_id, self._stream_runner(job))
        return job, created

    def _stream_runner(self, job: Job):
        """The resident streaming miner's claimed execution (one drain).

        Replays the observation log to the persisted high-water mark,
        drains every pending epoch (extend → component-pruned re-mine →
        event diff → alert evaluation, each persisted atomically), renews
        its lease on a lease/3 beat while working, and once drained-and-
        idle *releases* the claim with a short retry gate and returns
        ``HANDLED`` — the polling worker re-claims it on the next beat, so
        residency never depends on this thread surviving.  A ``kill -9``
        leaves a lapsed lease; the reclaimer's session resumes from the
        high-water mark with deterministic, insert-if-missing events — no
        losses, no duplicates.
        """

        def runner(control):
            store = self.jobs.store
            claimed = store.get(job.job_id)
            if claimed is None or claimed.state != RUNNING:
                raise MiningCancelled(f"stream job {job.job_id} lost its claim")
            attempt = claimed.attempt
            try:
                dataset = self.get_dataset(job.dataset)
            except HTTPError:
                raise MiningCancelled(
                    f"dataset {job.dataset!r} is gone; stream retired"
                ) from None
            params = MiningParameters.from_document(job.parameters)
            generation = self.dataset_generation(job.dataset)
            session = StreamSession(
                self.database,
                dataset,
                params,
                job.key,
                checkpoint=control.checkpoint,
            )

            def on_alert(alert: Mapping[str, Any]) -> None:
                # Every fired alert gets its own span under the stream
                # job, so `repro trace <stream-job>` shows the alert
                # timeline inside the drain that produced it.
                sid = store.spans.begin(
                    job_id=alert["alert_id"],
                    attempt=attempt,
                    worker_id=store.worker_id or "local",
                    name=f"alert:{alert['rule_id']}",
                    kind="alert",
                    trace_id=job.trace_id,
                    parent_job_id=job.job_id,
                )
                store.spans.finish(sid, "ok")

            lease = max(float(store.lease_seconds), 0.1)
            last_renewal = time.monotonic()
            idle_since: float | None = None
            while True:
                control.checkpoint()
                now = time.monotonic()
                if now - last_renewal >= lease / 3.0:
                    store.renew_lease(job.job_id, attempt=attempt)
                    current = store.get(job.job_id)
                    if (
                        current is None
                        or current.state != RUNNING
                        or current.attempt != attempt
                    ):
                        # Reclaimed from under us (lease lapsed under
                        # load); the newer claim owns the stream now.
                        raise MiningCancelled("stream claim lost")
                    last_renewal = now
                if self.dataset_generation(job.dataset) != generation:
                    raise MiningCancelled(
                        f"dataset {job.dataset!r} was replaced; stream superseded"
                    )
                pending = list(session.pending_epochs())
                if pending:
                    for epoch in pending:
                        control.checkpoint()
                        session.process_epoch(epoch, on_alert=on_alert)
                        store.renew_lease(job.job_id, attempt=attempt)
                        last_renewal = time.monotonic()
                    idle_since = None
                    continue
                if idle_since is None:
                    idle_since = now
                if now - idle_since >= self.stream_idle_seconds:
                    store.release(job.job_id, attempt, retry_in=self.stream_poll_seconds)
                    return HANDLED
                time.sleep(0.05)

        return runner

    def _mine_runner(self, dataset: SensorDataset, params: MiningParameters, key: str):
        """The executable work of one mining job (see :meth:`submit_mine_job`)."""
        generation = self.dataset_generation(dataset.name)

        def check_current() -> None:
            if self.dataset_generation(dataset.name) != generation:
                raise MiningCancelled(
                    f"dataset {dataset.name!r} was replaced while mining"
                )

        def runner(control) -> str:
            delay = float(os.environ.get(_MINE_DELAY_ENV, 0) or 0)
            if delay > 0:  # fault-injection harness only; see _MINE_DELAY_ENV
                deadline = time.monotonic() + delay
                while time.monotonic() < deadline:
                    control.checkpoint()
                    time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
            cached = self.cache.get(dataset.name, params)
            if cached is None:
                miner = MiscelaMiner(params)
                result = miner.mine(dataset, control=control)
                check_current()  # never publish a superseded result
                self.cache.put(result)
                try:
                    check_current()
                except MiningCancelled:
                    # Re-upload interleaved with the put: withdraw it.
                    self.cache.delete_key(key)
                    raise
            return key

        return runner

    def _planner_runner(self, job_id: str):
        """Submit-path wrapper: resolve the claim, then run the planner."""

        def runner(control):
            job = self.jobs.store.get(job_id)
            if job is None:
                raise MiningCancelled(f"job {job_id} vanished before planning")
            return self._run_planner(job, control)

        return runner

    def _run_planner(self, job: Job, control):
        """The distributed parent's planning step (claimed like any job).

        Pure planning + one idempotent store write: re-running after a
        planner crash regenerates the identical plan (``plan_mine`` is
        deterministic in the stored submission), and ``finish_planning``
        skips sub-jobs that already exist.
        """
        store = self.jobs.store
        current = store.get(job.job_id)  # the claim this runner executes under
        if current is None:
            raise MiningCancelled(f"job {job.job_id} vanished while planning")
        dataset = self.get_dataset(job.dataset)
        params = MiningParameters.from_document(job.parameters)
        generation = self.dataset_generation(job.dataset)
        plan = plan_mine(dataset, params, store.plan_workers(job.job_id))
        control.checkpoint()
        store.finish_planning(
            job.job_id,
            current.attempt,
            shard_units=plan.shard_documents,
            mode=plan.mode,
            horizon=plan.horizon,
            generation=generation,
        )
        return HANDLED

    def _shard_runner(self, job: Job):
        """One shard sub-job: execute its persisted units, persist output.

        The ``mid-shard`` crash point fires after the compute but before
        ``complete_shard`` — work done but never recorded, the hardest
        takeover case (the shard re-runs elsewhere; the audit log proves
        only the lost shard does).
        """

        def runner(control):
            store = self.jobs.store
            spec = store.shard_spec(job.job_id)
            delay = float(os.environ.get(_SHARD_DELAY_ENV, 0) or 0)
            if delay > 0:  # fault-injection harness only; see _SHARD_DELAY_ENV
                deadline = time.monotonic() + delay
                while time.monotonic() < deadline:
                    control.checkpoint()
                    time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
            if self.dataset_generation(job.dataset) != spec["generation"]:
                raise MiningCancelled(
                    f"dataset {job.dataset!r} was replaced while mining"
                )
            dataset = self.get_dataset(job.dataset)
            params = MiningParameters.from_document(job.parameters)
            profiler = Profiler()
            if control is not None:
                control.profiler = profiler
            started = time.monotonic()
            output = execute_units(
                dataset, params, spec["units"], spec["mode"], spec["horizon"],
                control=control,
            )
            elapsed = time.monotonic() - started
            maybe_fault("mid-shard")
            # The measured wall time + phase breakdown land on the shard
            # sub-job document — the ground truth estimate_seed_cost
            # calibration reads back.
            store.complete_shard(
                job.job_id, job.attempt, output, elapsed,
                timings=profiler.to_document(),
            )
            return HANDLED

        return runner

    def _merge_runner(self, job: Job):
        """The merge sub-job: reassemble shard outputs, publish the result.

        Funnels through the same ``cap_results`` documents the sync path
        writes, so the published resource is byte-identical to a serial
        mine of the same (dataset, parameters).  Exactly-once across
        crashes: the cache probe makes a re-run after a post-publish crash
        a no-op, and the ``before-merge-publish`` crash point proves a
        pre-publish crash just re-merges from the durable shard outputs.
        """

        def runner(control):
            store = self.jobs.store
            spec = store.shard_spec(job.job_id)
            params = MiningParameters.from_document(job.parameters)

            def check_current() -> None:
                if self.dataset_generation(job.dataset) != spec["generation"]:
                    raise MiningCancelled(
                        f"dataset {job.dataset!r} was replaced while mining"
                    )

            check_current()
            cached = self.cache.get(job.dataset, params)
            if cached is None:
                shard_results = store.shard_outputs(spec["parent_id"])
                outputs = [
                    entry
                    for shard in shard_results
                    for entry in shard["output"]
                ]
                control.checkpoint()
                caps = merge_outputs(spec["mode"], outputs)
                result = MiningResult(
                    dataset_name=job.dataset,
                    parameters=params,
                    caps=caps,
                    elapsed_seconds=sum(
                        shard["elapsed_seconds"] for shard in shard_results
                    ),
                )
                check_current()  # never publish a superseded result
                maybe_fault("before-merge-publish")
                self.cache.put(result)
                try:
                    check_current()
                except MiningCancelled:
                    # Re-upload interleaved with the put: withdraw it.
                    self.cache.delete_key(job.key)
                    raise
            return job.key

        return runner

    def runner_for_job(self, job: Job):
        """Rebuild a claimed job's work from its stored document.

        The polling :class:`~repro.jobs.JobWorker` executes jobs *other*
        processes enqueued — no submit-time closure exists here, so the
        dataset is loaded (refreshing from the shared store if needed) and
        the parameters re-parsed from the job's canonical document.
        Dispatches on the job's kind: shard and merge sub-jobs get their
        distributed runners, an unplanned distributed parent gets the
        planner, and everything else is a whole mine.
        """
        if job.kind == KIND_SHARD:
            return self._shard_runner(job)
        if job.kind == KIND_MERGE:
            return self._merge_runner(job)
        if job.kind == KIND_STREAM:
            return self._stream_runner(job)
        if job.distributed and not job.planned:
            return lambda control: self._run_planner(job, control)
        dataset = self.get_dataset(job.dataset)
        params = MiningParameters.from_document(job.parameters)
        return self._mine_runner(dataset, params, job.key)

    def recover_jobs(self) -> dict[str, list[str]]:
        """Startup recovery against the durable registry (no-op otherwise).

        Requeues interrupted ``running`` jobs whose lease lapsed,
        republishes ``succeeded`` ones from their stored result keys, and
        schedules every ``queued`` job onto this process's executor so
        work accepted by a dead process still completes — even with the
        polling worker disabled.
        """
        if not self.durable_jobs:
            return {}
        summary = self.jobs.store.recover()
        queued = self.jobs.list(QUEUED)
        # Resident stream jobs are top-level too, but live outside the
        # default (mine) listing; requeue-recovered ones must also resume.
        queued += self.jobs.store.list(QUEUED, kind=KIND_STREAM)
        for job in queued:
            # Top-level jobs only (shard/merge sub-jobs are the polling
            # worker's to claim — their readiness gates live in the store).
            self.jobs.schedule(job.job_id, self._deferred_runner(job))
        return summary

    def _deferred_runner(self, job: Job):
        """Build the job's runner on the executor thread, not at recovery.

        Startup must not crash (or synchronously load every queued job's
        dataset) because one recovered job is broken: a failing
        ``runner_for_job`` — e.g. the dataset document is gone — raises
        inside the claimed execution, where the standard tail marks the
        job ``failed`` with the structured error instead of killing
        ``create_app``.
        """

        def runner(control):
            return self.runner_for_job(job)(control)

        return runner

    def start_job_worker(self, interval: float = 1.0) -> JobWorker:
        """Run a lease-polling worker thread against the durable registry."""
        if not self.durable_jobs:
            raise ValueError("the job worker requires the durable job registry")
        if self._worker is not None and self._worker.is_alive():
            return self._worker
        self._worker = JobWorker(
            self.jobs.store, self.runner_for_job, interval=interval
        )
        self._worker.start()
        return self._worker

    def stop_job_worker(self, wait: bool = False) -> None:
        """Signal (and with ``wait=True`` join) the polling worker.

        Idempotent; the reference is only dropped once the thread is
        actually gone, so signal-now/join-later sequencing works
        (:meth:`repro.server.app.App.close` relies on it).
        """
        worker = self._worker
        if worker is None:
            return
        worker.stop(wait=wait)
        if not worker.is_alive():
            self._worker = None


# -- shared handler cores (used by both the legacy shims and the v1 API) -------


def parse_upload_begin(request: Request) -> tuple[list, list]:
    """Parse an upload/begin body into (locations, attributes)."""
    payload = request.json()
    if not isinstance(payload, dict):
        raise HTTPError(400, "expected a JSON object")
    missing = {"location_csv", "attribute_csv"} - set(payload)
    if missing:
        raise HTTPError(400, f"missing fields: {sorted(missing)}", code="missing_fields")
    locations = read_location_csv(io.StringIO(payload["location_csv"]))
    attributes = read_attribute_csv(io.StringIO(payload["attribute_csv"]))
    return locations, attributes


def parse_parameters(document: Any) -> MiningParameters:
    """Parameters from their JSON document; 400 on anything invalid."""
    try:
        return MiningParameters.from_document(document)
    except (ValueError, TypeError) as exc:
        raise HTTPError(
            400, f"invalid parameters: {exc}", code="invalid_parameters"
        ) from exc


def parse_mine_mode(payload: Mapping[str, Any], request: Request) -> str:
    mode = str(payload.get("mode") or request.param("mode") or "sync")
    if mode not in ("sync", "async", "distributed", "streaming"):
        raise HTTPError(
            400,
            f"mode must be 'sync', 'async', 'distributed', or 'streaming', "
            f"got {mode!r}",
            code="invalid_mode",
        )
    return mode


def dataset_result_documents(state: ServerState, name: str) -> list[Mapping[str, Any]]:
    """Every stored result document for one dataset (404s unknown names)."""
    state.get_dataset(name)  # 404 for unknown datasets
    return state.database[_RESULTS].find({"payload.dataset": name})


def correlated_sensors_core(
    state: ServerState, name: str, sensor_id: str
) -> dict[str, list[str]]:
    """The map's click interaction: who is correlated with this sensor?"""
    dataset = state.get_dataset(name)
    if sensor_id not in dataset:
        raise HTTPError(
            404,
            f"unknown sensor {sensor_id!r} in dataset {name!r}",
            code="unknown_sensor",
        )
    documents = state.database[_RESULTS].find({"payload.dataset": name})
    if not documents:
        raise HTTPError(
            409,
            f"no mined results for dataset {name!r}; mine first",
            code="no_results",
        )
    correlated: dict[str, set[str]] = {}
    for doc in documents:
        result = state.result_from_document(doc)
        for cap in result.caps_containing(sensor_id):
            for other in cap.sensor_ids:
                if other != sensor_id:
                    correlated.setdefault(other, set()).update(cap.attributes)
    return {sid: sorted(attrs) for sid, attrs in sorted(correlated.items())}


def render_viz_svg(state: ServerState, kind: str, name: str, request: Request):
    """Render one visualization; returns ``(svg, title)``.

    Shared by the legacy HTML endpoints and the content-negotiating v1
    endpoints — only the final wrapping (HTML page vs raw SVG) differs.
    """
    dataset = state.get_dataset(name)
    if kind == "map":
        from ..viz.map_view import render_map  # local import: viz is optional at runtime

        highlight = request.param("highlight")
        highlighted = set(highlight.split(",")) if highlight else set()
        return render_map(dataset, highlighted_sensors=highlighted), f"{dataset.name} sensors"
    if kind == "heatmap":
        from ..core.evolving import extract_all_evolving
        from ..viz.heatmap import render_coevolution_heatmap

        sensors_param = request.param("sensors")
        sensor_ids = sensors_param.split(",") if sensors_param else list(
            dataset.sensor_ids[:20]
        )
        for sid in sensor_ids:
            if sid not in dataset:
                raise HTTPError(404, f"unknown sensor {sid!r}", code="unknown_sensor")
        # Use the most recently cached parameters for this dataset, or a
        # neutral default, to derive evolving sets for the heatmap.
        documents = state.database[_RESULTS].find({"payload.dataset": dataset.name})
        if documents:
            params = MiningParameters.from_document(
                documents[-1]["payload"]["parameters"]
            )
        else:
            params = MiningParameters(
                evolving_rate=1.0, distance_threshold=1.0,
                max_attributes=2, min_support=1,
            )
        evolving = extract_all_evolving(dataset, params)
        svg = render_coevolution_heatmap(dataset, evolving, sensor_ids)
        return svg, f"{dataset.name} co-evolution"
    if kind == "timeseries":
        from ..viz.timeseries_view import render_timeseries

        sensors_param = request.param("sensors")
        if not sensors_param:
            raise HTTPError(400, "pass ?sensors=id1,id2,...", code="missing_sensors")
        sensor_ids = sensors_param.split(",")
        for sid in sensor_ids:
            if sid not in dataset:
                raise HTTPError(404, f"unknown sensor {sid!r}", code="unknown_sensor")
        return render_timeseries(dataset, sensor_ids), f"{dataset.name} measurements"
    raise HTTPError(404, f"unknown visualization {kind!r}")  # pragma: no cover


def evicted_job_response(state: ServerState, job_id: str) -> Response | None:
    """A 301 at the surviving result resource for an evicted succeeded job.

    Terminal-job retention evicts old job *metadata*, but a ``Location:
    …/jobs/{id}`` link handed out this process lifetime must keep leading
    to the result it produced: the registry retains the job's result-key
    mapping, and this renders it as a permanent redirect.  ``None`` when
    the id is simply unknown (the caller 404s as before).
    """
    result_key = state.jobs.evicted_result_key(job_id)
    if result_key is None:
        return None
    if state.database[_RESULTS].find_one({"key": result_key}) is None:
        return None  # the result itself was deleted; nothing to point at
    location = f"/api/v1/results/{result_key}"
    response = json_response(
        {
            "job_id": job_id,
            "result_key": result_key,
            "detail": "job metadata evicted; its result resource survives",
            "links": {"result": location},
        },
        status=301,
    )
    response.headers["Location"] = location
    return response


def admin_stats_payload(state: ServerState) -> dict[str, Any]:
    return {
        "store": state.database.stats(),
        "cache": {
            "entries": len(state.cache),
            "hits": state.cache.stats.hits,
            "misses": state.cache.stats.misses,
            "evictions": state.cache.stats.evictions,
            "hit_rate": state.cache.stats.hit_rate,
        },
        "jobs": state.jobs.counters(),
        # Family -> aggregate value; the full labelled series live at
        # GET /api/v1/metrics in Prometheus text form.
        "metrics": get_registry().summary(),
    }


def results_by_dataset_payload(state: ServerState) -> dict[str, Any]:
    """Aggregation-pipeline summary of the cached results per dataset."""
    rows = state.database[_RESULTS].aggregate(
        [
            {"$project": {
                "dataset": "$payload.dataset",
                "num_caps": "$result.caps",
                "min_support": "$payload.parameters.min_support",
            }},
            {"$unwind": "$num_caps"},
            {"$group": {"_id": "$dataset", "total_caps": {"$count": 1}}},
            {"$sort": {"_id": 1}},
        ]
    )
    settings = state.database[_RESULTS].aggregate(
        [
            {"$group": {"_id": "$payload.dataset", "settings": {"$count": 1}}},
            {"$sort": {"_id": 1}},
        ]
    )
    per_dataset = {row["_id"]: {"total_caps": row["total_caps"]} for row in rows}
    for row in settings:
        per_dataset.setdefault(row["_id"], {"total_caps": 0})["settings"] = row["settings"]
    return {"results_by_dataset": per_dataset}


def result_payload(result: MiningResult) -> dict[str, Any]:
    """The legacy full-fat result payload (``POST /mine``'s 200 body)."""
    return {
        "dataset": result.dataset_name,
        "parameters": result.parameters.to_document(),
        "num_caps": result.num_caps,
        "caps": [cap.to_document() for cap in result.caps],
        "from_cache": result.from_cache,
        "elapsed_seconds": result.elapsed_seconds,
    }


# Kept under the old private name: tests and older callers import it.
_result_payload = result_payload


def register_routes(router: Any, state: ServerState) -> None:
    """Attach the legacy unversioned routes as v1 deprecation shims."""

    @router.get(
        "/", deprecated=True, successor="/api/v1",
        responses={"200": "service banner and the full route list"},
    )
    def index(request: Request) -> Response:
        """Service banner with every registered route (legacy index)."""
        return json_response(
            {
                "service": "miscela-v",
                "routes": [f"{m} {p}" for m, p in router.routes()],
            }
        )

    # -- upload (Figure 2, stage 1) -------------------------------------------

    @router.post(
        "/datasets/{name}/upload/begin",
        deprecated=True, successor="/api/v1/datasets/{name}/upload/begin",
        responses={"201": "upload session opened", "409": "session already open"},
    )
    def upload_begin(request: Request) -> Response:
        """Open a chunked-upload session (location + attribute CSVs)."""
        name = request.path_params["name"]
        locations, attributes = parse_upload_begin(request)
        state.begin_upload(name, locations, attributes)
        return json_response({"dataset": name, "status": "upload started"}, status=201)

    @router.post(
        "/datasets/{name}/upload/chunk",
        deprecated=True, successor="/api/v1/datasets/{name}/upload/chunk",
        responses={"200": "chunk accepted", "409": "no session open"},
    )
    def upload_chunk(request: Request) -> Response:
        """Append one ≤10,000-line data.csv chunk to the open session."""
        name = request.path_params["name"]
        chunks, rows, total = state.append_upload_chunk(name, request.text())
        return json_response(
            {
                "dataset": name,
                "chunk": chunks,
                "rows_in_chunk": rows,
                "rows_total": total,
            }
        )

    @router.post(
        "/datasets/{name}/upload/finish",
        deprecated=True, successor="/api/v1/datasets/{name}/upload/finish",
        responses={"201": "dataset validated and stored", "409": "no session open"},
    )
    def upload_finish(request: Request) -> Response:
        """Validate, assemble, and store the uploaded dataset."""
        name = request.path_params["name"]
        dataset = state.finish_upload(name)
        return json_response(
            {"dataset": name, "summary": dataset.describe()}, status=201
        )

    @router.post(
        "/datasets/{name}/upload/abort",
        deprecated=True, successor="/api/v1/datasets/{name}/upload/abort",
        responses={"200": "session discarded", "409": "no session open"},
    )
    def upload_abort(request: Request) -> Response:
        """Discard an open upload session (recover from a failed upload)."""
        name = request.path_params["name"]
        if not state.abort_upload(name):
            raise HTTPError(
                409,
                f"no upload in progress for dataset {name!r}",
                code="no_upload_in_progress",
            )
        return json_response({"dataset": name, "status": "upload aborted"})

    # -- dataset registry -------------------------------------------------------

    @router.get(
        "/datasets", deprecated=True, successor="/api/v1/datasets",
        responses={"200": "uploaded dataset names"},
    )
    def list_datasets(request: Request) -> Response:
        """List the uploaded dataset names."""
        return json_response({"datasets": state.dataset_names()})

    @router.get(
        "/datasets/{name}", deprecated=True, successor="/api/v1/datasets/{name}",
        responses={"200": "dataset summary", "404": "unknown dataset"},
    )
    def describe_dataset(request: Request) -> Response:
        """Describe one dataset (sensors, records, attributes, time span)."""
        dataset = state.get_dataset(request.path_params["name"])
        return json_response(dataset.describe())

    @router.delete(
        "/datasets/{name}", deprecated=True, successor="/api/v1/datasets/{name}",
        responses={"200": "dataset deleted", "404": "unknown dataset"},
    )
    def delete_dataset(request: Request) -> Response:
        """Delete a dataset and every result mined from it."""
        if not state.delete_dataset(request.path_params["name"]):
            raise HTTPError(
                404,
                f"unknown dataset {request.path_params['name']!r}",
                code="unknown_dataset",
            )
        return json_response({"deleted": request.path_params["name"]})

    # -- mining (Figure 2, stages 2 and 3) ----------------------------------------

    @router.post(
        "/mine", deprecated=True, successor="/api/v1/datasets/{name}/results",
        responses={
            "200": "the full mined result (sync mode)",
            "202": "job accepted (mode=async)",
            "400": "bad body/parameters/mode",
            "404": "unknown dataset",
        },
    )
    def mine(request: Request) -> Response:
        """RPC-style mining: full payload sync, or job submission async."""
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "expected a JSON object")
        if "dataset" not in payload or "parameters" not in payload:
            raise HTTPError(
                400, "body must contain 'dataset' and 'parameters'",
                code="missing_fields",
            )
        mode = parse_mine_mode(payload, request)
        dataset = state.get_dataset(str(payload["dataset"]))
        params = parse_parameters(payload["parameters"])
        if mode == "streaming":
            job, created = state.submit_stream_job(dataset, params)
            return json_response(
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "deduplicated": not created,
                },
                status=202,
            )
        if mode in ("async", "distributed"):
            job, created = state.submit_mine_job(
                dataset, params, distributed=(mode == "distributed")
            )
            return json_response(
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "deduplicated": not created,
                },
                status=202,
            )
        result = state.cache.mine_cached(dataset, params)
        return json_response(result_payload(result))

    # -- async jobs (submit via POST /mine mode=async) -----------------------------

    @router.get(
        "/jobs", deprecated=True, successor="/api/v1/jobs",
        query=({"name": "status", "type": "string",
                "description": "filter by job state"},),
        responses={"200": "job documents", "400": "unknown status"},
    )
    def list_jobs(request: Request) -> Response:
        """List mining jobs, optionally filtered by state."""
        status = request.param("status")
        try:
            jobs = state.jobs.list(status)
        except JobStateError as exc:
            raise HTTPError(400, str(exc), code="invalid_status") from exc
        return json_response({"jobs": [job.to_document() for job in jobs]})

    @router.get(
        "/jobs/{job_id}", deprecated=True, successor="/api/v1/jobs/{job_id}",
        responses={"200": "job document (result inlined on success)",
                   "301": "metadata evicted; Location points at the result",
                   "404": "unknown job"},
    )
    def job_status(request: Request) -> Response:
        """One job's status/progress; inlines the result once succeeded."""
        job_id = request.path_params["job_id"]
        job = state.jobs.get(job_id)
        if job is None:
            evicted = evicted_job_response(state, job_id)
            if evicted is not None:
                return evicted
            raise HTTPError(404, f"unknown job {job_id!r}", code="unknown_job")
        document = job.to_document()
        if job.result_key is not None:
            stored = state.database[_RESULTS].find_one({"key": job.result_key})
            if stored is not None:
                # Rendered through the same memoized deserialization the
                # sync cache-hit path uses, so the payload is byte-identical
                # to ``POST /mine`` for the same (dataset, parameters).
                document["result"] = result_payload(
                    state.result_from_document(stored)
                )
        return json_response(document)

    @router.post(
        "/jobs/{job_id}/cancel", deprecated=True,
        successor="/api/v1/jobs/{job_id}/cancel",
        responses={"200": "cancellation requested", "404": "unknown job",
                   "409": "job already finished"},
    )
    def job_cancel(request: Request) -> Response:
        """Request cooperative cancellation of a queued/running job."""
        job_id = request.path_params["job_id"]
        try:
            job = state.jobs.cancel(job_id)
        except KeyError as exc:
            raise HTTPError(404, f"unknown job {job_id!r}", code="unknown_job") from exc
        except JobStateError as exc:
            raise HTTPError(409, str(exc), code="job_finished") from exc
        return json_response(job.to_document())

    @router.get(
        "/caps/{dataset}", deprecated=True,
        successor="/api/v1/datasets/{name}/results",
        responses={"200": "cached result listing", "404": "unknown dataset"},
    )
    def cached_results(request: Request) -> Response:
        """List the cached mining results for one dataset."""
        name = request.path_params["dataset"]
        documents = dataset_result_documents(state, name)
        return json_response(
            {
                "dataset": name,
                "cached_results": [
                    {
                        "key": doc["key"],
                        "parameters": doc["payload"]["parameters"],
                        "num_caps": len(doc["result"]["caps"]),
                    }
                    for doc in documents
                ],
            }
        )

    @router.get(
        "/caps/{dataset}/sensors/{sensor_id}", deprecated=True,
        successor="/api/v1/datasets/{name}/sensors/{sensor_id}/correlated",
        responses={"200": "correlated sensors with shared attributes",
                   "404": "unknown dataset/sensor", "409": "nothing mined yet"},
    )
    def correlated_sensors(request: Request) -> Response:
        """The map's click interaction: who is correlated with this sensor?"""
        name = request.path_params["dataset"]
        sensor_id = request.path_params["sensor_id"]
        correlated = correlated_sensors_core(state, name, sensor_id)
        return json_response(
            {"dataset": name, "sensor": sensor_id, "correlated": correlated}
        )

    # -- visualization ------------------------------------------------------------

    @router.get(
        "/viz/{dataset}/map", deprecated=True,
        successor="/api/v1/datasets/{name}/viz/map",
        query=({"name": "highlight", "type": "string",
                "description": "comma-separated sensor ids to highlight"},),
        responses={"200": "HTML page with the sensor map"},
    )
    def viz_map(request: Request) -> Response:
        """Sensor map as an HTML page."""
        svg, title = render_viz_svg(state, "map", request.path_params["dataset"], request)
        return html_response(svg.to_html_page(title=title))

    @router.get(
        "/viz/{dataset}/heatmap", deprecated=True,
        successor="/api/v1/datasets/{name}/viz/heatmap",
        query=({"name": "sensors", "type": "string",
                "description": "comma-separated sensor ids (default: first 20)"},),
        responses={"200": "HTML page with the co-evolution heatmap"},
    )
    def viz_heatmap(request: Request) -> Response:
        """Co-evolution heatmap as an HTML page."""
        svg, title = render_viz_svg(
            state, "heatmap", request.path_params["dataset"], request
        )
        return html_response(svg.to_html_page(title=title))

    @router.get(
        "/viz/{dataset}/timeseries", deprecated=True,
        successor="/api/v1/datasets/{name}/viz/timeseries",
        query=({"name": "sensors", "type": "string",
                "description": "comma-separated sensor ids (required)"},),
        responses={"200": "HTML page with measurement time series"},
    )
    def viz_timeseries(request: Request) -> Response:
        """Measurement time series as an HTML page."""
        svg, title = render_viz_svg(
            state, "timeseries", request.path_params["dataset"], request
        )
        return html_response(svg.to_html_page(title=title))

    # -- admin ----------------------------------------------------------------------

    @router.get(
        "/admin/results-by-dataset", deprecated=True,
        successor="/api/v1/admin/results-by-dataset",
        responses={"200": "per-dataset cached-result aggregation"},
    )
    def admin_results_by_dataset(request: Request) -> Response:
        """Aggregation-pipeline summary of the cached results per dataset."""
        return json_response(results_by_dataset_payload(state))

    @router.get(
        "/admin/stats", deprecated=True, successor="/api/v1/admin/stats",
        responses={"200": "store/cache/job counters"},
    )
    def admin_stats(request: Request) -> Response:
        """Store, cache, and job-queue counters."""
        return json_response(admin_stats_payload(state))
