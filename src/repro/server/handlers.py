"""API handlers: upload, parameter input, CAP results, visualization.

These implement the three-stage flow of the paper's Figure 2 —
"Data upload → Parameter input → CAP mining results" — plus the
interactive-analysis endpoints (correlated-sensor lookup, cached-result
listing).  Handlers hold no state of their own; everything lives in
:class:`ServerState` (datasets + cache, both backed by the document store).

Upload protocol (Section 3.2):

1. ``POST /datasets/{name}/upload/begin`` — JSON body with the contents of
   ``location.csv`` and ``attribute.csv``;
2. ``POST /datasets/{name}/upload/chunk`` — one ≤10,000-line piece of
   ``data.csv`` per request (text body);
3. ``POST /datasets/{name}/upload/finish`` — validate, assemble, store.
"""

from __future__ import annotations

import io
import threading
from typing import Any, Mapping

from ..cache.cache import ResultCache
from ..cache.keys import cache_key
from ..core.miner import MiningResult, MiscelaMiner
from ..core.parameters import MiningParameters
from ..core.types import SensorDataset
from ..data.csv_io import ChunkAssembler, read_attribute_csv, read_location_csv
from ..data.documents import dataset_from_document, dataset_to_document
from ..core.parallel import MiningCancelled
from ..jobs import TERMINAL_STATES, Job, JobQueue, JobStateError
from ..store.database import Database
from .http import HTTPError, Request, Response, html_response, json_response

__all__ = ["ServerState", "register_routes"]

_DATASETS = "datasets"


class ServerState:
    """Shared state behind the handlers: store, cache, uploads, job queue.

    With the threaded WSGI server and the background job executor, handlers
    run concurrently; ``self.lock`` guards the in-memory mutable state
    (dataset registry caches, the memoized-result LRU).  Mining itself never
    holds the lock — only the bookkeeping around it does.
    """

    def __init__(
        self, database: Database | None = None, job_workers: int = 2
    ) -> None:
        self.database = database if database is not None else Database()
        self.cache = ResultCache(self.database)
        self.database.collection(_DATASETS).create_index("name", "hash")
        self.lock = threading.RLock()
        self.jobs = JobQueue(width=job_workers)
        self._pending: dict[str, ChunkAssembler] = {}
        self._pending_meta: dict[str, tuple[list, list]] = {}
        self._loaded: dict[str, SensorDataset] = {}
        # Deserialized mining results memoized per cache key so the
        # map-click hot path reuses each result's sensor→CAP inverted index
        # instead of rebuilding the object (and rescanning) per request.
        # LRU-bounded: a parameter sweep must not pin every result in RAM.
        self._results: dict[str, MiningResult] = {}
        self._results_capacity = 32
        # Bumped on every re-upload/delete; async jobs snapshot it at submit
        # and refuse to publish a result mined from superseded data.
        self._generations: dict[str, int] = {}

    # -- dataset registry -----------------------------------------------------

    def dataset_names(self) -> list[str]:
        return sorted(
            doc["name"] for doc in self.database[_DATASETS].find()
        )

    def get_dataset(self, name: str) -> SensorDataset:
        with self.lock:
            if name in self._loaded:
                return self._loaded[name]
        document = self.database[_DATASETS].find_one({"name": name})
        if document is None:
            raise HTTPError(404, f"unknown dataset {name!r}")
        dataset = dataset_from_document(document["dataset"])
        with self.lock:
            self._loaded[name] = dataset
        return dataset

    def put_dataset(self, dataset: SensorDataset) -> None:
        with self.lock:
            collection = self.database[_DATASETS]
            document = {"name": dataset.name, "dataset": dataset_to_document(dataset)}
            if collection.replace_one({"name": dataset.name}, document) is None:
                collection.insert_one(document)
            # Re-uploading under an existing name invalidates its cached CAPs.
            self.cache.invalidate_dataset(dataset.name)
            self._drop_results(dataset.name)
            self._loaded[dataset.name] = dataset
            self._generations[dataset.name] = self._generations.get(dataset.name, 0) + 1
        self._cancel_dataset_jobs(dataset.name)

    def delete_dataset(self, name: str) -> bool:
        with self.lock:
            removed = self.database[_DATASETS].delete_many({"name": name})
            self.cache.invalidate_dataset(name)
            self._drop_results(name)
            self._loaded.pop(name, None)
            self._generations[name] = self._generations.get(name, 0) + 1
        self._cancel_dataset_jobs(name)
        return removed > 0

    def _cancel_dataset_jobs(self, dataset_name: str) -> None:
        """In-flight jobs for a replaced/deleted dataset are obsolete."""
        for job in self.jobs.list():
            if job.dataset == dataset_name and job.state not in TERMINAL_STATES:
                try:
                    self.jobs.cancel(job.job_id)
                except (KeyError, JobStateError):
                    pass  # finished in the meantime — the generation check below catches it

    def dataset_generation(self, name: str) -> int:
        with self.lock:
            return self._generations.get(name, 0)

    def _drop_results(self, dataset_name: str) -> None:
        self._results = {
            key: result
            for key, result in self._results.items()
            if result.dataset_name != dataset_name
        }

    def result_from_document(self, document: Mapping[str, Any]) -> MiningResult:
        """The stored result behind one ``cap_results`` document, memoized."""
        key = str(document["key"])
        with self.lock:
            result = self._results.pop(key, None)
            if result is not None:
                self._results[key] = result  # re-insert: dict order is LRU order
                return result
        # Deserialize outside the lock — it can be slow for big results.
        result = MiningResult.from_document(document["result"])
        with self.lock:
            self._results.setdefault(key, result)
            while len(self._results) > self._results_capacity:
                self._results.pop(next(iter(self._results)))
            return self._results[key]

    # -- async mining jobs ------------------------------------------------------

    def submit_mine_job(
        self, dataset: SensorDataset, params: MiningParameters
    ) -> tuple[Job, bool]:
        """Open (or dedup onto) the async mining job for (dataset, params).

        The runner executes on an executor thread and funnels its result
        through the exact sync path — :meth:`ResultCache.mine_cached` — so
        async-mined CAPs land in the same ``cap_results`` documents (and
        the same memoized-deserialization path) that ``GET /results`` and
        map clicks read.

        A re-upload or delete of the dataset while the job is in flight
        makes the captured dataset object stale: :meth:`put_dataset` /
        :meth:`delete_dataset` bump the dataset's generation and request
        cancellation of its jobs, and the runner checks the generation
        *before publishing* (so CAPs mined from replaced data normally
        never reach the cache) plus once more after, withdrawing the entry
        if a re-upload slipped between check and put.  Either way the job
        ends ``cancelled``, never serving superseded data.
        """
        key = cache_key(dataset.name, params)
        generation = self.dataset_generation(dataset.name)

        def check_current() -> None:
            if self.dataset_generation(dataset.name) != generation:
                raise MiningCancelled(
                    f"dataset {dataset.name!r} was replaced while mining"
                )

        def runner(control) -> str:
            cached = self.cache.get(dataset.name, params)
            if cached is None:
                miner = MiscelaMiner(params)
                result = miner.mine(dataset, control=control)
                check_current()  # never publish a superseded result
                self.cache.put(result)
                try:
                    check_current()
                except MiningCancelled:
                    # Re-upload interleaved with the put: withdraw it.
                    self.cache.delete_key(key)
                    raise
            return key

        return self.jobs.submit(dataset.name, params.to_document(), key, runner)


def register_routes(router: Any, state: ServerState) -> None:
    """Attach every API route to a router."""

    @router.get("/")
    def index(request: Request) -> Response:
        return json_response(
            {
                "service": "miscela-v",
                "routes": [f"{m} {p}" for m, p in router.routes()],
            }
        )

    # -- upload (Figure 2, stage 1) -------------------------------------------

    @router.post("/datasets/{name}/upload/begin")
    def upload_begin(request: Request) -> Response:
        name = request.path_params["name"]
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "expected a JSON object")
        missing = {"location_csv", "attribute_csv"} - set(payload)
        if missing:
            raise HTTPError(400, f"missing fields: {sorted(missing)}")
        locations = read_location_csv(io.StringIO(payload["location_csv"]))
        attributes = read_attribute_csv(io.StringIO(payload["attribute_csv"]))
        self_assembler = ChunkAssembler(name)
        state._pending[name] = self_assembler
        state._pending_meta[name] = (locations, attributes)
        return json_response({"dataset": name, "status": "upload started"}, status=201)

    @router.post("/datasets/{name}/upload/chunk")
    def upload_chunk(request: Request) -> Response:
        name = request.path_params["name"]
        assembler = state._pending.get(name)
        if assembler is None:
            raise HTTPError(409, f"no upload in progress for dataset {name!r}")
        rows = assembler.add_chunk(request.text())
        return json_response(
            {
                "dataset": name,
                "chunk": assembler.chunks_received,
                "rows_in_chunk": rows,
                "rows_total": assembler.rows_received,
            }
        )

    @router.post("/datasets/{name}/upload/finish")
    def upload_finish(request: Request) -> Response:
        name = request.path_params["name"]
        assembler = state._pending.pop(name, None)
        meta = state._pending_meta.pop(name, None)
        if assembler is None or meta is None:
            raise HTTPError(409, f"no upload in progress for dataset {name!r}")
        locations, attributes = meta
        dataset = assembler.finish(locations, attributes)
        state.put_dataset(dataset)
        return json_response(
            {"dataset": name, "summary": dataset.describe()}, status=201
        )

    # -- dataset registry -------------------------------------------------------

    @router.get("/datasets")
    def list_datasets(request: Request) -> Response:
        return json_response({"datasets": state.dataset_names()})

    @router.get("/datasets/{name}")
    def describe_dataset(request: Request) -> Response:
        dataset = state.get_dataset(request.path_params["name"])
        return json_response(dataset.describe())

    @router.delete("/datasets/{name}")
    def delete_dataset(request: Request) -> Response:
        if not state.delete_dataset(request.path_params["name"]):
            raise HTTPError(404, f"unknown dataset {request.path_params['name']!r}")
        return json_response({"deleted": request.path_params["name"]})

    # -- mining (Figure 2, stages 2 and 3) ----------------------------------------

    @router.post("/mine")
    def mine(request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "expected a JSON object")
        if "dataset" not in payload or "parameters" not in payload:
            raise HTTPError(400, "body must contain 'dataset' and 'parameters'")
        mode = str(payload.get("mode") or request.param("mode") or "sync")
        if mode not in ("sync", "async"):
            raise HTTPError(400, f"mode must be 'sync' or 'async', got {mode!r}")
        dataset = state.get_dataset(str(payload["dataset"]))
        try:
            params = MiningParameters.from_document(payload["parameters"])
        except (ValueError, TypeError) as exc:
            raise HTTPError(400, f"invalid parameters: {exc}") from exc
        if mode == "async":
            job, created = state.submit_mine_job(dataset, params)
            return json_response(
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "deduplicated": not created,
                },
                status=202,
            )
        result = state.cache.mine_cached(dataset, params)
        return json_response(_result_payload(result))

    # -- async jobs (submit via POST /mine mode=async) -----------------------------

    @router.get("/jobs")
    def list_jobs(request: Request) -> Response:
        status = request.param("status")
        try:
            jobs = state.jobs.list(status)
        except JobStateError as exc:
            raise HTTPError(400, str(exc)) from exc
        return json_response({"jobs": [job.to_document() for job in jobs]})

    @router.get("/jobs/{job_id}")
    def job_status(request: Request) -> Response:
        job_id = request.path_params["job_id"]
        job = state.jobs.get(job_id)
        if job is None:
            raise HTTPError(404, f"unknown job {job_id!r}")
        document = job.to_document()
        if job.result_key is not None:
            stored = state.database["cap_results"].find_one({"key": job.result_key})
            if stored is not None:
                # Rendered through the same memoized deserialization the
                # sync cache-hit path uses, so the payload is byte-identical
                # to ``POST /mine`` for the same (dataset, parameters).
                document["result"] = _result_payload(
                    state.result_from_document(stored)
                )
        return json_response(document)

    @router.post("/jobs/{job_id}/cancel")
    def job_cancel(request: Request) -> Response:
        job_id = request.path_params["job_id"]
        try:
            job = state.jobs.cancel(job_id)
        except KeyError as exc:
            raise HTTPError(404, f"unknown job {job_id!r}") from exc
        except JobStateError as exc:
            raise HTTPError(409, str(exc)) from exc
        return json_response(job.to_document())

    @router.get("/caps/{dataset}")
    def cached_results(request: Request) -> Response:
        name = request.path_params["dataset"]
        state.get_dataset(name)  # 404 for unknown datasets
        documents = state.database["cap_results"].find({"payload.dataset": name})
        return json_response(
            {
                "dataset": name,
                "cached_results": [
                    {
                        "key": doc["key"],
                        "parameters": doc["payload"]["parameters"],
                        "num_caps": len(doc["result"]["caps"]),
                    }
                    for doc in documents
                ],
            }
        )

    @router.get("/caps/{dataset}/sensors/{sensor_id}")
    def correlated_sensors(request: Request) -> Response:
        """The map's click interaction: who is correlated with this sensor?"""
        name = request.path_params["dataset"]
        sensor_id = request.path_params["sensor_id"]
        dataset = state.get_dataset(name)
        if sensor_id not in dataset:
            raise HTTPError(404, f"unknown sensor {sensor_id!r} in dataset {name!r}")
        documents = state.database["cap_results"].find({"payload.dataset": name})
        if not documents:
            raise HTTPError(409, f"no mined results for dataset {name!r}; POST /mine first")
        correlated: dict[str, set[str]] = {}
        for doc in documents:
            result = state.result_from_document(doc)
            for cap in result.caps_containing(sensor_id):
                for other in cap.sensor_ids:
                    if other != sensor_id:
                        correlated.setdefault(other, set()).update(cap.attributes)
        return json_response(
            {
                "dataset": name,
                "sensor": sensor_id,
                "correlated": {
                    sid: sorted(attrs) for sid, attrs in sorted(correlated.items())
                },
            }
        )

    # -- visualization ------------------------------------------------------------

    @router.get("/viz/{dataset}/map")
    def viz_map(request: Request) -> Response:
        from ..viz.map_view import render_map  # local import: viz is optional at runtime

        dataset = state.get_dataset(request.path_params["dataset"])
        highlight = request.param("highlight")
        highlighted = set(highlight.split(",")) if highlight else set()
        svg = render_map(dataset, highlighted_sensors=highlighted)
        return html_response(svg.to_html_page(title=f"{dataset.name} sensors"))

    @router.get("/viz/{dataset}/heatmap")
    def viz_heatmap(request: Request) -> Response:
        from ..core.evolving import extract_all_evolving
        from ..viz.heatmap import render_coevolution_heatmap

        dataset = state.get_dataset(request.path_params["dataset"])
        sensors_param = request.param("sensors")
        sensor_ids = sensors_param.split(",") if sensors_param else list(
            dataset.sensor_ids[:20]
        )
        for sid in sensor_ids:
            if sid not in dataset:
                raise HTTPError(404, f"unknown sensor {sid!r}")
        # Use the most recently cached parameters for this dataset, or a
        # neutral default, to derive evolving sets for the heatmap.
        documents = state.database["cap_results"].find(
            {"payload.dataset": dataset.name}
        )
        if documents:
            params = MiningParameters.from_document(
                documents[-1]["payload"]["parameters"]
            )
        else:
            params = MiningParameters(
                evolving_rate=1.0, distance_threshold=1.0,
                max_attributes=2, min_support=1,
            )
        evolving = extract_all_evolving(dataset, params)
        svg = render_coevolution_heatmap(dataset, evolving, sensor_ids)
        return html_response(svg.to_html_page(title=f"{dataset.name} co-evolution"))

    @router.get("/viz/{dataset}/timeseries")
    def viz_timeseries(request: Request) -> Response:
        from ..viz.timeseries_view import render_timeseries

        dataset = state.get_dataset(request.path_params["dataset"])
        sensors_param = request.param("sensors")
        if not sensors_param:
            raise HTTPError(400, "pass ?sensors=id1,id2,...")
        sensor_ids = sensors_param.split(",")
        for sid in sensor_ids:
            if sid not in dataset:
                raise HTTPError(404, f"unknown sensor {sid!r}")
        svg = render_timeseries(dataset, sensor_ids)
        return html_response(svg.to_html_page(title=f"{dataset.name} measurements"))

    # -- admin ----------------------------------------------------------------------

    @router.get("/admin/results-by-dataset")
    def admin_results_by_dataset(request: Request) -> Response:
        """Aggregation-pipeline summary of the cached results per dataset."""
        rows = state.database["cap_results"].aggregate(
            [
                {"$project": {
                    "dataset": "$payload.dataset",
                    "num_caps": "$result.caps",
                    "min_support": "$payload.parameters.min_support",
                }},
                {"$unwind": "$num_caps"},
                {"$group": {"_id": "$dataset", "total_caps": {"$count": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )
        settings = state.database["cap_results"].aggregate(
            [
                {"$group": {"_id": "$payload.dataset", "settings": {"$count": 1}}},
                {"$sort": {"_id": 1}},
            ]
        )
        per_dataset = {row["_id"]: {"total_caps": row["total_caps"]} for row in rows}
        for row in settings:
            per_dataset.setdefault(row["_id"], {"total_caps": 0})["settings"] = row["settings"]
        return json_response({"results_by_dataset": per_dataset})

    @router.get("/admin/stats")
    def admin_stats(request: Request) -> Response:
        return json_response(
            {
                "store": state.database.stats(),
                "cache": {
                    "entries": len(state.cache),
                    "hits": state.cache.stats.hits,
                    "misses": state.cache.stats.misses,
                    "evictions": state.cache.stats.evictions,
                    "hit_rate": state.cache.stats.hit_rate,
                },
                "jobs": state.jobs.counters(),
            }
        )


def _result_payload(result: MiningResult) -> dict[str, Any]:
    return {
        "dataset": result.dataset_name,
        "parameters": result.parameters.to_document(),
        "num_caps": result.num_caps,
        "caps": [cap.to_document() for cap in result.caps],
        "from_cache": result.from_cache,
        "elapsed_seconds": result.elapsed_seconds,
    }
