"""Self-describing API schema: router introspection → OpenAPI-style doc.

``GET /api/v1/schema`` serves :func:`build_schema` over the live router, so
the description can never drift from the registered routes — every
``Router.add`` call surfaces here with its method, path/query parameters,
response descriptions, and deprecation metadata.

Two artifacts hang off the generated document:

* ``API.md`` — the human-readable reference, rendered by
  :func:`render_markdown` (regenerate with
  ``python -m repro.server.schema --out API.md`` or
  ``repro-miscela schema --out API.md``);
* the CI route-parity gate — ``python -m repro.server.schema --check
  API.md`` fails when any registered route is missing from the schema
  output or from the committed reference, so adding a route without
  regenerating the docs breaks the build instead of silently rotting them.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Mapping, Sequence

__all__ = ["build_schema", "render_markdown", "check_parity", "main"]

SCHEMA_VERSION = 1

_MD_HEADING = re.compile(r"^### `(?P<method>[A-Z]+) (?P<pattern>/\S*)`", re.MULTILINE)


def build_schema(router: Any) -> dict[str, Any]:
    """An OpenAPI-style description of every route registered on ``router``."""
    paths: dict[str, dict[str, Any]] = {}
    for route in router.describe():
        parameters = [
            {
                "name": param,
                "in": "path",
                "required": True,
                "type": "string",
            }
            for param in route["path_params"]
        ] + [
            {
                "name": query["name"],
                "in": "query",
                "required": False,
                "type": query.get("type", "string"),
                "description": query.get("description", ""),
            }
            for query in route["query"]
        ]
        responses = {
            status: {"description": description}
            for status, description in sorted(route["responses"].items())
        } or {"200": {"description": "success"}}
        operation: dict[str, Any] = {
            "operationId": route["name"],
            "summary": route["summary"],
            "parameters": parameters,
            "responses": responses,
            "deprecated": route["deprecated"],
        }
        if route["successor"]:
            operation["x-successor"] = route["successor"]
        paths.setdefault(route["pattern"], {})[route["method"].lower()] = operation
    return {
        "service": "miscela-v",
        "api_version": "v1",
        "schema_version": SCHEMA_VERSION,
        "generated_from": "repro.server.routing.Router introspection",
        "request_id_header": {
            "name": "X-Request-Id",
            "description": (
                "Every response (success and error envelope alike) carries "
                "X-Request-Id: the value the client sent, or a server-minted "
                "id.  Jobs submitted under it adopt it as their trace_id, so "
                "the id threads through GET /api/v1/jobs/{job_id}/trace and "
                "the persisted span tree."
            ),
        },
        "paths": {pattern: paths[pattern] for pattern in sorted(paths)},
    }


def _render_operation(method: str, pattern: str, operation: Mapping[str, Any]) -> list[str]:
    lines = [f"### `{method.upper()} {pattern}`", ""]
    if operation.get("deprecated"):
        successor = operation.get("x-successor")
        note = "**Deprecated.**"
        if successor:
            note += f" Successor: `{successor}`."
        lines += [note, ""]
    if operation.get("summary"):
        lines += [operation["summary"], ""]
    query = [p for p in operation.get("parameters", ()) if p.get("in") == "query"]
    if query:
        lines += ["| Query parameter | Type | Description |", "|---|---|---|"]
        lines += [
            f"| `{p['name']}` | {p.get('type', 'string')} | {p.get('description', '')} |"
            for p in query
        ]
        lines.append("")
    responses = operation.get("responses", {})
    if responses:
        lines += ["| Status | Meaning |", "|---|---|"]
        lines += [
            f"| {status} | {body.get('description', '')} |"
            for status, body in sorted(responses.items())
        ]
        lines.append("")
    return lines


def render_markdown(schema: Mapping[str, Any]) -> str:
    """Render the schema document as the ``API.md`` reference."""
    v1: list[str] = []
    legacy: list[str] = []
    for pattern, operations in schema["paths"].items():
        for method, operation in sorted(operations.items()):
            section = _render_operation(method, pattern, operation)
            if operation.get("deprecated"):
                legacy += section
            else:
                v1 += section
    lines = [
        "# Miscela-V HTTP API reference",
        "",
        "> Generated from the live route table by"
        " `python -m repro.server.schema --out API.md` —"
        " **do not edit by hand**; CI's route-parity check"
        " (`python -m repro.server.schema --check API.md`) fails when this"
        " file and the registered routes disagree.",
        "",
        "The machine-readable form of this document is served at"
        " `GET /api/v1/schema`.",
        "",
        "## API v1 (current)",
        "",
        "Resource-oriented, versioned under `/api/v1`.  Mined results are"
        " first-class resources addressed by their cache key"
        " (`/api/v1/results/{key}`): metadata GETs carry an `ETag` derived"
        " from the cache key and the dataset generation (revalidate with"
        " `If-None-Match` for a 304), CAP lists page through"
        " `…/caps?offset=&limit=` with RFC-5988 `Link` headers, and errors"
        ' use the uniform envelope `{"error": {"code", "message",'
        ' "detail"}}`.',
        "",
        "Every response — success and error envelope alike — carries an"
        " `X-Request-Id` header: the id the client sent, or a server-minted"
        " one.  Jobs submitted under a request adopt its id as their"
        " `trace_id`, which threads through the persisted span tree served"
        " by `GET /api/v1/jobs/{job_id}/trace` (and `repro trace`).",
        "",
        *v1,
        "## Deprecated unversioned routes",
        "",
        "The pre-v1 surface.  Every route still answers with its historical"
        " payload shape, plus `Deprecation: true` and a"
        ' `Link: <successor>; rel="successor-version"` header naming its v1'
        " replacement.  New clients should use `/api/v1` exclusively.",
        "",
        *legacy,
    ]
    return "\n".join(lines).rstrip() + "\n"


def check_parity(
    router: Any, schema: Mapping[str, Any], markdown: str
) -> list[str]:
    """Problems list: registered ↮ documented route drift, both directions.

    Forward: every registered route must appear in the schema output and
    in the Markdown reference.  Reverse: every documented route heading
    must still be registered — a deleted/renamed endpoint must not live on
    in API.md as if it answered.
    """
    problems: list[str] = []
    registered = set(router.routes())
    documented = {
        (m.group("method"), m.group("pattern"))
        for m in _MD_HEADING.finditer(markdown)
    }
    for method, pattern in router.routes():
        operations = schema["paths"].get(pattern, {})
        if method.lower() not in operations:
            problems.append(f"{method} {pattern}: missing from the schema output")
        if (method, pattern) not in documented:
            problems.append(f"{method} {pattern}: missing from API.md")
    for method, pattern in sorted(documented - registered):
        problems.append(
            f"{method} {pattern}: documented in API.md but not registered"
        )
    return problems


def _build_app_schema() -> tuple[dict[str, Any], Any]:
    """(schema, router) for the fully-assembled application."""
    from .app import create_app

    app = create_app(job_workers=1)
    try:
        return build_schema(app.router), app.router
    finally:
        app.close()


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.schema",
        description="Emit or check the generated API schema/reference.",
    )
    parser.add_argument("--out", help="write the Markdown reference to this path")
    parser.add_argument(
        "--check",
        metavar="API_MD",
        help="verify every registered route appears in the schema and in "
             "this Markdown file; exit 1 on drift",
    )
    args = parser.parse_args(argv)
    emit = sys.stdout.write  # CLI output, not diagnostics — loggers stay quiet
    schema, router = _build_app_schema()
    if args.check:
        try:
            committed = open(args.check, encoding="utf-8").read()
        except OSError as exc:
            emit(f"cannot read {args.check}: {exc}\n")
            return 1
        problems = check_parity(router, schema, committed)
        if problems:
            emit(f"route parity check FAILED ({len(problems)} problems):\n")
            for problem in problems:
                emit(f"  - {problem}\n")
            emit("regenerate with: python -m repro.server.schema --out "
                 f"{args.check}\n")
            return 1
        emit(f"route parity OK: {len(router.routes())} routes documented "
             f"in {args.check}\n")
        return 0
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(schema))
        emit(f"wrote {args.out} ({len(router.routes())} routes)\n")
        return 0
    emit(json.dumps(schema, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
