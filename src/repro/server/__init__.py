"""API server — the django substitute (see DESIGN.md)."""

from .app import App, TestClient, create_app, create_wsgi_app
from .handlers import ServerState, register_routes
from .http import (
    HTTPError,
    Request,
    Response,
    html_response,
    json_response,
    make_threaded_server,
)
from .middleware import body_limit_middleware, error_middleware, logging_middleware
from .routing import Route, Router

__all__ = [
    "App",
    "HTTPError",
    "Request",
    "Response",
    "Route",
    "Router",
    "ServerState",
    "TestClient",
    "body_limit_middleware",
    "create_app",
    "create_wsgi_app",
    "error_middleware",
    "html_response",
    "json_response",
    "logging_middleware",
    "make_threaded_server",
    "register_routes",
]
