"""API server — the django substitute (see DESIGN.md)."""

from .api_v1 import register_v1_routes
from .app import App, TestClient, create_app, create_wsgi_app
from .handlers import ServerState, register_routes
from .http import (
    HTTPError,
    Request,
    Response,
    html_response,
    json_response,
    make_threaded_server,
    negotiate_media_type,
    svg_response,
)
from .middleware import body_limit_middleware, error_middleware, logging_middleware
from .routing import Route, Router

# NOTE: repro.server.schema is intentionally not imported here — it is run
# as ``python -m repro.server.schema`` and pre-importing it from the package
# __init__ would trigger runpy's double-import warning.

__all__ = [
    "App",
    "HTTPError",
    "Request",
    "Response",
    "Route",
    "Router",
    "ServerState",
    "TestClient",
    "body_limit_middleware",
    "create_app",
    "create_wsgi_app",
    "error_middleware",
    "html_response",
    "json_response",
    "logging_middleware",
    "make_threaded_server",
    "negotiate_media_type",
    "register_routes",
    "register_v1_routes",
    "svg_response",
]
