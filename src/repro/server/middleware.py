"""Middleware: error rendering, request logging, and body-size limits.

Composable request wrappers in the WSGI/django tradition.  The error
middleware is the API's single error-envelope layer: every failure —
:class:`~repro.server.http.HTTPError`, dataset validation, or an unexpected
exception — renders through :func:`render_error`, which picks the response
shape by path:

* ``/api/v1/...`` requests get the uniform v1 error document
  ``{"error": {"code", "message", "detail"}}`` — one shape for 400s, 404s,
  405s and 500s alike, with a stable machine-readable ``code``;
* legacy unversioned routes keep their historical
  ``{"error": <message>, "details": ...}`` shape so pre-v1 clients and
  tests are unaffected.

Headers attached to an :class:`HTTPError` (e.g. ``Allow`` on a 405) are
merged into the rendered response in both shapes.
"""

from __future__ import annotations

import logging
import os
import time
import uuid
from typing import Any, Callable, Mapping

from ..data.validation import DatasetValidationError
from ..obs.logging import log_context
from ..obs.metrics import get_registry
from .http import HTTPError, Request, Response, json_response
from .routing import apply_deprecation_headers

__all__ = [
    "error_middleware",
    "logging_middleware",
    "body_limit_middleware",
    "request_id_middleware",
    "metrics_middleware",
    "render_error",
    "REQUEST_ID_HEADER",
    "SLOW_REQUEST_ENV",
]

Handler = Callable[[Request], Response]

logger = logging.getLogger("repro.server")

#: The versioned API prefix the envelope layer keys off.
V1_PREFIX = "/api/v1"

#: The trace-propagation header: honored when the client sends one,
#: minted and echoed otherwise.
REQUEST_ID_HEADER = "X-Request-Id"

#: Milliseconds; requests slower than this log a warning.  Unset/empty
#: disables the check (the default — benchmarks must not pay for it).
SLOW_REQUEST_ENV = "REPRO_SLOW_REQUEST_MS"


def _is_v1(path: str) -> bool:
    return path == V1_PREFIX or path.startswith(V1_PREFIX + "/")


def render_error(
    request: Request,
    status: int,
    code: str,
    message: str,
    detail: Any = None,
    headers: Mapping[str, str] | None = None,
) -> Response:
    """Render one error in the shape the request's API version expects."""
    if _is_v1(request.path):
        payload: dict[str, Any] = {
            "error": {"code": code, "message": message, "detail": detail}
        }
    else:
        payload = {"error": message}
        if detail is not None:
            payload["details"] = detail
    response = json_response(payload, status=status)
    if headers:
        response.headers.update(headers)
    return response


def error_middleware(handler: Handler) -> Handler:
    """Render HTTPError / validation errors as JSON; 500 for the unexpected."""

    def wrapped(request: Request) -> Response:
        try:
            return handler(request)
        except HTTPError as exc:
            response = render_error(
                request, exc.status, exc.code, exc.message,
                detail=exc.details, headers=exc.headers,
            )
        except DatasetValidationError as exc:
            response = render_error(
                request, 400, "validation_failed",
                "dataset validation failed", detail=exc.errors,
            )
        except Exception as exc:  # noqa: BLE001 - the server must not crash
            logger.exception("unhandled error for %s %s", request.method, request.path)
            response = render_error(
                request, 500, "internal_error", f"internal error: {exc}"
            )
        # Errors raised by a deprecated route's handler carry the
        # deprecation headers too (dispatch never saw a response to mark).
        apply_deprecation_headers(getattr(request, "route", None), response)
        return response

    return wrapped


def request_id_middleware(handler: Handler) -> Handler:
    """Honor or mint ``X-Request-Id``; echo it on *every* response.

    Outermost layer: the id must land on error envelopes too, and the
    whole chain (including error rendering) runs inside the trace's log
    context so every record carries ``trace_id``.
    """

    def wrapped(request: Request) -> Response:
        incoming = (request.headers or {}).get(REQUEST_ID_HEADER.lower(), "")
        trace_id = incoming.strip() or uuid.uuid4().hex
        request.trace_id = trace_id
        with log_context(trace_id=trace_id):
            response = handler(request)
        response.headers.setdefault(REQUEST_ID_HEADER, trace_id)
        return response

    return wrapped


def _slow_request_threshold_ms() -> float | None:
    raw = os.environ.get(SLOW_REQUEST_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def metrics_middleware(handler: Handler) -> Handler:
    """Count and time every request, labelled by method/route/status.

    Sits outside the error middleware so it observes the *final* status
    (post error-rendering).  The route label is the registered pattern
    template (``/api/v1/jobs/{job_id}``), never the raw path — label
    cardinality stays bounded by the route table; unmatched requests
    (404/405 before dispatch assigns a route) share one bucket.
    """
    registry = get_registry()
    requests_total = registry.counter(
        "repro_http_requests_total",
        "HTTP requests served, by method, route template, and status.",
        ("method", "route", "status"),
    )
    latency = registry.histogram(
        "repro_http_request_seconds",
        "HTTP request latency in seconds, by method and route template.",
        ("method", "route"),
    )

    def wrapped(request: Request) -> Response:
        started = time.perf_counter()
        response = handler(request)
        elapsed = time.perf_counter() - started
        pattern = getattr(getattr(request, "route", None), "pattern", None)
        route_label = pattern or "(unmatched)"
        requests_total.inc(request.method, route_label, str(response.status))
        latency.observe(elapsed, request.method, route_label)
        threshold_ms = _slow_request_threshold_ms()
        if threshold_ms is not None and elapsed * 1000.0 >= threshold_ms:
            logger.warning(
                "slow request: %s %s -> %d took %.1f ms (threshold %.0f ms)",
                request.method,
                request.path,
                response.status,
                elapsed * 1000.0,
                threshold_ms,
            )
        return response

    return wrapped


def logging_middleware(handler: Handler) -> Handler:
    """Log method, path, status, and latency per request."""

    def wrapped(request: Request) -> Response:
        started = time.perf_counter()
        response = handler(request)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        logger.info(
            "%s %s -> %d (%.1f ms)", request.method, request.path, response.status, elapsed_ms
        )
        return response

    return wrapped


def body_limit_middleware(max_bytes: int) -> Callable[[Handler], Handler]:
    """Reject requests whose body exceeds ``max_bytes`` with 413.

    The chunked upload protocol keeps individual requests small; this guard
    enforces that clients actually chunk instead of posting a whole
    data.csv at once.
    """
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")

    def factory(handler: Handler) -> Handler:
        def wrapped(request: Request) -> Response:
            if len(request.body) > max_bytes:
                raise HTTPError(
                    413,
                    f"request body of {len(request.body)} bytes exceeds the "
                    f"{max_bytes}-byte limit; use the chunked upload protocol",
                )
            return handler(request)

        return wrapped

    return factory
