"""Middleware: error rendering, request logging, and body-size limits.

Composable request wrappers in the WSGI/django tradition.  The error
middleware is what turns :class:`~repro.server.http.HTTPError` and
validation failures into clean JSON error payloads instead of stack traces.
"""

from __future__ import annotations

import logging
import time
from typing import Callable

from ..data.validation import DatasetValidationError
from .http import HTTPError, Request, Response, json_response

__all__ = ["error_middleware", "logging_middleware", "body_limit_middleware"]

Handler = Callable[[Request], Response]

logger = logging.getLogger("repro.server")


def error_middleware(handler: Handler) -> Handler:
    """Render HTTPError / validation errors as JSON; 500 for the unexpected."""

    def wrapped(request: Request) -> Response:
        try:
            return handler(request)
        except HTTPError as exc:
            payload = {"error": exc.message}
            if exc.details is not None:
                payload["details"] = exc.details
            return json_response(payload, status=exc.status)
        except DatasetValidationError as exc:
            return json_response(
                {"error": "dataset validation failed", "details": exc.errors},
                status=400,
            )
        except Exception as exc:  # noqa: BLE001 - the server must not crash
            logger.exception("unhandled error for %s %s", request.method, request.path)
            return json_response({"error": f"internal error: {exc}"}, status=500)

    return wrapped


def logging_middleware(handler: Handler) -> Handler:
    """Log method, path, status, and latency per request."""

    def wrapped(request: Request) -> Response:
        started = time.perf_counter()
        response = handler(request)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        logger.info(
            "%s %s -> %d (%.1f ms)", request.method, request.path, response.status, elapsed_ms
        )
        return response

    return wrapped


def body_limit_middleware(max_bytes: int) -> Callable[[Handler], Handler]:
    """Reject requests whose body exceeds ``max_bytes`` with 413.

    The chunked upload protocol keeps individual requests small; this guard
    enforces that clients actually chunk instead of posting a whole
    data.csv at once.
    """
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")

    def factory(handler: Handler) -> Handler:
        def wrapped(request: Request) -> Response:
            if len(request.body) > max_bytes:
                raise HTTPError(
                    413,
                    f"request body of {len(request.body)} bytes exceeds the "
                    f"{max_bytes}-byte limit; use the chunked upload protocol",
                )
            return handler(request)

        return wrapped

    return factory
