"""Middleware: error rendering, request logging, and body-size limits.

Composable request wrappers in the WSGI/django tradition.  The error
middleware is the API's single error-envelope layer: every failure —
:class:`~repro.server.http.HTTPError`, dataset validation, or an unexpected
exception — renders through :func:`render_error`, which picks the response
shape by path:

* ``/api/v1/...`` requests get the uniform v1 error document
  ``{"error": {"code", "message", "detail"}}`` — one shape for 400s, 404s,
  405s and 500s alike, with a stable machine-readable ``code``;
* legacy unversioned routes keep their historical
  ``{"error": <message>, "details": ...}`` shape so pre-v1 clients and
  tests are unaffected.

Headers attached to an :class:`HTTPError` (e.g. ``Allow`` on a 405) are
merged into the rendered response in both shapes.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable, Mapping

from ..data.validation import DatasetValidationError
from .http import HTTPError, Request, Response, json_response
from .routing import apply_deprecation_headers

__all__ = [
    "error_middleware",
    "logging_middleware",
    "body_limit_middleware",
    "render_error",
]

Handler = Callable[[Request], Response]

logger = logging.getLogger("repro.server")

#: The versioned API prefix the envelope layer keys off.
V1_PREFIX = "/api/v1"


def _is_v1(path: str) -> bool:
    return path == V1_PREFIX or path.startswith(V1_PREFIX + "/")


def render_error(
    request: Request,
    status: int,
    code: str,
    message: str,
    detail: Any = None,
    headers: Mapping[str, str] | None = None,
) -> Response:
    """Render one error in the shape the request's API version expects."""
    if _is_v1(request.path):
        payload: dict[str, Any] = {
            "error": {"code": code, "message": message, "detail": detail}
        }
    else:
        payload = {"error": message}
        if detail is not None:
            payload["details"] = detail
    response = json_response(payload, status=status)
    if headers:
        response.headers.update(headers)
    return response


def error_middleware(handler: Handler) -> Handler:
    """Render HTTPError / validation errors as JSON; 500 for the unexpected."""

    def wrapped(request: Request) -> Response:
        try:
            return handler(request)
        except HTTPError as exc:
            response = render_error(
                request, exc.status, exc.code, exc.message,
                detail=exc.details, headers=exc.headers,
            )
        except DatasetValidationError as exc:
            response = render_error(
                request, 400, "validation_failed",
                "dataset validation failed", detail=exc.errors,
            )
        except Exception as exc:  # noqa: BLE001 - the server must not crash
            logger.exception("unhandled error for %s %s", request.method, request.path)
            response = render_error(
                request, 500, "internal_error", f"internal error: {exc}"
            )
        # Errors raised by a deprecated route's handler carry the
        # deprecation headers too (dispatch never saw a response to mark).
        apply_deprecation_headers(getattr(request, "route", None), response)
        return response

    return wrapped


def logging_middleware(handler: Handler) -> Handler:
    """Log method, path, status, and latency per request."""

    def wrapped(request: Request) -> Response:
        started = time.perf_counter()
        response = handler(request)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        logger.info(
            "%s %s -> %d (%.1f ms)", request.method, request.path, response.status, elapsed_ms
        )
        return response

    return wrapped


def body_limit_middleware(max_bytes: int) -> Callable[[Handler], Handler]:
    """Reject requests whose body exceeds ``max_bytes`` with 413.

    The chunked upload protocol keeps individual requests small; this guard
    enforces that clients actually chunk instead of posting a whole
    data.csv at once.
    """
    if max_bytes < 1:
        raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")

    def factory(handler: Handler) -> Handler:
        def wrapped(request: Request) -> Response:
            if len(request.body) > max_bytes:
                raise HTTPError(
                    413,
                    f"request body of {len(request.body)} bytes exceeds the "
                    f"{max_bytes}-byte limit; use the chunked upload protocol",
                )
            return handler(request)

        return wrapped

    return factory
