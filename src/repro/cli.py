"""Command-line interface for the Miscela-V reproduction.

Everything the demo's web UI drives is reachable from a terminal:

* ``inventory`` — the §4 dataset table (paper vs generated);
* ``generate``  — write a synthetic dataset as data/location/attribute CSVs;
* ``mine``      — run CAP mining over a dataset directory or a named
  synthetic dataset, with the four paper parameters as flags;
* ``report``    — mine and write the Figure-3 HTML report;
* ``sweep``     — the §2.1 sensitivity sweep, as a table and optional SVG;
* ``compare``   — the Figure-4 before/after diff at a split date;
* ``serve``     — start the Figure-2 API server (the versioned ``/api/v1``
  resource API plus the deprecated unversioned shims); with ``--store``
  the job registry is durable: jobs survive restarts and several server
  processes sharing the snapshot claim work through leases;
* ``jobs``      — inspect (``list``) or recover (``recover``) the durable
  job registry of a store snapshot without starting a server;
* ``trace``     — reconstruct one job's timeline (an ASCII waterfall of its
  persisted spans — for a distributed mine: planner, every shard attempt,
  merge) straight from a store, no server needed;
* ``schema``    — emit the generated API schema (JSON), regenerate the
  ``API.md`` reference, or check route/reference parity.

Examples::

    repro-miscela inventory
    repro-miscela generate santander --seed 7 --out ./santander_csv
    repro-miscela mine --dataset santander --min-support 10 --json caps.json
    repro-miscela mine --dataset china6 --async --watch
    repro-miscela report --dataset china6 --out report.html
    repro-miscela sweep --dataset santander --parameter min_support \\
        --values 2,5,10,20 --svg sweep.svg
    repro-miscela compare --dataset covid19 --split 2020-01-23
    repro-miscela serve --port 8000
    repro-miscela serve --store ./miscela.json --lease-seconds 10
    repro-miscela jobs recover --store ./miscela.json
    repro-miscela schema --out API.md
    repro-miscela schema --check API.md
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from datetime import datetime
from pathlib import Path
from typing import Sequence

from .analysis.comparison import compare_periods
from .analysis.sensitivity import SWEEPABLE_PARAMETERS, sweep
from .core.miner import MiscelaMiner
from .core.parameters import MiningParameters
from .core.types import SensorDataset
from .data.csv_io import read_dataset_dir, write_dataset_dir
from .data.datasets import DATASET_NAMES, dataset_table, generate, recommended_parameters

__all__ = ["main", "build_parser"]


def _print_table(rows: list[dict], stream=None) -> None:
    stream = stream or sys.stdout
    if not rows:
        print("(no rows)", file=stream)
        return
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns), file=stream)
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns), file=stream)


def _load_dataset(args: argparse.Namespace) -> SensorDataset:
    """Resolve --dataset (registry name) or --data-dir (CSV directory)."""
    if getattr(args, "data_dir", None):
        return read_dataset_dir(args.data_dir)
    name = args.dataset
    if name not in DATASET_NAMES:
        raise SystemExit(
            f"unknown dataset {name!r}; choose from {', '.join(DATASET_NAMES)} "
            f"or pass --data-dir"
        )
    return generate(name, seed=args.seed)


def _params_from_args(args: argparse.Namespace, dataset_name: str) -> MiningParameters:
    """Start from the dataset's recommended parameters, apply flag overrides."""
    if dataset_name in DATASET_NAMES:
        params = recommended_parameters(dataset_name)
    else:
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=3, min_support=5
        )
    overrides = {}
    for flag, field in [
        ("evolving_rate", "evolving_rate"),
        ("distance_threshold", "distance_threshold"),
        ("max_attributes", "max_attributes"),
        ("min_support", "min_support"),
        ("max_sensors", "max_sensors"),
        ("max_delay", "max_delay"),
        ("segmentation", "segmentation"),
        ("segmentation_error", "segmentation_error"),
        ("evolving_backend", "evolving_backend"),
        ("n_jobs", "n_jobs"),
    ]:
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "direction_aware", False):
        overrides["direction_aware"] = True
    return params.with_updates(**overrides) if overrides else params


def _add_param_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("mining parameters (defaults: recommended per dataset)")
    group.add_argument("--evolving-rate", dest="evolving_rate", type=float, metavar="ε")
    group.add_argument("--distance-threshold", dest="distance_threshold", type=float, metavar="η")
    group.add_argument("--max-attributes", dest="max_attributes", type=int, metavar="μ")
    group.add_argument("--min-support", dest="min_support", type=int, metavar="ψ")
    group.add_argument("--max-sensors", dest="max_sensors", type=int)
    group.add_argument("--max-delay", dest="max_delay", type=int, metavar="δ")
    group.add_argument("--direction-aware", dest="direction_aware", action="store_true")
    group.add_argument("--segmentation", choices=["none", "sliding_window", "bottom_up", "top_down"])
    group.add_argument("--segmentation-error", dest="segmentation_error", type=float)
    group.add_argument(
        "--evolving-backend", dest="evolving_backend", choices=["array", "bitset"],
        help="evolving-set representation: packed bitmaps (default) or the sorted-array oracle",
    )
    group.add_argument(
        "--jobs", dest="n_jobs", type=int, metavar="N",
        help="worker processes for the CAP search (0 = all cores, default 1)",
    )


def _add_dataset_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="santander",
                        help=f"synthetic dataset name ({', '.join(DATASET_NAMES)})")
    parser.add_argument("--data-dir", help="directory with data/location/attribute CSVs")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-miscela",
        description="Miscela-V reproduction: CAP mining over smart-city sensor data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("inventory", help="print the §4 dataset table")

    p_gen = sub.add_parser("generate", help="write a synthetic dataset as CSVs")
    p_gen.add_argument("name", choices=list(DATASET_NAMES))
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output directory")

    p_mine = sub.add_parser("mine", help="mine CAPs and print/save them")
    _add_dataset_flags(p_mine)
    _add_param_flags(p_mine)
    p_mine.add_argument("--json", help="write CAPs to this JSON file")
    p_mine.add_argument("--top", type=int, default=10, help="rows to print")
    p_mine.add_argument(
        "--async", dest="asynchronous", action="store_true",
        help="run through the job queue (submit, then poll until done)",
    )
    p_mine.add_argument(
        "--watch", action="store_true",
        help="with --async: print job state/progress while polling",
    )
    p_mine.add_argument(
        "--poll-interval", dest="poll_interval", type=float, default=0.2,
        metavar="SECONDS", help="with --async: delay between status polls",
    )

    p_rep = sub.add_parser("report", help="mine and write the Figure-3 HTML report")
    _add_dataset_flags(p_rep)
    _add_param_flags(p_rep)
    p_rep.add_argument("--out", default="report.html")
    p_rep.add_argument("--max-caps", dest="max_caps", type=int, default=10)
    p_rep.add_argument("--markdown", help="also write a Markdown summary here")

    p_sweep = sub.add_parser("sweep", help="§2.1 parameter sensitivity sweep")
    _add_dataset_flags(p_sweep)
    _add_param_flags(p_sweep)
    p_sweep.add_argument("--parameter", required=True, choices=sorted(SWEEPABLE_PARAMETERS))
    p_sweep.add_argument("--values", required=True,
                         help="comma-separated values, e.g. 2,5,10,20")
    p_sweep.add_argument("--svg", help="write the sweep curve to this SVG file")

    p_cmp = sub.add_parser("compare", help="Figure-4 before/after comparison")
    _add_dataset_flags(p_cmp)
    _add_param_flags(p_cmp)
    p_cmp.add_argument("--split", required=True, help="split date, YYYY-MM-DD")

    p_srv = sub.add_parser("serve", help="start the Figure-2 API server")
    p_srv.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 = pick a free one; the chosen port "
                            "is announced on the MISCELA_READY line)")
    p_srv.add_argument("--store", help="JSON snapshot path for persistence; "
                       "also enables the durable job registry (jobs survive "
                       "restarts, several processes may share one store)")
    p_srv.add_argument("--preload", action="store_true",
                       help="pre-upload synthetic santander")
    p_srv.add_argument("--preload-dataset", dest="preload_dataset",
                       choices=list(DATASET_NAMES),
                       help="pre-upload this synthetic dataset instead")
    p_srv.add_argument("--preload-seed", dest="preload_seed", type=int, default=7,
                       help="generator seed for --preload/--preload-dataset")
    p_srv.add_argument("--job-workers", dest="job_workers", type=int, default=2,
                       help="async mining executor width (mode=async submissions)")
    p_srv.add_argument("--lease-seconds", dest="lease_seconds", type=float,
                       default=30.0,
                       help="with --store: how long a claimed job's lease "
                            "lasts without a progress renewal")
    p_srv.add_argument("--worker-poll", dest="worker_poll", type=float, default=1.0,
                       metavar="SECONDS",
                       help="with --store: poll interval of the lease worker "
                            "that claims jobs other processes enqueued "
                            "(0 disables the worker)")
    p_srv.add_argument("--max-attempts", dest="max_attempts", type=int,
                       default=5, metavar="N",
                       help="with --store: dead-letter a job (or shard "
                            "sub-job) after it loses its worker N times "
                            "instead of requeueing forever (0 = unlimited, "
                            "default 5)")
    p_srv.add_argument("--worker-id", dest="worker_id",
                       help="with --store: stable worker identity stamped on "
                            "claimed jobs (default: pid-derived)")
    p_srv.add_argument("--compact-seconds", dest="compact_seconds", type=float,
                       metavar="SECONDS",
                       help="background compaction sweep interval: WAL "
                            "segment folds (with --store) plus the stream "
                            "retention pass (default: disabled)")
    p_srv.add_argument("--stream-retention", dest="stream_retention", type=int,
                       metavar="N",
                       help="server-wide default stream retention: keep the "
                            "newest N cap_events per dataset, folding older "
                            "ones into the feed snapshot on each compaction "
                            "sweep (default: retention only where a dataset "
                            "configures it via PATCH .../stream-config)")
    p_srv.add_argument("--log-format", dest="log_format",
                       choices=["text", "json"], default="text",
                       help="stdlib logging output: human-readable lines or "
                            "one JSON object per record (each carries "
                            "trace_id/job_id context when present)")
    p_srv.add_argument("--log-level", dest="log_level", default="info",
                       choices=["debug", "info", "warning", "error"],
                       help="root logger threshold (default info)")

    p_jobs = sub.add_parser(
        "jobs", help="inspect / recover the durable job registry of a store"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)
    p_jrec = jobs_sub.add_parser(
        "recover",
        help="requeue interrupted jobs and republish finished ones",
    )
    p_jrec.add_argument("--store", required=True, help="JSON snapshot path")
    p_jrec.add_argument("--lease-seconds", dest="lease_seconds", type=float,
                        default=30.0)
    p_jlist = jobs_sub.add_parser("list", help="print the registry's jobs")
    p_jlist.add_argument("--store", required=True, help="JSON snapshot path")
    p_jlist.add_argument("--status", help="filter by job state")
    p_jredrive = jobs_sub.add_parser(
        "redrive",
        help="replay quarantined dead-letter jobs as fresh queued jobs "
             "(attempt counters reset; any worker may claim them)",
    )
    p_jredrive.add_argument("--store", required=True, help="JSON snapshot path")
    p_jredrive.add_argument(
        "--job-id", dest="job_ids", action="append", metavar="JOB_ID",
        help="redrive only this dead-lettered job (repeatable; "
             "default: every letter)",
    )

    p_store = sub.add_parser(
        "store", help="inspect / maintain a store (WAL verify, compaction)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sver = store_sub.add_parser(
        "verify",
        help="offline checksum walk of every WAL log (exit 1 on a torn tail)",
    )
    p_sver.add_argument("--store", required=True, help="store path")
    p_scomp = store_sub.add_parser(
        "compact",
        help="rewrite every collection log to its live state (and archive a "
             "migrated legacy snapshot)",
    )
    p_scomp.add_argument("--store", required=True, help="store path")

    p_trace = sub.add_parser(
        "trace",
        help="render the persisted span timeline of one job as an ASCII "
             "waterfall (durable stores only)",
    )
    p_trace.add_argument("job_id", help="the job to reconstruct")
    p_trace.add_argument("--store", required=True, help="store path")
    p_trace.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the span tree as JSON instead of the "
                              "waterfall (the /api/v1/jobs/{id}/trace shape)")
    p_trace.add_argument("--width", type=int, default=60,
                         help="timeline width in columns (default 60)")

    p_stream = sub.add_parser(
        "stream", help="inspect a dataset's live CAP change feed"
    )
    stream_sub = p_stream.add_subparsers(dest="stream_command", required=True)
    p_tail = stream_sub.add_parser(
        "tail",
        help="print the newest CAP change events of a dataset's feed",
    )
    p_tail.add_argument("dataset", help="dataset name")
    p_tail.add_argument("--store", required=True, help="store path")
    p_tail.add_argument(
        "--cursor", type=int, default=None,
        help="print events with seq > CURSOR (default: the last --limit)",
    )
    p_tail.add_argument("--limit", type=int, default=20,
                        help="events to print (default 20)")
    p_tail.add_argument("--json", action="store_true", dest="as_json",
                        help="emit raw event documents as JSON lines")

    p_alerts = sub.add_parser(
        "alerts", help="print the alerts the stream engine fired for a dataset"
    )
    p_alerts.add_argument("dataset", help="dataset name")
    p_alerts.add_argument("--store", required=True, help="store path")
    p_alerts.add_argument("--rule", help="only alerts fired by this rule_id")
    p_alerts.add_argument("--json", action="store_true", dest="as_json",
                          help="emit raw alert documents as JSON lines")

    p_schema = sub.add_parser(
        "schema", help="emit the generated API schema / reference"
    )
    p_schema.add_argument("--out", help="write the Markdown reference (API.md) here")
    p_schema.add_argument(
        "--check", metavar="API_MD",
        help="fail if any registered route is missing from the schema or "
             "from this Markdown file",
    )

    return parser


def cmd_inventory(args: argparse.Namespace) -> int:
    _print_table(dataset_table(seed=0))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate(args.name, seed=args.seed)
    directory = write_dataset_dir(dataset, args.out)
    print(f"wrote {dataset.name}: {len(dataset)} sensors, "
          f"{dataset.num_records} records -> {directory}")
    return 0


def _print_mine_result(result, params: MiningParameters, args: argparse.Namespace) -> None:
    print(f"{result.num_caps} CAPs in {result.elapsed_seconds:.3f}s "
          f"(ε={params.evolving_rate}, η={params.distance_threshold}, "
          f"μ={params.max_attributes}, ψ={params.min_support})")
    _print_table(
        [
            {
                "support": cap.support,
                "attributes": ",".join(sorted(cap.attributes)),
                "sensors": ",".join(sorted(cap.sensor_ids)),
            }
            for cap in result.caps[: args.top]
        ]
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps([cap.to_document() for cap in result.caps], indent=2)
        )
        print(f"wrote {args.json}")


def _mine_async(dataset: SensorDataset, params: MiningParameters,
                args: argparse.Namespace) -> int:
    """Submit-and-poll mode: the job queue runs the mine, we watch it."""
    import time

    from .cache.keys import cache_key
    from .jobs import FAILED, SUCCEEDED, TERMINAL_STATES, JobQueue

    queue = JobQueue(width=1)
    miner = MiscelaMiner(params)
    outcome: dict = {}

    def runner(control):
        outcome["result"] = miner.mine(dataset, control=control)
        return cache_key(dataset.name, params)

    job, _created = queue.submit(
        dataset.name, params.to_document(), cache_key(dataset.name, params), runner
    )
    print(f"submitted {job.job_id} (dataset={dataset.name})")
    last_line = ""
    try:
        while True:
            snapshot = queue.get(job.job_id)
            assert snapshot is not None
            if args.watch:
                line = (f"[{snapshot.job_id}] {snapshot.state} "
                        f"{snapshot.progress:.0%} "
                        f"({snapshot.shards_done}/{snapshot.shards_total} shards)")
                if line != last_line:
                    print(line)
                    last_line = line
            if snapshot.state in TERMINAL_STATES:
                break
            time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        from .jobs import JobStateError

        try:
            queue.cancel(job.job_id)
            print(f"cancel requested for {job.job_id}; waiting for the checkpoint...")
        except JobStateError:
            pass  # finished between the last poll and the interrupt
        queue.shutdown(wait=True)
        print(f"{job.job_id} {queue.get(job.job_id).state}")
        return 130
    queue.shutdown(wait=True)
    final = queue.get(job.job_id)
    if final.state == FAILED:
        raise SystemExit(f"job {final.job_id} failed: "
                         f"{final.error.type}: {final.error.message}")
    if final.state != SUCCEEDED:
        raise SystemExit(f"job {final.job_id} ended {final.state}")
    _print_mine_result(outcome["result"], params, args)
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    params = _params_from_args(args, dataset.name)
    if args.asynchronous:
        return _mine_async(dataset, params, args)
    result = MiscelaMiner(params).mine(dataset)
    _print_mine_result(result, params, args)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .viz.report import CapReport

    dataset = _load_dataset(args)
    params = _params_from_args(args, dataset.name)
    result = MiscelaMiner(params).mine(dataset)
    path = CapReport(dataset, result, max_caps=args.max_caps).save_html(args.out)
    print(f"{result.num_caps} CAPs; wrote {path}")
    if args.markdown:
        from .analysis.reporting import result_to_markdown

        Path(args.markdown).write_text(result_to_markdown(dataset, result))
        print(f"wrote {args.markdown}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    params = _params_from_args(args, dataset.name)
    try:
        values = [float(v) if "." in v else int(v) for v in args.values.split(",")]
    except ValueError as exc:
        raise SystemExit(f"bad --values: {exc}")
    points = sweep(dataset, params, args.parameter, values)
    _print_table(
        [
            {args.parameter: p.value, "caps": p.num_caps,
             "mine_ms": f"{p.elapsed_seconds * 1000:.1f}"}
            for p in points
        ]
    )
    if args.svg:
        from .viz.charts import render_sweep_chart

        render_sweep_chart(points).save(args.svg)
        print(f"wrote {args.svg}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    params = _params_from_args(args, dataset.name)
    try:
        split = datetime.strptime(args.split, "%Y-%m-%d")
    except ValueError as exc:
        raise SystemExit(f"bad --split date: {exc}")
    comparison = compare_periods(dataset, split, params)
    summary = comparison.summary()
    _print_table([
        {"metric": k, "value": v}
        for k, v in summary.items()
        if k != "level_shifts"
    ])
    print("level shifts (after - before):")
    _print_table([
        {"attribute": a, "shift": f"{v:+.2f}"}
        for a, v in summary["level_shifts"].items()
    ])
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs.logging import configure_logging
    from .server.app import TestClient, create_app
    from .server.http import make_threaded_server, wsgi_adapter
    from .store.database import Database

    configure_logging(level=args.log_level, log_format=args.log_format)
    database = Database(args.store) if args.store else None
    app = create_app(
        database,
        with_logging=True,
        job_workers=args.job_workers,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        auto_compact_seconds=args.compact_seconds,
        stream_retention=(
            {"retention_seqs": args.stream_retention}
            if args.stream_retention
            else None
        ),
    )
    preload_name = args.preload_dataset or ("santander" if args.preload else None)
    if preload_name:
        dataset = generate(preload_name, seed=args.preload_seed)
        response = TestClient(app).upload_dataset(dataset)
        print(f"pre-loaded {preload_name}: {response.status}", flush=True)
    if app.state.durable_jobs and args.worker_poll > 0:
        # Multi-process worker mode: this process also claims (and, after
        # lease expiry, reclaims) jobs any process sharing the store enqueued.
        app.state.start_job_worker(interval=args.worker_poll)
    # Threaded server: status polls and map clicks stay responsive while a
    # mine runs (async on the job executor, or sync on a request thread).
    server = make_threaded_server("127.0.0.1", args.port, wsgi_adapter(app))
    port = server.server_address[1]
    print(f"Miscela-V API on http://127.0.0.1:{port} "
          f"(threaded, {args.job_workers} job workers; Ctrl-C to stop)", flush=True)
    print(f"  v1 API:  http://127.0.0.1:{port}/api/v1 "
          f"(schema at /api/v1/schema; unversioned routes are deprecated shims)",
          flush=True)
    if app.state.durable_jobs:
        worker = app.state.jobs.store.worker_id
        poll = f"worker poll {args.worker_poll}s" if args.worker_poll > 0 \
            else "worker disabled"
        print(f"  durable jobs: store={args.store} worker_id={worker} "
              f"lease={args.lease_seconds}s ({poll})", flush=True)
    # Machine-readable readiness line: the fault-injection harness (and any
    # supervisor) parses the actual port from it, which makes --port 0 usable.
    print(f"MISCELA_READY port={port}", flush=True)

    # Graceful SIGTERM: funnel into the KeyboardInterrupt path below, where
    # app.close() releases claimed jobs/shards (CAS back to queued) so a
    # surviving process takes them over immediately instead of waiting out
    # the lease.  kill -9 still exercises the lease-expiry path.
    def _sigterm(signum, frame):  # pragma: no cover - exercised via subprocess
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Wait for the workers: running jobs cancel at their next checkpoint,
        # and the snapshot below must not race a result write.
        app.close(wait=True)
        if args.store and app.state.database.engine != "wal":
            # WAL: every acknowledged write is already fsync'd — there is
            # no exit snapshot to take.
            app.state.database.save()
            print(f"saved store to {args.store}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from .jobs import DurableJobStore
    from .store.database import Database

    path = Path(args.store)
    if not path.exists() and not _wal_root(path).exists():
        raise SystemExit(f"no store at {path}")
    store = DurableJobStore(
        Database(path),
        lease_seconds=getattr(args, "lease_seconds", 30.0),
        worker_id="cli-recover",
    )
    if args.jobs_command == "recover":
        summary = store.recover()
        for field in ("requeued", "republished", "missing_results",
                      "dead_lettered", "queued"):
            print(f"{field}: {len(summary[field])}"
                  + (f" ({', '.join(summary[field])})" if summary[field] else ""))
        return 0
    if args.jobs_command == "redrive":
        revived = store.redrive(args.job_ids or None)
        if not revived:
            print("nothing to redrive (no matching dead letters)")
        for job_id in revived:
            print(f"redriven: {job_id}")
        return 0
    jobs = store.list(args.status)
    _print_table(
        [
            {
                "job_id": job.job_id,
                "state": job.state,
                "dataset": job.dataset,
                "progress": f"{job.progress:.0%}",
                "attempt": job.attempt,
                "worker": job.worker_id or "-",
            }
            for job in jobs
        ]
    )
    return 0


def _wal_root(path: Path) -> Path:
    """The WAL directory of a store path (``<path>.wal/``)."""
    return path.with_name(path.name + ".wal")


def cmd_store(args: argparse.Namespace) -> int:
    from .store import wal

    path = Path(args.store)
    root = _wal_root(path)

    if args.store_command == "compact":
        from .store.database import Database

        if not path.exists() and not root.exists():
            raise SystemExit(f"no store at {path}")
        database = Database(path)
        results = database.compact()
        for entry in results:
            marker = "compacted" if entry["compacted"] else "kept"
            print(f"{entry['collection']}: {entry['before_bytes']} -> "
                  f"{entry['after_bytes']} bytes ({marker})")
        if not results:
            print("nothing to compact (empty store)")
        return 0

    # verify: offline checksum walk, no locks taken, nothing mutated.
    torn = False
    checked = 0
    if root.is_dir():
        for log_path in sorted(root.glob("*.log")):
            report = wal.verify_log(log_path)
            checked += 1
            status = "TORN" if report["torn"] else "ok"
            print(f"{log_path.name}: {report['records']} records, "
                  f"{report['valid_bytes']}/{report['total_bytes']} bytes valid "
                  f"[{status}]")
            torn = torn or report["torn"]
    if path.is_file():
        import json as _json

        try:
            _json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, UnicodeDecodeError):
            print(f"{path.name}: legacy snapshot UNPARSEABLE")
            torn = True
        else:
            print(f"{path.name}: legacy snapshot ok")
        checked += 1
    if checked == 0:
        raise SystemExit(f"no store at {path}")
    return 1 if torn else 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .jobs import DurableJobStore
    from .obs.trace import render_waterfall, trace_tree
    from .store.database import Database

    path = Path(args.store)
    if not path.exists() and not _wal_root(path).exists():
        raise SystemExit(f"no store at {path}")
    store = DurableJobStore(Database(path), worker_id="cli-trace")
    try:
        tree = trace_tree(store, args.job_id)
    except KeyError:
        raise SystemExit(f"unknown job {args.job_id!r} in {path}")
    if args.as_json:
        print(json.dumps(tree, indent=2, sort_keys=True))
    else:
        print(render_waterfall(tree, width=max(20, args.width)))
    return 0


def _open_store_database(store: str):
    from .store.database import Database

    path = Path(store)
    if not path.exists() and not _wal_root(path).exists():
        raise SystemExit(f"no store at {path}")
    return Database(path)


def cmd_stream(args: argparse.Namespace) -> int:
    from .stream import first_live_seq, latest_seq, read_events

    database = _open_store_database(args.store)
    limit = max(1, args.limit)
    newest = latest_seq(database, args.dataset)
    cursor = args.cursor if args.cursor is not None else max(0, newest - limit)
    first_live = first_live_seq(database, args.dataset)
    if cursor < first_live - 1:
        # Offline equivalent of the API's 410: the prefix was folded into
        # the feed snapshot, so resume from the horizon instead of
        # printing a silently-incomplete tail.
        print(f"cursor {cursor} predates the retention horizon; events below "
              f"seq {first_live} are folded into the feed snapshot "
              f"(GET /api/v1/datasets/{args.dataset}/events/snapshot) — "
              f"resuming from {first_live - 1}")
        cursor = first_live - 1
    events = read_events(database, args.dataset, cursor=cursor, limit=limit)
    if args.as_json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    if not events:
        print(f"no events after cursor {cursor} "
              f"(feed for {args.dataset!r} is at seq {newest})")
        return 0
    _print_table(
        [
            {
                "seq": event["seq"],
                "epoch": event["epoch"],
                "type": event["type"],
                "sensors": ",".join(event["cap"].get("sensors", [])),
                "attributes": ",".join(event["cap"].get("attributes", [])),
                "support": event["cap"].get("support", "-"),
            }
            for event in events
        ]
    )
    print(f"cursor: {events[-1]['seq']} (pass --cursor to resume)")
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    database = _open_store_database(args.store)
    rows = database.collection("alerts").find({"dataset": args.dataset}, sort="seq")
    if args.rule:
        rows = [row for row in rows if row.get("rule_id") == args.rule]
    documents = [{k: v for k, v in row.items() if k != "_id"} for row in rows]
    if args.as_json:
        for document in documents:
            print(json.dumps(document, sort_keys=True))
        return 0
    if not documents:
        print(f"no alerts fired for {args.dataset!r}")
        return 0
    _print_table(
        [
            {
                "seq": doc["seq"],
                "epoch": doc["epoch"],
                "rule": doc["rule_id"],
                "severity": doc["severity"],
                "event": doc["event_type"],
                "sensors": f"{doc['num_sensors']} (>= {doc['min_sensors']})",
            }
            for doc in documents
        ]
    )
    return 0


def cmd_schema(args: argparse.Namespace) -> int:
    from .server.schema import main as schema_main

    argv: list[str] = []
    if args.out:
        argv += ["--out", args.out]
    if args.check:
        argv += ["--check", args.check]
    return schema_main(argv)


_COMMANDS = {
    "inventory": cmd_inventory,
    "generate": cmd_generate,
    "mine": cmd_mine,
    "report": cmd_report,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "serve": cmd_serve,
    "jobs": cmd_jobs,
    "store": cmd_store,
    "trace": cmd_trace,
    "stream": cmd_stream,
    "alerts": cmd_alerts,
    "schema": cmd_schema,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
