"""Stream retention: bounded feeds via crash-safe horizon compaction.

PR 9's live subsystem is correct but unbounded: ``cap_events``,
``observations``, and ``alerts`` grow forever, and every resident-miner
claim replays the whole observation log.  This module folds retired
history behind a per-dataset **retention horizon**:

* **Feed compaction** — events with ``seq`` below the horizon are folded
  into one durable :data:`~repro.stream.ingest.FEED_SNAPSHOTS` document
  carrying the CAP state at the fold point and ``first_live_seq``, the
  oldest seq still served live.  The fold is a three-step exclusive
  section — insert snapshot, trim events (and the alerts they fired),
  bump the completed-horizon marker on ``stream_state`` — ordered so a
  crash at *any* point leaves a state the next sweep converges from:
  the snapshot's ``first_live_seq`` is authoritative the instant it is
  written, so readers never see a silently-empty trimmed range.
* **Observation windowing** — the resident miner checkpoints its
  incremental state (:meth:`StreamingMiner.export_state`) into
  ``stream_state.watermark`` with every epoch commit; the sweep may then
  drop observation batches up to the watermark epoch and record how far
  it got in ``stream_state.compacted_epoch``.  A later claim adopts the
  watermark and replays only epochs past it — byte-identical mining
  without the trimmed prefix (proven by the retention test matrix).

Invariants (checked by tests, documented in DESIGN.md):

* ``1 <= horizon_seq <= first_live_seq <= latest_seq + 1`` — the
  snapshot may run ahead of the completed trim, never behind;
* every event with ``seq >= first_live_seq`` is live and byte-identical
  to what an untrimmed feed would serve;
* ``compacted_epoch <= watermark.epoch <= mined_epoch`` — only epochs
  the checkpoint already covers are ever dropped.

``REPRO_STREAM_FAULT`` names a deterministic crash point
(:data:`FAULT_POINTS`), mirroring ``REPRO_STORE_FAULT`` one layer up:
``point[@dataset][:nth]`` hard-exits the process with
:data:`FAULT_EXIT_CODE` at the nth matching hit.
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping

from ..obs.metrics import get_registry
from .alerts import prune_alerts
from .ingest import (
    CAP_EVENTS,
    FEED_SNAPSHOTS,
    OBSERVATIONS,
    STREAM_CONFIG,
    STREAM_STATE,
)

__all__ = [
    "FAULT_ENV",
    "FAULT_EXIT_CODE",
    "FAULT_POINTS",
    "RetentionError",
    "compact_feed",
    "compact_observations",
    "feed_snapshot",
    "first_live_seq",
    "get_retention",
    "maybe_fault",
    "set_retention",
    "sweep_retention",
]

#: Crash-point env var: ``point[@dataset][:nth]``.
FAULT_ENV = "REPRO_STREAM_FAULT"

#: The named points of the compaction protocol a test can crash at.
FAULT_POINTS = (
    "after-snapshot-insert",   # snapshot durable, events not yet trimmed
    "after-event-trim",        # events gone, horizon marker not yet bumped
    "after-observation-trim",  # batches gone, compacted_epoch not yet bumped
)

#: Distinct from the store's 71 and the job registry's 70, so a test can
#: tell *which* layer's crash point fired.
FAULT_EXIT_CODE = 72

_fault_hits: dict[str, int] = {}


def _fault_spec() -> tuple[str, str | None, int] | None:
    """Parse ``REPRO_STREAM_FAULT`` into (point, dataset, nth)."""
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return None
    point, _, nth_part = raw.partition(":")
    point, _, scope = point.partition("@")
    try:
        nth = int(nth_part) if nth_part else 1
    except ValueError:
        nth = 1
    return point, (scope or None), nth


def fault_armed(point: str, dataset: str | None = None) -> bool:
    """True when this call is the configured crash occurrence."""
    spec = _fault_spec()
    if spec is None:
        return False
    want_point, want_scope, nth = spec
    if want_point != point:
        return False
    if want_scope is not None and dataset is not None and want_scope != dataset:
        return False
    key = f"{want_point}@{want_scope or '*'}"
    _fault_hits[key] = _fault_hits.get(key, 0) + 1
    return _fault_hits[key] == nth


def maybe_fault(point: str, dataset: str | None = None) -> None:
    """Hard-exit at an armed crash point — a ``kill -9`` landing here."""
    if fault_armed(point, dataset):
        os._exit(FAULT_EXIT_CODE)


_METRICS = get_registry()
_COMPACTIONS = _METRICS.counter(
    "repro_stream_compactions_total",
    "Stream retention folds completed, per dataset and target "
    "(feed = cap_events/alerts, observations = replay window).",
    labels=("dataset", "target"),
)


class RetentionError(ValueError):
    """A retention configuration that fails validation (HTTP 400)."""


#: Both knobs default to off; retention only runs for datasets where at
#: least one is set (per-dataset config or the server-wide default).
DEFAULT_RETENTION: dict[str, Any] = {
    "retention_seqs": None,
    "retention_seconds": None,
}


def _validate_retention(payload: Mapping[str, Any]) -> dict[str, Any]:
    if not isinstance(payload, Mapping):
        raise RetentionError("retention config must be a JSON object")
    unknown = set(payload) - set(DEFAULT_RETENTION)
    if unknown:
        raise RetentionError(
            f"unknown retention keys: {sorted(unknown)} "
            f"(expected retention_seqs and/or retention_seconds)"
        )
    changes: dict[str, Any] = {}
    if "retention_seqs" in payload:
        seqs = payload["retention_seqs"]
        if seqs is not None:
            if not isinstance(seqs, int) or isinstance(seqs, bool) or seqs < 1:
                raise RetentionError(
                    f"retention_seqs must be a positive integer or null, got {seqs!r}"
                )
        changes["retention_seqs"] = seqs
    if "retention_seconds" in payload:
        seconds = payload["retention_seconds"]
        if seconds is not None:
            if (
                not isinstance(seconds, (int, float))
                or isinstance(seconds, bool)
                or not seconds > 0
            ):
                raise RetentionError(
                    f"retention_seconds must be a positive number or null, "
                    f"got {seconds!r}"
                )
            seconds = float(seconds)
        changes["retention_seconds"] = seconds
    return changes


def get_retention(
    database: Any, name: str, default: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The effective retention config: per-dataset overrides over the
    server default over off-by-default."""
    config = dict(DEFAULT_RETENTION)
    for key, value in (default or {}).items():
        if key in config:
            config[key] = value
    document = database.collection(STREAM_CONFIG).find_one({"name": name})
    if document is not None:
        for key in DEFAULT_RETENTION:
            if key in document:
                config[key] = document[key]
    return config


def set_retention(
    database: Any, name: str, payload: Mapping[str, Any], *, clock=time.time
) -> dict[str, Any]:
    """PATCH semantics: validate and merge the provided keys only.

    Returns the dataset's stored (not default-merged) config document.
    Raises :class:`RetentionError` on any invalid key or value.
    """
    changes = _validate_retention(payload)
    collection = database.collection(STREAM_CONFIG)
    with database.exclusive():
        document = collection.find_one({"name": name})
        if document is None:
            document = {"name": name, **DEFAULT_RETENTION}
            document.update(changes)
            document["updated_at"] = clock()
            collection.insert_one(document)
        else:
            changes["updated_at"] = clock()
            collection.update_one({"name": name}, changes)
            document.update(changes)
    return {k: v for k, v in document.items() if k != "_id"}


def retention_enabled(config: Mapping[str, Any]) -> bool:
    return bool(config.get("retention_seqs") or config.get("retention_seconds"))


# -- horizon reads ---------------------------------------------------------------


def feed_snapshot(database: Any, name: str) -> dict[str, Any] | None:
    """The dataset's feed snapshot document (None before any fold)."""
    document = database.collection(FEED_SNAPSHOTS).find_one({"dataset": name})
    if document is None:
        return None
    return {k: v for k, v in document.items() if k != "_id"}


def first_live_seq(database: Any, name: str) -> int:
    """The oldest event seq still served live (1 when nothing retired).

    The *snapshot's* ``first_live_seq`` is authoritative: it is written
    before the trim, so a cursor below it answers ``410 cursor_expired``
    from the moment the fold is durable — never a silently-empty page
    from a half-trimmed feed.
    """
    snapshot = database.collection(FEED_SNAPSHOTS).find_one({"dataset": name})
    if snapshot is None:
        return 1
    return int(snapshot.get("first_live_seq", 1))


# -- compaction ------------------------------------------------------------------


def _feed_horizon(
    database: Any, name: str, config: Mapping[str, Any], latest: int, now: float
) -> int:
    """The seq the retention config retires everything below.

    ``retention_seqs`` keeps the newest N events; ``retention_seconds``
    keeps events created within the window.  When both are set the
    *tighter* (higher) horizon wins.
    """
    horizon = 1
    seqs = config.get("retention_seqs")
    if seqs:
        horizon = max(horizon, latest - int(seqs) + 1)
    seconds = config.get("retention_seconds")
    if seconds:
        cutoff = now - float(seconds)
        aged = 1
        for row in database.collection(CAP_EVENTS).find(
            {"dataset": name}, sort="seq"
        ):
            if float(row.get("created_at", now)) >= cutoff:
                break
            aged = int(row.get("seq", 0)) + 1
        horizon = max(horizon, aged)
    return min(horizon, latest + 1)


def compact_feed(
    database: Any,
    name: str,
    config: Mapping[str, Any],
    *,
    clock=time.time,
) -> dict[str, Any]:
    """Fold ``cap_events`` (and their alerts) behind the retention horizon.

    The crash-safe order inside one exclusive (fsynced) section:

    1. upsert the snapshot carrying the new ``first_live_seq`` plus the
       CAP state at ``mined_epoch`` — readers adopt the horizon *now*;
    2. trim events and alerts with ``seq`` below it;
    3. bump ``stream_state.horizon_seq``, the completed-trim marker.

    A crash after step 1 leaves untrimmed-but-retired events (harmless,
    never served, re-trimmed next sweep); after step 2, a stale marker
    the bump-only rerun converges.  Both re-runs are idempotent because
    the horizon is recomputed from the same monotone inputs.
    """
    now = clock()
    with database.exclusive():
        state = database.collection(STREAM_STATE).find_one({"name": name})
        if state is None:
            return {"dataset": name, "target": "feed", "compacted": False}
        latest = int(state.get("next_seq", 1)) - 1
        current = first_live_seq(database, name)
        horizon = _feed_horizon(database, name, config, latest, now)
        completed = int(state.get("horizon_seq", 1))
        if horizon <= current and completed >= current:
            return {
                "dataset": name,
                "target": "feed",
                "compacted": False,
                "first_live_seq": current,
            }
        target = max(horizon, current)
        snapshot = {
            "dataset": name,
            "first_live_seq": target,
            "epoch": int(state.get("mined_epoch", 0)),
            "caps": state.get("caps", []),
            "latest_seq": latest,
            "created_at": now,
        }
        snapshots = database.collection(FEED_SNAPSHOTS)
        if snapshots.replace_one({"dataset": name}, snapshot) is None:
            snapshots.insert_one(snapshot)
        maybe_fault("after-snapshot-insert", name)
        trimmed = database.collection(CAP_EVENTS).delete_many(
            {"seq": {"$lt": target}, "dataset": name}
        )
        pruned = prune_alerts(database, name, target)
        maybe_fault("after-event-trim", name)
        database.collection(STREAM_STATE).update_one(
            {"name": name}, {"horizon_seq": target}
        )
    _COMPACTIONS.inc(name, "feed")
    return {
        "dataset": name,
        "target": "feed",
        "compacted": True,
        "first_live_seq": target,
        "trimmed_events": trimmed,
        "trimmed_alerts": pruned,
    }


def compact_observations(
    database: Any,
    name: str,
    config: Mapping[str, Any],
    *,
    clock=time.time,
) -> dict[str, Any]:
    """Drop observation batches the miner watermark already covers.

    Only epochs at or below ``stream_state.watermark.epoch`` are
    droppable — the checkpoint reconstructs the miner without them; with
    ``retention_seconds`` set, additionally only batches older than the
    window.  The trim precedes the ``compacted_epoch`` bump so a crash
    between them is safe: session rebuild keys off the watermark, never
    off ``compacted_epoch``.
    """
    now = clock()
    with database.exclusive():
        state = database.collection(STREAM_STATE).find_one({"name": name})
        if state is None or not state.get("watermark"):
            return {"dataset": name, "target": "observations", "compacted": False}
        target = int(state["watermark"].get("epoch", 0))
        seconds = config.get("retention_seconds")
        if seconds:
            cutoff = now - float(seconds)
            recent = database.collection(OBSERVATIONS).find(
                {"dataset": name, "epoch": {"$lte": target}}, sort="epoch"
            )
            aged = 0
            for row in recent:
                if float(row.get("appended_at", now)) >= cutoff:
                    break
                aged = int(row.get("epoch", 0))
            target = min(target, aged)
        compacted = int(state.get("compacted_epoch", 0))
        if target <= compacted:
            return {
                "dataset": name,
                "target": "observations",
                "compacted": False,
                "compacted_epoch": compacted,
            }
        trimmed = database.collection(OBSERVATIONS).delete_many(
            {"dataset": name, "epoch": {"$lte": target}}
        )
        maybe_fault("after-observation-trim", name)
        database.collection(STREAM_STATE).update_one(
            {"name": name}, {"compacted_epoch": target}
        )
    _COMPACTIONS.inc(name, "observations")
    return {
        "dataset": name,
        "target": "observations",
        "compacted": True,
        "compacted_epoch": target,
        "trimmed_batches": trimmed,
    }


def sweep_retention(
    database: Any,
    *,
    default: Mapping[str, Any] | None = None,
    clock=time.time,
) -> list[dict[str, Any]]:
    """One retention pass over every dataset with a live stream.

    Datasets without any retention knob set (per-dataset or server-wide
    default) are skipped — retention is strictly opt-in.
    """
    results: list[dict[str, Any]] = []
    for state in database.collection(STREAM_STATE).find():
        name = str(state.get("name", ""))
        if not name:
            continue
        config = get_retention(database, name, default=default)
        if not retention_enabled(config):
            continue
        results.append(compact_feed(database, name, config, clock=clock))
        results.append(compact_observations(database, name, config, clock=clock))
    return results
