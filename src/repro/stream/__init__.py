"""Live ingestion subsystem: observation append, change feed, alerts.

The paper's smart-city framing is a *monitoring* workload — sensors keep
reporting and co-actions appear, strengthen, and retire — but until PR 9
every surface of this repo was batch: upload a dataset, mine it once.
This package turns the incremental engine (:mod:`repro.core.streaming`)
into a served subsystem:

* :mod:`~repro.stream.ingest` — validated, WAL-durable observation batch
  append; each accepted batch bumps the dataset's **stream epoch** (a
  monotone append counter, distinct from the destructive re-upload
  *generation*).
* :mod:`~repro.stream.runner` — the working state of the resident
  streaming-miner job (``mode=streaming``, job kind ``stream``): replay
  the observation log to the persisted high-water mark, drain new
  epochs through :meth:`StreamingMiner.extend`, and re-mine only when an
  η-graph component was actually touched.
* :mod:`~repro.stream.feed` — per-epoch CAP diffs persisted as a
  monotone ``cap_events`` sequence (``new`` / ``extended`` / ``retired``),
  consumed through cursor long-poll and SSE endpoints.
* :mod:`~repro.stream.alerts` — threshold rules over CAP events with
  multi-level severity, fired exactly once per matching event.

See DESIGN.md "Live ingestion & alerting" for the epoch model, the feed
cursor semantics, and the alert rule grammar.
"""

from .alerts import (
    RuleError,
    evaluate_rules,
    match_level,
    prune_alerts,
    public_rule,
    validate_rule,
)
from .feed import (
    EVENT_EXTENDED,
    EVENT_NEW,
    EVENT_RETIRED,
    EVENT_TYPES,
    build_events,
    cap_identity,
    diff_caps,
    event_id,
    latest_seq,
    public_event,
    read_events,
    render_sse,
    render_sse_bootstrap,
)
from .ingest import (
    ALERT_RULES,
    ALERTS,
    CAP_EVENTS,
    FEED_SNAPSHOTS,
    OBSERVATIONS,
    PURGED_COLLECTIONS,
    STREAM_CONFIG,
    STREAM_EPOCHS,
    STREAM_STATE,
    BatchError,
    append_batch,
    batch_id,
    current_epoch,
    update_lag,
)
from .retention import (
    RetentionError,
    compact_feed,
    compact_observations,
    feed_snapshot,
    first_live_seq,
    get_retention,
    set_retention,
    sweep_retention,
)
from .runner import StreamSession, load_batch, stream_state

__all__ = [
    "ALERT_RULES",
    "ALERTS",
    "CAP_EVENTS",
    "EVENT_EXTENDED",
    "EVENT_NEW",
    "EVENT_RETIRED",
    "EVENT_TYPES",
    "FEED_SNAPSHOTS",
    "OBSERVATIONS",
    "PURGED_COLLECTIONS",
    "STREAM_CONFIG",
    "STREAM_EPOCHS",
    "STREAM_STATE",
    "BatchError",
    "RetentionError",
    "RuleError",
    "StreamSession",
    "append_batch",
    "batch_id",
    "build_events",
    "cap_identity",
    "compact_feed",
    "compact_observations",
    "current_epoch",
    "diff_caps",
    "evaluate_rules",
    "event_id",
    "feed_snapshot",
    "first_live_seq",
    "get_retention",
    "latest_seq",
    "load_batch",
    "match_level",
    "prune_alerts",
    "public_event",
    "public_rule",
    "read_events",
    "render_sse",
    "render_sse_bootstrap",
    "set_retention",
    "stream_state",
    "sweep_retention",
    "update_lag",
    "validate_rule",
]
