"""CAP change feed: per-epoch diffs persisted as a monotone event sequence.

Each re-mine diffs the new CAP list against the previous epoch's snapshot
and emits ``cap_events``:

* ``new`` — a CAP identity absent from the previous epoch;
* ``extended`` — same identity, but its support grew (or its co-evolving
  windows changed) with the appended observations;
* ``retired`` — an identity from the previous epoch no longer mined.

A CAP's *identity* is ``(sensors, attributes, delays)`` — the pattern's
shape, stable across appends — while ``support``/``evolving_indices`` are
its evolution.  Events carry:

* ``seq`` — a per-dataset monotone cursor (1-based, no gaps), the resume
  token of ``GET .../events?cursor=``: a client that stored ``seq`` N
  re-reads everything after N, across server restarts, because events are
  ordinary WAL documents;
* ``event_id`` — a *deterministic* hash of (cache key, epoch, type,
  identity).  Replaying an epoch after a crash regenerates byte-identical
  ids, and the runner inserts events ``insert-if-missing`` by id — the
  feed can never hold duplicates, no matter where a worker died;
* ``epoch`` + ``key`` — which append produced it, under which parameters
  (the result cache key), per the "addressed by cache key + epoch"
  contract.

Ordering within one epoch is deterministic too (new, then extended, then
retired, each sorted by identity), so ``seq`` assignment is reproducible
on replay.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Mapping, Sequence

from .ingest import CAP_EVENTS, STREAM_STATE

__all__ = [
    "EVENT_NEW",
    "EVENT_EXTENDED",
    "EVENT_RETIRED",
    "EVENT_TYPES",
    "build_events",
    "cap_identity",
    "diff_caps",
    "event_id",
    "latest_seq",
    "public_event",
    "read_events",
    "render_sse",
    "render_sse_bootstrap",
]

EVENT_NEW = "new"
EVENT_EXTENDED = "extended"
EVENT_RETIRED = "retired"
EVENT_TYPES = (EVENT_NEW, EVENT_EXTENDED, EVENT_RETIRED)


def cap_identity(cap: Mapping[str, Any]) -> tuple:
    """The append-stable identity of a CAP document: (sensors, attributes, delays)."""
    return (
        tuple(sorted(str(s) for s in cap.get("sensors", ()))),
        tuple(sorted(str(a) for a in cap.get("attributes", ()))),
        tuple((str(k), int(v)) for k, v in sorted(cap.get("delays", {}).items())),
    )


def diff_caps(
    previous: Sequence[Mapping[str, Any]],
    current: Sequence[Mapping[str, Any]],
) -> list[tuple[str, dict[str, Any]]]:
    """Ordered ``(type, cap document)`` deltas between two epochs' CAP lists.

    Deterministic: new first, then extended, then retired, each group
    sorted by identity — replaying the same epoch yields the same deltas
    in the same order, which makes ``seq`` assignment reproducible.
    """
    before = {cap_identity(cap): dict(cap) for cap in previous}
    after = {cap_identity(cap): dict(cap) for cap in current}
    new = sorted(set(after) - set(before))
    retired = sorted(set(before) - set(after))
    extended = sorted(
        identity
        for identity in set(after) & set(before)
        if int(after[identity].get("support", 0)) != int(before[identity].get("support", 0))
        or list(after[identity].get("evolving_indices", ()))
        != list(before[identity].get("evolving_indices", ()))
    )
    deltas: list[tuple[str, dict[str, Any]]] = []
    deltas += [(EVENT_NEW, after[identity]) for identity in new]
    deltas += [(EVENT_EXTENDED, after[identity]) for identity in extended]
    deltas += [(EVENT_RETIRED, before[identity]) for identity in retired]
    return deltas


def event_id(key: str, epoch: int, event_type: str, cap: Mapping[str, Any]) -> str:
    """Deterministic event address: hash of (cache key, epoch, type, identity)."""
    material = json.dumps(
        [key, int(epoch), event_type, cap_identity(cap)], sort_keys=True
    )
    return "ev-" + hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def build_events(
    dataset: str,
    key: str,
    epoch: int,
    deltas: Sequence[tuple[str, Mapping[str, Any]]],
    first_seq: int,
    *,
    clock=time.time,
) -> list[dict[str, Any]]:
    """Materialise one epoch's deltas as ``cap_events`` documents."""
    now = clock()
    return [
        {
            "event_id": event_id(key, epoch, event_type, cap),
            "dataset": dataset,
            "key": key,
            "epoch": int(epoch),
            "seq": first_seq + offset,
            "type": event_type,
            "cap": dict(cap),
            "created_at": now,
        }
        for offset, (event_type, cap) in enumerate(deltas)
    ]


def public_event(document: Mapping[str, Any]) -> dict[str, Any]:
    """An event document without store bookkeeping (``_id``)."""
    return {k: v for k, v in document.items() if k != "_id"}


def read_events(
    database: Any, dataset: str, cursor: int = 0, limit: int = 100
) -> list[dict[str, Any]]:
    """Events of one dataset with ``seq > cursor``, ascending, capped.

    A range query, not a scan: the ``seq`` term leads so the sorted
    index (see ``ServerState``'s index setup) narrows the candidates to
    the tail past the cursor before the predicate runs — a poll parked
    at cursor N touches only events it has not seen, however long the
    feed has grown.  Stores without the index still answer correctly
    through the predicate path, just without the narrowing.
    """
    rows = database.collection(CAP_EVENTS).find(
        {"seq": {"$gt": int(cursor)}, "dataset": dataset}, sort="seq", limit=limit
    )
    return [public_event(row) for row in rows]


def latest_seq(database: Any, dataset: str) -> int:
    """The newest assigned cursor position (0 when the feed is empty).

    Reuses the ``stream_state.next_seq`` high-water mark — maintained
    atomically with every event commit — instead of sorting the event
    collection for one max.  This also survives retention: a fully
    folded feed keeps answering its true latest seq even when the
    newest event documents have been trimmed.  Pre-first-claim (no
    state yet) the feed is necessarily empty, so the fallback scan only
    ever sees a handful of documents.
    """
    state = database.collection(STREAM_STATE).find_one({"name": dataset})
    if state is not None:
        return int(state.get("next_seq", 1)) - 1
    rows = database.collection(CAP_EVENTS).find(
        {"dataset": dataset}, sort="seq", descending=True, limit=1
    )
    return int(rows[0].get("seq", 0)) if rows else 0


def render_sse(events: Sequence[Mapping[str, Any]]) -> str:
    """Render events in ``text/event-stream`` framing.

    Each event becomes an ``id:`` line (its ``seq`` — what a reconnecting
    client passes back as ``cursor``), an ``event:`` line (its type), and
    one JSON ``data:`` line.  The server buffers responses, so the SSE
    endpoint serves *bounded* streams: the client reconnects with its last
    id to continue — exactly the SSE auto-reconnect contract.
    """
    chunks: list[str] = []
    for event in events:
        chunks.append(f"id: {int(event['seq'])}")
        chunks.append(f"event: {event['type']}")
        chunks.append("data: " + json.dumps(public_event(event), sort_keys=True))
        chunks.append("")
    return "\n".join(chunks) + ("\n" if chunks else "")


def render_sse_bootstrap(snapshot: Mapping[str, Any]) -> str:
    """The feed-snapshot frame an expired SSE reconnect bootstraps from.

    When a client reconnects with a ``Last-Event-ID`` behind the
    retention horizon, the trimmed prefix cannot be replayed; instead
    the stream opens with one ``event: snapshot`` frame carrying the
    folded CAP state, whose ``id:`` is ``first_live_seq - 1`` — exactly
    the cursor from which the live tail then continues, so the standard
    reconnect contract keeps working without any client-side special
    casing beyond understanding the frame type.
    """
    first_live = int(snapshot.get("first_live_seq", 1))
    return (
        f"id: {first_live - 1}\n"
        "event: snapshot\n"
        "data: " + json.dumps(dict(snapshot), sort_keys=True) + "\n\n"
    )
