"""Working state of the resident streaming-miner job.

The ``stream`` job kind is *resident but polite*: a claimed worker drains
every appended epoch, then releases its claim with a short retry gate and
returns — the polling :class:`~repro.jobs.worker.JobWorker` re-claims it
moments later (or another process does).  Liveness therefore never
depends on one thread surviving: a ``kill -9`` mid-drain just leaves a
lapsed lease, and whoever reclaims the job rebuilds this session.

Recovery contract (the kill -9 test's ground truth):

* the **high-water mark** is ``stream_state.mined_epoch`` — advanced
  atomically *with* that epoch's events and CAP snapshot in one exclusive
  (fsynced) section, so it can never run ahead of the feed;
* a new session adopts the persisted **watermark** — the miner's
  incremental state checkpointed with every commit
  (:meth:`StreamingMiner.export_state`) — then replays only the
  observation log *past* it through :meth:`StreamingMiner.extend`
  (cheap — no mining) and resumes at ``mined_epoch + 1``.  Windowed
  replay is what lets the retention sweep
  (:mod:`repro.stream.retention`) drop batches at or below the
  watermark epoch without ever breaking a rebuild;
* re-processing an epoch whose events were written but whose state
  advance was lost is harmless: deltas and event ids are deterministic,
  and events/alerts are inserted if-missing — no lost and no duplicated
  ``cap_events``.

Re-mining is component-pruned: a batch that adds evolving timestamps to
no sensor leaves every η-graph component's CAP list provably unchanged
(:meth:`StreamingMiner.affected_components`), so the session skips the
search entirely and diffs against an unchanged snapshot.
"""

from __future__ import annotations

import time
from datetime import datetime
from typing import Any, Callable

import numpy as np

from ..core.parameters import MiningParameters
from ..core.streaming import StreamingMiner
from ..core.types import SensorDataset
from .alerts import evaluate_rules, public_rule, record_fired
from .feed import build_events, diff_caps
from .ingest import (
    ALERT_RULES,
    ALERTS,
    CAP_EVENTS,
    OBSERVATIONS,
    STREAM_STATE,
    batch_id,
    current_epoch,
    update_lag,
)

__all__ = ["StreamSession", "load_batch", "stream_state"]


def stream_state(database: Any, name: str) -> dict[str, Any] | None:
    """The persisted miner high-water mark document (None pre-first-claim)."""
    return database.collection(STREAM_STATE).find_one({"name": name})


def load_batch(
    database: Any, name: str, epoch: int
) -> tuple[list[datetime], dict[str, np.ndarray]]:
    """One observation batch back in :meth:`StreamingMiner.extend` form."""
    document = database.collection(OBSERVATIONS).find_one(
        {"batch_id": batch_id(name, epoch)}
    )
    if document is None:
        raise LookupError(
            f"observation batch {batch_id(name, epoch)} is missing from the log"
        )
    timeline = [datetime.fromisoformat(t) for t in document["timeline"]]
    series = {
        sid: np.asarray(
            [np.nan if value is None else float(value) for value in row],
            dtype=np.float64,
        )
        for sid, row in document["series"].items()
    }
    return timeline, series


class StreamSession:
    """One claim's working state: a miner replayed to the high-water mark.

    Parameters
    ----------
    database:
        The (shared) document store.
    dataset:
        The base dataset, as uploaded.
    params:
        Mining parameters (``segmentation`` must be ``"none"``).
    key:
        The result cache key of (dataset, params) — the feed's address.
    checkpoint:
        Optional cancellation hook, called between replayed epochs.
    """

    def __init__(
        self,
        database: Any,
        dataset: SensorDataset,
        params: MiningParameters,
        key: str,
        *,
        checkpoint: Callable[[], None] | None = None,
        clock=time.time,
    ) -> None:
        self.database = database
        self.dataset = dataset
        self.params = params
        self.key = key
        self.clock = clock
        self.miner = StreamingMiner(params, dataset)
        state = stream_state(database, dataset.name)
        if state is None:
            # First claim ever: the epoch-0 baseline is a mine of the base
            # dataset.  No events — the feed describes *changes*, and the
            # base result is what the batch endpoints already serve.
            baseline = [cap.to_document() for cap in self.miner.mine().caps]
            state = {
                "name": dataset.name,
                "key": key,
                "mined_epoch": 0,
                "caps": baseline,
                "next_seq": 1,
                "last_timestamp": dataset.timeline[-1].isoformat(),
                "updated_at": clock(),
                "watermark": {"epoch": 0, **self.miner.export_state()},
            }
            with database.exclusive():
                existing = stream_state(database, dataset.name)
                if existing is None:
                    database.collection(STREAM_STATE).insert_one(state)
                else:  # lost the init race to a peer; adopt its baseline
                    state = existing
        self.caps: list[dict[str, Any]] = [dict(cap) for cap in state["caps"]]
        self.mined_epoch = int(state["mined_epoch"])
        self.next_seq = int(state["next_seq"])
        # Windowed replay: adopt the persisted miner checkpoint, then
        # replay only the log past it to rebuild the evolving sets
        # (extend only — the CAP snapshot above replaces re-mining it).
        # The retention sweep may have dropped batches at or below the
        # watermark epoch; the checkpoint makes them unnecessary.
        watermark = state.get("watermark")
        replay_from = 1
        if watermark and int(watermark.get("epoch", 0)) <= self.mined_epoch:
            # Never adopt a checkpoint *ahead* of the high-water mark (a
            # hand-rolled-back or corrupted state document): re-mining
            # epochs the checkpoint already covers would break the grid.
            self.miner.adopt_state(watermark)
            replay_from = int(watermark.get("epoch", 0)) + 1
        self.replayed_epochs = 0
        for epoch in range(replay_from, self.mined_epoch + 1):
            if checkpoint is not None:
                checkpoint()
            timeline, series = load_batch(database, dataset.name, epoch)
            self.miner.extend(timeline, series)
            self.replayed_epochs += 1

    def pending_epochs(self) -> range:
        """Appended-but-unmined epochs, oldest first."""
        appended, _ = current_epoch(self.database, self.dataset.name)
        return range(self.mined_epoch + 1, appended + 1)

    def process_epoch(
        self,
        epoch: int,
        *,
        on_alert: Callable[[dict[str, Any]], None] | None = None,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Absorb one epoch: extend, (maybe) re-mine, diff, persist, alert.

        Returns ``(events, alerts fired now)``.  Everything durable —
        events, alerts, and the high-water-mark advance — lands in one
        exclusive section; ``on_alert`` runs only for alerts this call
        actually inserted (crash-replay fires nothing twice).
        """
        if epoch != self.mined_epoch + 1:
            raise ValueError(
                f"epoch {epoch} out of order; next unmined is {self.mined_epoch + 1}"
            )
        timeline, series = load_batch(self.database, self.dataset.name, epoch)
        self.miner.extend(timeline, series)
        if self.miner.affected_components():
            caps_after = [cap.to_document() for cap in self.miner.mine().caps]
        else:
            caps_after = self.caps
        deltas = diff_caps(self.caps, caps_after)
        events = build_events(
            self.dataset.name, self.key, epoch, deltas, self.next_seq, clock=self.clock
        )
        rules = [
            public_rule(rule)
            for rule in self.database.collection(ALERT_RULES).find(
                {"dataset": self.dataset.name}
            )
        ]
        alerts = evaluate_rules(rules, events)
        fired: list[dict[str, Any]] = []
        now = self.clock()
        with self.database.exclusive():
            events_collection = self.database.collection(CAP_EVENTS)
            for event in events:
                if events_collection.find_one({"event_id": event["event_id"]}) is None:
                    events_collection.insert_one(event)
            alerts_collection = self.database.collection(ALERTS)
            for alert in alerts:
                if alerts_collection.find_one({"alert_id": alert["alert_id"]}) is None:
                    alerts_collection.insert_one({**alert, "fired_at": now})
                    fired.append(alert)
            self.database.collection(STREAM_STATE).update_one(
                {"name": self.dataset.name},
                {
                    "mined_epoch": epoch,
                    "caps": caps_after,
                    "next_seq": self.next_seq + len(events),
                    "last_timestamp": timeline[-1].isoformat(),
                    "updated_at": now,
                    # The miner checkpoint rides the same atomic commit,
                    # so the watermark can never run ahead of (or lag) the
                    # high-water mark — the retention sweep may drop every
                    # batch at or below it the moment this section lands.
                    "watermark": {"epoch": epoch, **self.miner.export_state()},
                },
            )
        self.caps = caps_after
        self.mined_epoch = epoch
        self.next_seq += len(events)
        for alert in fired:
            record_fired(alert["rule_id"])
            if on_alert is not None:
                on_alert(alert)
        update_lag(self.database, self.dataset)
        return events, fired
