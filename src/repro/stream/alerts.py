"""Threshold alert engine: predicate rules over CAP events.

Modelled on the gateway-RTU shape (SNIPPETS.md Snippet 1): a rule holds an
ordered ladder of severity levels, an event is graded against the ladder,
and the *highest* matching level wins.  Here the graded quantity is the
size of the co-acting sensor set — "alert when ≥ k sensors co-evolve".

Rule grammar (stored as ``alert_rules`` documents, validated on POST)::

    {
      "rule_id":     "heatwave",             # [A-Za-z0-9_.-]+, unique per dataset
      "name":        "Heatwave watch",        # optional display name
      "event_types": ["new", "extended"],    # optional; default: all three
      "attribute":   "temperature",          # optional; CAP must cover it
      "levels": [                             # ≥ 1, distinct min_sensors
        {"min_sensors": 2, "severity": "info"},
        {"min_sensors": 3, "severity": "warning"},
        {"min_sensors": 4, "severity": "critical"}
      ]
    }

Evaluation happens in the resident miner as each epoch's events are
persisted: a matching (rule, event) pair fires **exactly once**, ever —
the alert's id is ``{rule_id}:{event_id}``, inserted if-missing in the
same exclusive section as the events themselves, so a crash-replayed
epoch regenerates the same ids and re-fires nothing.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

from ..obs.metrics import get_registry
from .feed import EVENT_TYPES
from .ingest import ALERTS

__all__ = [
    "RuleError",
    "evaluate_rules",
    "match_level",
    "prune_alerts",
    "public_rule",
    "validate_rule",
]

_METRICS = get_registry()
_ALERTS_FIRED = _METRICS.counter(
    "repro_alerts_fired_total",
    "Alerts fired by the stream alert engine, per rule.",
    labels=("rule",),
)

_RULE_ID = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class RuleError(ValueError):
    """An alert rule definition that fails validation (HTTP 400)."""


def validate_rule(dataset: str, payload: Any) -> dict[str, Any]:
    """Normalise one rule payload into its stored document form.

    Levels are sorted ascending by ``min_sensors`` so :func:`match_level`
    can take the last match as the highest severity.
    """
    if not isinstance(payload, Mapping):
        raise RuleError("rule body must be a JSON object")
    rule_id = payload.get("rule_id")
    if not isinstance(rule_id, str) or not _RULE_ID.match(rule_id):
        raise RuleError("'rule_id' must match [A-Za-z0-9_.-]{1,64}")
    event_types = payload.get("event_types", list(EVENT_TYPES))
    if not isinstance(event_types, list) or not event_types:
        raise RuleError("'event_types' must be a non-empty list when given")
    unknown = set(map(str, event_types)) - set(EVENT_TYPES)
    if unknown:
        raise RuleError(
            f"unknown event types {sorted(unknown)}; valid: {list(EVENT_TYPES)}"
        )
    attribute = payload.get("attribute")
    if attribute is not None and not isinstance(attribute, str):
        raise RuleError("'attribute' must be a string when given")
    levels_raw = payload.get("levels")
    if not isinstance(levels_raw, list) or not levels_raw:
        raise RuleError("'levels' must be a non-empty list")
    levels: list[dict[str, Any]] = []
    for entry in levels_raw:
        if not isinstance(entry, Mapping):
            raise RuleError("each level must be an object")
        min_sensors = entry.get("min_sensors")
        severity = entry.get("severity")
        if not isinstance(min_sensors, int) or isinstance(min_sensors, bool) or min_sensors < 2:
            raise RuleError("'min_sensors' must be an integer >= 2 (CAPs have >= 2 sensors)")
        if not isinstance(severity, str) or not severity:
            raise RuleError("'severity' must be a non-empty string")
        levels.append({"min_sensors": min_sensors, "severity": severity})
    thresholds = [level["min_sensors"] for level in levels]
    if len(set(thresholds)) != len(thresholds):
        raise RuleError("level 'min_sensors' thresholds must be distinct")
    levels.sort(key=lambda level: level["min_sensors"])
    name = payload.get("name", rule_id)
    if not isinstance(name, str) or not name:
        raise RuleError("'name' must be a non-empty string when given")
    return {
        "rule_id": rule_id,
        "dataset": dataset,
        "name": name,
        "event_types": sorted(set(map(str, event_types))),
        "attribute": attribute,
        "levels": levels,
    }


def public_rule(document: Mapping[str, Any]) -> dict[str, Any]:
    """A rule document without store bookkeeping (``_id``, merge uid)."""
    return {k: v for k, v in document.items() if k not in ("_id", "rule_uid")}


def match_level(
    rule: Mapping[str, Any], event: Mapping[str, Any]
) -> dict[str, Any] | None:
    """The highest severity level ``event`` reaches under ``rule``, if any."""
    if event.get("type") not in rule.get("event_types", ()):
        return None
    cap = event.get("cap") or {}
    attribute = rule.get("attribute")
    if attribute and attribute not in cap.get("attributes", ()):
        return None
    size = len(cap.get("sensors", ()))
    matched: dict[str, Any] | None = None
    for level in rule.get("levels", ()):  # ascending min_sensors
        if size >= int(level["min_sensors"]):
            matched = dict(level)
    return matched


def evaluate_rules(
    rules: Sequence[Mapping[str, Any]],
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Alert documents (sans ``fired_at``) for every matching (rule, event).

    Deterministic: events in feed order, rules sorted by id — replaying
    an epoch produces the same alerts with the same ids.
    """
    alerts: list[dict[str, Any]] = []
    for event in events:
        for rule in sorted(rules, key=lambda r: str(r.get("rule_id", ""))):
            level = match_level(rule, event)
            if level is None:
                continue
            cap = event.get("cap") or {}
            alerts.append(
                {
                    "alert_id": f"{rule['rule_id']}:{event['event_id']}",
                    "rule_id": str(rule["rule_id"]),
                    "rule_name": str(rule.get("name", rule["rule_id"])),
                    "dataset": str(event["dataset"]),
                    "event_id": str(event["event_id"]),
                    "event_type": str(event["type"]),
                    "epoch": int(event["epoch"]),
                    "seq": int(event["seq"]),
                    "severity": str(level["severity"]),
                    "min_sensors": int(level["min_sensors"]),
                    "num_sensors": len(cap.get("sensors", ())),
                    "sensors": [str(s) for s in cap.get("sensors", ())],
                }
            )
    return alerts


def record_fired(rule_id: str) -> None:
    """Bump ``repro_alerts_fired_total{rule=...}`` for one fired alert."""
    _ALERTS_FIRED.inc(rule_id)


def prune_alerts(database: Any, dataset: str, horizon_seq: int) -> int:
    """Drop fired alerts whose triggering event retired behind the horizon.

    Alerts address events by ``seq``; once the retention fold trims the
    event itself, the alert's referent is gone from the live feed, so it
    retires with it (the exactly-once guarantee is untouched — a replayed
    epoch behind the horizon is impossible by the watermark invariant).
    Returns the number of alerts removed.
    """
    return database.collection(ALERTS).delete_many(
        {"seq": {"$lt": int(horizon_seq)}, "dataset": dataset}
    )
