"""Observation ingestion: validated batch append + per-dataset stream epochs.

``POST /api/v1/datasets/{name}/observations`` lands here.  A batch is a
JSON object ``{"timeline": [iso...], "series": {sensor_id: [reading...]}}``
that must *continue the dataset's sampling grid*: its first timestamp is
exactly one interval after the newest observation (the dataset's last
timestamp when nothing was appended yet), with no gaps inside the batch.
Readings are floats or ``null`` (missing).

Accepted batches are appended to the ``observations`` collection and bump
the dataset's **stream epoch** — a monotone per-dataset counter starting
at 0 (the uploaded base dataset) tracked in ``stream_epochs``.  Both
writes happen inside one :meth:`Database.exclusive` section, which on the
WAL engine fsyncs before releasing the lock — the batch is durable before
the HTTP 202 is sent.  The epoch is deliberately distinct from the
destructive re-upload *generation*: re-uploading a dataset resets its
stream (epochs, observations, events, alerts are purged; rules survive),
while appending observations never invalidates previously mined results.
"""

from __future__ import annotations

import math
import time
from datetime import datetime
from typing import Any, Mapping

from ..core.types import SensorDataset
from ..obs.metrics import get_registry

__all__ = [
    "OBSERVATIONS",
    "STREAM_EPOCHS",
    "STREAM_STATE",
    "CAP_EVENTS",
    "ALERT_RULES",
    "ALERTS",
    "STREAM_CONFIG",
    "FEED_SNAPSHOTS",
    "PURGED_COLLECTIONS",
    "BatchError",
    "append_batch",
    "batch_id",
    "current_epoch",
    "update_lag",
    "validate_batch",
]

#: The append-only observation log: one document per accepted batch.
OBSERVATIONS = "observations"
#: Per-dataset stream epoch: the append high-water mark of the *log*.
STREAM_EPOCHS = "stream_epochs"
#: Per-dataset miner high-water mark: last mined epoch + CAP snapshot.
STREAM_STATE = "stream_state"
#: The monotone CAP change feed (see :mod:`repro.stream.feed`).
CAP_EVENTS = "cap_events"
#: Registered alert rules (see :mod:`repro.stream.alerts`).
ALERT_RULES = "alert_rules"
#: Fired alerts, exactly one per (rule, event).
ALERTS = "alerts"
#: Per-dataset retention settings (see :mod:`repro.stream.retention`).
STREAM_CONFIG = "stream_config"
#: Per-dataset feed snapshots: retired CAP history folded behind the
#: retention horizon (see :mod:`repro.stream.retention`).
FEED_SNAPSHOTS = "feed_snapshots"

#: Stream collections wiped by a destructive re-upload or delete of the
#: dataset.  ``alert_rules`` and ``stream_config`` deliberately survive:
#: both describe intent about a *name*, not one generation's data, so a
#: re-uploaded dataset keeps its monitoring and retention configuration.
PURGED_COLLECTIONS = (
    OBSERVATIONS,
    STREAM_EPOCHS,
    STREAM_STATE,
    CAP_EVENTS,
    ALERTS,
    FEED_SNAPSHOTS,
)

_METRICS = get_registry()
_BATCHES = _METRICS.counter(
    "repro_stream_batches_total",
    "Observation batches accepted into the stream, per dataset.",
    labels=("dataset",),
)
_LAG = _METRICS.gauge(
    "repro_stream_lag_seconds",
    "Stream lag per dataset: newest appended observation timestamp minus "
    "the newest timestamp the resident miner has mined, in seconds.",
    labels=("dataset",),
)


class BatchError(ValueError):
    """An observation batch that fails validation (HTTP 400)."""


def batch_id(dataset: str, epoch: int) -> str:
    """The ``observations`` log address of one batch."""
    return f"{dataset}:{epoch:06d}"


def current_epoch(database: Any, name: str) -> tuple[int, str | None]:
    """(stream epoch, newest appended ISO timestamp) — (0, None) pre-append."""
    document = database.collection(STREAM_EPOCHS).find_one({"name": name})
    if document is None:
        return 0, None
    return int(document["epoch"]), document.get("last_timestamp")


def validate_batch(
    dataset: SensorDataset,
    payload: Any,
    last_timestamp: str | None,
) -> tuple[list[str], dict[str, list[float | None]]]:
    """Check one batch against the dataset schema and the sampling grid.

    Returns ``(timeline as ISO strings, series with NaN normalised to
    null)`` ready to store; raises :class:`BatchError` on any violation.
    ``last_timestamp`` is the newest already-appended observation (None
    when the log is empty — the grid then continues the base dataset).
    """
    if not isinstance(payload, Mapping):
        raise BatchError("batch body must be a JSON object")
    timeline_raw = payload.get("timeline")
    series_raw = payload.get("series")
    if not isinstance(timeline_raw, list) or not timeline_raw:
        raise BatchError("'timeline' must be a non-empty list of ISO-8601 timestamps")
    if not isinstance(series_raw, Mapping):
        raise BatchError("'series' must map sensor id -> list of readings")
    try:
        timeline = [datetime.fromisoformat(str(t)) for t in timeline_raw]
    except ValueError as exc:
        raise BatchError(f"bad timestamp in batch: {exc}") from None
    if dataset.num_timestamps < 2:
        raise BatchError(
            "dataset timeline is too short to infer the sampling interval"
        )
    interval = dataset.timeline[1] - dataset.timeline[0]
    tail = (
        datetime.fromisoformat(last_timestamp)
        if last_timestamp
        else dataset.timeline[-1]
    )
    expected = tail + interval
    for position, t in enumerate(timeline):
        if t != expected:
            raise BatchError(
                f"timestamp {t.isoformat()} breaks the sampling grid; expected "
                f"{expected.isoformat()} (batch position {position})"
            )
        expected = t + interval
    sensor_ids = {sensor.sensor_id for sensor in dataset}
    provided = set(series_raw)
    missing = sensor_ids - provided
    unknown = provided - sensor_ids
    if missing:
        raise BatchError(f"batch lacks series for sensors: {sorted(missing)}")
    if unknown:
        raise BatchError(f"batch names unknown sensors: {sorted(map(str, unknown))}")
    series: dict[str, list[float | None]] = {}
    for sid in sorted(sensor_ids):
        row = series_raw[sid]
        if not isinstance(row, list) or len(row) != len(timeline):
            raise BatchError(
                f"series for {sid!r} must be a list of {len(timeline)} readings"
            )
        values: list[float | None] = []
        for reading in row:
            if reading is None:
                values.append(None)
            elif isinstance(reading, (int, float)) and not isinstance(reading, bool):
                number = float(reading)
                values.append(None if math.isnan(number) else number)
            else:
                raise BatchError(
                    f"series for {sid!r} holds a non-numeric reading: {reading!r}"
                )
        series[sid] = values
    return [t.isoformat() for t in timeline], series


def append_batch(
    database: Any,
    dataset: SensorDataset,
    payload: Any,
    *,
    clock=time.time,
) -> dict[str, Any]:
    """Validate and durably append one batch; returns the accept receipt.

    The log insert and the epoch bump share one exclusive section, so the
    epoch counter can never run ahead of the log (and on the WAL engine
    both are fsynced before the section exits — durable before the 202).
    """
    with database.exclusive():
        epoch, last_timestamp = current_epoch(database, dataset.name)
        timeline, series = validate_batch(dataset, payload, last_timestamp)
        new_epoch = epoch + 1
        database.collection(OBSERVATIONS).insert_one(
            {
                "batch_id": batch_id(dataset.name, new_epoch),
                "dataset": dataset.name,
                "epoch": new_epoch,
                "timeline": timeline,
                "series": series,
                "appended_at": clock(),
            }
        )
        epochs = database.collection(STREAM_EPOCHS)
        changes = {"epoch": new_epoch, "last_timestamp": timeline[-1]}
        if epochs.update_one({"name": dataset.name}, changes) is None:
            epochs.insert_one({"name": dataset.name, **changes})
    _BATCHES.inc(dataset.name)
    update_lag(database, dataset)
    return {
        "dataset": dataset.name,
        "epoch": new_epoch,
        "observations": len(timeline),
        "last_timestamp": timeline[-1],
    }


def update_lag(database: Any, dataset: SensorDataset) -> float:
    """Recompute the ``repro_stream_lag_seconds`` gauge for one dataset.

    Lag is measured in *observation time*: the newest appended timestamp
    minus the newest timestamp the resident miner has mined (both fall
    back to the base dataset's end, so an idle, caught-up stream reads 0).
    """
    _, newest = current_epoch(database, dataset.name)
    state = database.collection(STREAM_STATE).find_one({"name": dataset.name})
    mined = (state or {}).get("last_timestamp")
    base_end = dataset.timeline[-1]
    newest_at = datetime.fromisoformat(newest) if newest else base_end
    mined_at = datetime.fromisoformat(mined) if mined else base_end
    lag = max(0.0, (newest_at - mined_at).total_seconds())
    _LAG.set(lag, dataset.name)
    return lag
