"""Process-local metrics: counters, gauges, histograms, Prometheus text.

The registry is deliberately tiny — no dependencies, no background
threads, no clocks of its own.  Each metric *family* has a name, a help
string, and a tuple of label names; concrete time series are children
keyed by their label-value tuple.  Every mutation is a single
lock-protected float update, so instrumenting a hot path costs tens of
nanoseconds, and a scrape (:func:`render_prometheus`) walks a snapshot.

Exposition follows the Prometheus text format, version 0.0.4:

* one ``# HELP`` / ``# TYPE`` header per family;
* label values escape ``\\``, ``"`` and newlines;
* histograms emit cumulative ``_bucket{le="..."}`` series ending in
  ``le="+Inf"``, plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "render_prometheus",
    "CONTENT_TYPE",
]

#: The scrape content type the text format mandates.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets — tuned for request/IO latencies in seconds,
#: spanning 100µs .. 10s (fsync on slow disks, long mines are the +Inf tail).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_ALLOWED = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_ALLOWED for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Family:
    """Shared machinery: children keyed by label-value tuples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self.label_names = tuple(labels)
        for label in self.label_names:
            _check_name(label)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _key(self, label_values: Sequence[str]) -> tuple[str, ...]:
        values = tuple(str(v) for v in label_values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values!r}"
            )
        return values

    def labels(self, *label_values: str):
        """The child time series for one label-value combination."""
        key = self._key(label_values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            items = sorted(self._children.items())
        if not items and not self.label_names:
            self.labels()  # unlabelled families always expose one series
            with self._lock:
                items = sorted(self._children.items())
        return items

    def _series(self, suffix: str, labels: Mapping[str, str], value: float) -> str:
        label_text = ",".join(
            f'{name}="{escape_label_value(value_)}"'
            for name, value_ in labels.items()
        )
        body = f"{{{label_text}}}" if label_text else ""
        return f"{self.name}{suffix}{body} {format_value(value)}"


class _CounterValue:
    """One monotone counter series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeValue:
    """One gauge series (set / inc / dec)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _HistogramValue:
    """One histogram series: fixed cumulative buckets + sum + count."""

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            raw = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative: list[int] = []
        running = 0
        for count in raw:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total_count


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, *label_values: str, amount: float = 1.0) -> None:
        self.labels(*label_values).inc(amount)

    def value(self, *label_values: str) -> float:
        return self.labels(*label_values).value

    def total(self) -> float:
        return sum(child.value for _, child in self.children())

    def render(self) -> Iterable[str]:
        for key, child in self.children():
            yield self._series("", dict(zip(self.label_names, key)), child.value)


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def set(self, value: float, *label_values: str) -> None:
        self.labels(*label_values).set(value)

    def inc(self, *label_values: str, amount: float = 1.0) -> None:
        self.labels(*label_values).inc(amount)

    def dec(self, *label_values: str, amount: float = 1.0) -> None:
        self.labels(*label_values).dec(amount)

    def value(self, *label_values: str) -> float:
        return self.labels(*label_values).value

    def total(self) -> float:
        return sum(child.value for _, child in self.children())

    def render(self) -> Iterable[str]:
        for key, child in self.children():
            yield self._series("", dict(zip(self.label_names, key)), child.value)


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels)
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered or len(set(ordered)) != len(ordered):
            raise ValueError("histogram buckets must be non-empty and strictly increasing")
        self.buckets = ordered

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets)

    def observe(self, value: float, *label_values: str) -> None:
        self.labels(*label_values).observe(value)

    def total(self) -> float:
        return sum(child.snapshot()[2] for _, child in self.children())

    def render(self) -> Iterable[str]:
        for key, child in self.children():
            labels = dict(zip(self.label_names, key))
            cumulative, total_sum, total_count = child.snapshot()
            bounds = [format_value(b) for b in self.buckets] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                yield self._series(
                    "_bucket", {**labels, "le": bound}, float(count)
                )
            yield self._series("_sum", labels, total_sum)
            yield self._series("_count", labels, float(total_count))


class MetricsRegistry:
    """A named set of metric families, scrape-renderable as one page."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(
                        f"metric {family.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels, buckets))  # type: ignore[return-value]

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def summary(self) -> dict[str, float]:
        """Family name → aggregate value (counters/gauges summed across
        labels; histograms report their observation count) — the compact
        form ``/api/v1/admin/stats`` folds in."""
        return {family.name: family.total() for family in self.families()}

    def render(self) -> str:
        return render_prometheus(self)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full scrape page for one registry (text format 0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        lines.extend(family.render())
    return "\n".join(lines) + "\n"


#: The process-local default registry every subsystem instruments into.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default_registry
