"""Cross-process trace spans, persisted through the document store.

Every claimed-job execution writes one span document into a ``spans``
collection — the same WAL-backed store the jobs live in, so spans enjoy
the same durability: a ``kill -9`` leaves the victim's span on disk with
``status="running"``, and whoever later reclaims the lease marks it
``interrupted``.  That persisted tree is what ``repro trace <job_id>``
and ``GET /api/v1/jobs/{id}/trace`` reassemble.

Span document schema (all fields always present)::

    {
      "span_id":       "<job_id>#a<attempt>@<worker_id>",
      "trace_id":      request-minted id, inherited parent -> children,
      "job_id":        the executed job,
      "parent_job_id": the distributed parent (None for top-level jobs),
      "name":          "planner" | "mine" | "shard" | "merge",
      "kind":          the job's kind field,
      "shard_index":   int | None,
      "worker_id":     the claiming worker,
      "attempt":       the claim's attempt counter,
      "start":         epoch seconds,
      "end":           epoch seconds | None (still open),
      "status":        "running" | "ok" | "error" | "cancelled"
                       | "released" | "interrupted",
      "error":         one-line message | None,
    }

Finishing a span is a compare-and-set on ``status == "running"`` so a
late finisher can never clobber an ``interrupted``/``released`` verdict a
reclaimer already recorded — the same stale-worker discipline the job
registry itself uses.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

__all__ = ["SpanStore", "SPANS_COLLECTION", "OPEN", "CLOSED_STATUSES"]

SPANS_COLLECTION = "spans"

OPEN = "running"
CLOSED_STATUSES = ("ok", "error", "cancelled", "released", "interrupted")


def span_id(job_id: str, attempt: int, worker_id: str) -> str:
    return f"{job_id}#a{attempt}@{worker_id}"


class SpanStore:
    """Reads and writes span documents in one database's ``spans`` collection."""

    def __init__(self, database: Any) -> None:
        self.database = database
        collection = database.collection(SPANS_COLLECTION)
        collection.create_index("job_id", "hash")
        collection.create_index("trace_id", "hash")

    def _collection(self):
        return self.database.collection(SPANS_COLLECTION)

    # -- writes ----------------------------------------------------------------

    def begin(
        self,
        *,
        job_id: str,
        attempt: int,
        worker_id: str,
        name: str,
        kind: str,
        trace_id: str | None = None,
        parent_job_id: str | None = None,
        shard_index: int | None = None,
        start: float | None = None,
    ) -> str:
        """Open a span (``status="running"``); returns its span_id.

        Written *before* the work starts so a crash mid-execution leaves
        the open span behind as evidence.
        """
        sid = span_id(job_id, attempt, worker_id)
        self._collection().insert_one(
            {
                "span_id": sid,
                "trace_id": trace_id,
                "job_id": job_id,
                "parent_job_id": parent_job_id,
                "name": name,
                "kind": kind,
                "shard_index": shard_index,
                "worker_id": worker_id,
                "attempt": attempt,
                "start": time.time() if start is None else float(start),
                "end": None,
                "status": OPEN,
                "error": None,
            }
        )
        return sid

    def finish(
        self,
        sid: str,
        status: str,
        error: str | None = None,
        end: float | None = None,
    ) -> bool:
        """Close a span iff it is still open (CAS on ``status="running"``)."""
        if status not in CLOSED_STATUSES:
            raise ValueError(f"unknown span status {status!r}")
        updated = self._collection().update_if(
            {"span_id": sid},
            {"status": OPEN},
            {
                "status": status,
                "end": time.time() if end is None else float(end),
                "error": error,
            },
        )
        return updated is not None

    def close_open_spans(
        self, job_id: str, status: str, error: str | None = None
    ) -> int:
        """Close every still-open span of one job (lease reclaim, release).

        Returns how many spans were marked.  The reclaimer stamps the
        *observation* time as ``end`` — the worker died somewhere before
        it, but this is the moment the system learned about it.
        """
        closed = 0
        now = time.time()
        for document in self._collection().find({"job_id": job_id, "status": OPEN}):
            if self.finish(str(document["span_id"]), status, error=error, end=now):
                closed += 1
        return closed

    # -- reads -----------------------------------------------------------------

    def for_job(self, job_id: str) -> list[dict[str, Any]]:
        """Every span of one job, attempt order."""
        spans = self._collection().find({"job_id": job_id})
        spans.sort(key=lambda d: (int(d.get("attempt") or 0), float(d.get("start") or 0)))
        return spans

    def for_trace(self, trace_id: str) -> list[dict[str, Any]]:
        spans = self._collection().find({"trace_id": trace_id})
        spans.sort(key=lambda d: float(d.get("start") or 0))
        return spans

    def for_family(self, parent_job_id: str) -> list[dict[str, Any]]:
        """Spans of one distributed parent and all of its sub-jobs."""
        spans = self.for_job(parent_job_id)
        spans += self._collection().find({"parent_job_id": parent_job_id})
        spans.sort(key=lambda d: (str(d["job_id"]), int(d.get("attempt") or 0)))
        return spans


def public_view(document: Mapping[str, Any]) -> dict[str, Any]:
    """A span document without store bookkeeping (``_id``)."""
    return {key: value for key, value in document.items() if key != "_id"}
