"""Structured logging: JSON formatter + trace/job context propagation.

``repro serve --log-format json`` installs :class:`JSONLogFormatter` on
the root handler, so every stdlib log record renders as one JSON object
per line.  :func:`log_context` is a context manager that stamps the
current ``trace_id``/``job_id`` into a :mod:`contextvars` holder; the
formatter (text *and* JSON) picks them up, which is how a shard
execution's warnings carry the distributed mine's trace id without any
handler plumbing.
"""

from __future__ import annotations

import contextvars
import json
import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "JSONLogFormatter",
    "TextLogFormatter",
    "configure_logging",
    "current_context",
    "log_context",
]

_context: contextvars.ContextVar[dict[str, str]] = contextvars.ContextVar(
    "repro_log_context", default={}
)


def current_context() -> dict[str, str]:
    """The active trace/job context (empty outside :func:`log_context`)."""
    return dict(_context.get())


@contextmanager
def log_context(
    trace_id: str | None = None, job_id: str | None = None, **extra: str
) -> Iterator[None]:
    """Stamp ids onto every log record emitted inside the block."""
    merged = dict(_context.get())
    if trace_id is not None:
        merged["trace_id"] = str(trace_id)
    if job_id is not None:
        merged["job_id"] = str(job_id)
    for key, value in extra.items():
        if value is not None:
            merged[key] = str(value)
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


class JSONLogFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, context."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_context.get())
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class TextLogFormatter(logging.Formatter):
    """Human-readable lines, trace/job context appended when present."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s: %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        context = _context.get()
        if context:
            tags = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
            line = f"{line} [{tags}]"
        return line


def configure_logging(level: str = "info", log_format: str = "text") -> None:
    """Install one stderr handler on the root logger (idempotent).

    ``repro serve --log-format/--log-level`` lands here; tests call it
    directly.  Re-configuring replaces the previously installed handler
    instead of stacking duplicates.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if log_format not in ("text", "json"):
        raise ValueError(f"log format must be 'text' or 'json', got {log_format!r}")
    formatter: logging.Formatter = (
        JSONLogFormatter() if log_format == "json" else TextLogFormatter()
    )
    root = logging.getLogger()
    handler = logging.StreamHandler()
    handler.setFormatter(formatter)
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(numeric)
