"""Observability: metrics, trace spans, profiling, structured logging.

A dependency-free telemetry layer threaded through every subsystem:

* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges,
  and fixed-bucket histograms, rendered as Prometheus text
  (``GET /api/v1/metrics``) and folded into ``/api/v1/admin/stats``;
* :mod:`repro.obs.spans` — cross-process trace spans persisted in a
  ``spans`` collection through the existing store, so a distributed
  mine's timeline survives crashes exactly like the jobs themselves;
* :mod:`repro.obs.profiler` — per-phase/per-unit wall-time capture
  threaded through ``MiningControl`` (zero cost when absent);
* :mod:`repro.obs.logging` — stdlib-logging JSON formatter plus a
  context holder that stamps ``trace_id``/``job_id`` onto log lines;
* :mod:`repro.obs.trace` — reassembles persisted spans into the
  ``repro trace <job_id>`` ASCII waterfall and the
  ``GET /api/v1/jobs/{id}/trace`` JSON tree.
"""

from .logging import JSONLogFormatter, configure_logging, log_context
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from .profiler import Profiler
from .spans import SpanStore
from .trace import render_waterfall, trace_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLogFormatter",
    "MetricsRegistry",
    "Profiler",
    "SpanStore",
    "configure_logging",
    "get_registry",
    "log_context",
    "render_prometheus",
    "render_waterfall",
    "trace_tree",
]
