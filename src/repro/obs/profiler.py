"""Lightweight phase profiling for the mining engine.

A :class:`Profiler` accumulates wall-time per named phase (``prepare`` /
``search`` / ``emit``) and per shard unit, threaded through
``MiningControl.profiler``.  The serial fast path never constructs a
control, so an un-profiled mine pays exactly nothing; a profiled shard
pays two ``perf_counter`` calls per phase.

The resulting document is persisted onto shard sub-job records by
``DurableJobStore.complete_shard`` — the measured ground truth the
ROADMAP wants for calibrating ``estimate_seed_cost``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Profiler"]


class Profiler:
    """Accumulates per-phase and per-unit wall times (seconds)."""

    def __init__(self) -> None:
        self.phases: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        #: Per shard-unit measurements: tag -> {seconds, cost, caps}.
        self.units: list[dict[str, Any]] = []

    def record(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)
        self.counts[phase] = self.counts.get(phase, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record_unit(
        self, tag: str, seconds: float, cost: float | None = None, caps: int | None = None
    ) -> None:
        """One shard unit's measured wall time, next to its planned cost."""
        entry: dict[str, Any] = {"tag": tag, "seconds": float(seconds)}
        if cost is not None:
            entry["cost"] = float(cost)
        if caps is not None:
            entry["caps"] = int(caps)
        self.units.append(entry)

    def to_document(self) -> dict[str, Any]:
        """The JSON shape persisted on shard sub-job documents."""
        return {
            "phases": {
                name: {"seconds": seconds, "count": self.counts.get(name, 1)}
                for name, seconds in sorted(self.phases.items())
            },
            "units": list(self.units),
        }
