"""Trace reassembly: the JSON span tree and the ASCII waterfall.

Both consumers read the same persisted artifacts: job documents from the
durable registry and span documents from the ``spans`` collection.
``GET /api/v1/jobs/{id}/trace`` serves :func:`trace_tree` verbatim;
``repro trace <job_id>`` renders it through :func:`render_waterfall`.

The waterfall shows one row per span (per *attempt*, so a crashed shard
appears twice: the interrupted attempt and the survivor's recompute) laid
out on a shared time axis — backoff gaps and takeover delays are visible
as the whitespace between a job's bars.
"""

from __future__ import annotations

from typing import Any

from .spans import public_view

__all__ = ["trace_tree", "render_waterfall"]

#: Bar fill per span status — one glyph of forensic shorthand each.
_STATUS_GLYPH = {
    "ok": "=",
    "error": "!",
    "cancelled": "~",
    "released": "~",
    "interrupted": "x",
    "running": "?",
}


def trace_tree(store: Any, job_id: str) -> dict[str, Any]:
    """The span tree of one job (and its shard/merge sub-jobs).

    ``store`` is a :class:`~repro.jobs.durable.DurableJobStore` (anything
    with ``get``/``children`` and a ``spans`` :class:`SpanStore`).
    Raises ``KeyError`` for an unknown job.
    """
    job = store.get(job_id)
    if job is None:
        raise KeyError(job_id)
    spans = store.spans.for_job(job_id)
    tree = _node(job, spans)
    if getattr(job, "distributed", False):
        for child in store.children(job_id):
            tree["children"].append(_node(child, store.spans.for_job(child.job_id)))
        tree["children"].sort(
            key=lambda node: (
                node["kind"] == "merge",  # merge renders last
                node["shard_index"] if node["shard_index"] is not None else 1 << 30,
            )
        )
    return tree


def _node(job: Any, spans: list[dict[str, Any]]) -> dict[str, Any]:
    return {
        "job_id": job.job_id,
        "trace_id": getattr(job, "trace_id", None),
        "kind": job.kind,
        "shard_index": job.shard_index,
        "state": job.state,
        "attempt": job.attempt,
        "worker_id": job.worker_id,
        "elapsed_seconds": getattr(job, "elapsed_seconds", None),
        "timings": getattr(job, "timings", None),
        "spans": [public_view(span) for span in spans],
        "children": [],
    }


def _all_spans(tree: dict[str, Any]) -> list[dict[str, Any]]:
    spans = list(tree["spans"])
    for child in tree["children"]:
        spans.extend(child["spans"])
    return spans


def _row_label(span: dict[str, Any]) -> str:
    worker = span.get("worker_id") or "-"
    return (
        f"{span['job_id']}  {span.get('name') or span.get('kind')}"
        f"  a{span.get('attempt')}  {worker}"
    )


def render_waterfall(tree: dict[str, Any], width: int = 60) -> str:
    """ASCII timeline of one trace tree (one row per span attempt)."""
    spans = _all_spans(tree)
    lines: list[str] = []
    header = f"trace {tree.get('trace_id') or '(none)'} · job {tree['job_id']} ({tree['kind']}) state={tree['state']}"
    lines.append(header)
    if not spans:
        lines.append("(no spans persisted for this job)")
        return "\n".join(lines)

    starts = [float(s["start"]) for s in spans if s.get("start") is not None]
    ends = [float(s["end"]) for s in spans if s.get("end") is not None]
    t0 = min(starts)
    t1 = max(ends + starts)
    total = max(t1 - t0, 1e-9)
    lines.append(f"window {total:.3f}s · {len(spans)} span(s)")

    label_width = max(len(_row_label(s)) for s in spans)
    ordered = sorted(
        spans,
        key=lambda s: (
            s.get("kind") == "merge",
            s["shard_index"] if s.get("shard_index") is not None else -1,
            int(s.get("attempt") or 0),
            float(s.get("start") or 0.0),
        ),
    )
    for span in ordered:
        start = float(span["start"])
        end = float(span["end"]) if span.get("end") is not None else t1
        lead = int(round((start - t0) / total * width))
        span_cols = max(1, int(round((end - start) / total * width)) or 1)
        lead = min(lead, width - 1)
        span_cols = min(span_cols, width - lead)
        glyph = _STATUS_GLYPH.get(str(span.get("status")), "?")
        bar = " " * lead + glyph * span_cols
        bar = bar.ljust(width)
        duration = (
            f"{end - start:7.3f}s"
            if span.get("end") is not None
            else "   open "
        )
        status = str(span.get("status", "?")).ljust(11)
        lines.append(
            f"{_row_label(span).ljust(label_width)}  {status} {duration} |{bar}|"
        )
        if span.get("error"):
            lines.append(f"{' ' * label_width}    error: {span['error']}")

    shard_timings = [
        child
        for child in tree["children"]
        if child["kind"] == "shard" and child.get("elapsed_seconds") is not None
    ]
    if shard_timings:
        lines.append("measured shard wall-times (estimate_seed_cost ground truth):")
        for child in shard_timings:
            parts = [f"  {child['job_id']}: {child['elapsed_seconds']:.3f}s"]
            timings = child.get("timings") or {}
            phases = timings.get("phases") or {}
            if phases:
                parts.append(
                    " ("
                    + ", ".join(
                        f"{name} {entry['seconds']:.3f}s"
                        for name, entry in phases.items()
                    )
                    + ")"
                )
            lines.append("".join(parts))
    legend = " ".join(f"{glyph}={name}" for name, glyph in _STATUS_GLYPH.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
