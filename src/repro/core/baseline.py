"""Naive CAP miner — the exhaustive baseline.

The paper motivates MISCELA as "an efficient algorithm for CAP mining"; the
natural comparator (and our correctness oracle) enumerates **every** subset
of every spatially connected component, checks connectivity of the induced
subgraph, and recomputes the co-evolution support from scratch.  It produces
exactly the same CAP set as the tree search, exponentially slower.

``benchmarks/bench_miscela_vs_baseline.py`` uses this to reproduce the
efficiency claim; the property tests use it to cross-check the tree search.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from .bitset import and_words, bits_to_indices, popcount
from .parameters import MiningParameters
from .spatial import connected_components, is_connected
from .types import CAP, EvolvingSet, Sensor

__all__ = ["naive_search"]


def _direction_aware_support(
    evolving: Mapping[str, EvolvingSet], members: Sequence[str], common: np.ndarray
) -> np.ndarray:
    """Timestamps in ``common`` where the members' directions are consistent.

    Consistent means: there is a fixed relative orientation per sensor such
    that at every kept timestamp each sensor's direction equals the first
    sensor's direction times its orientation.  We keep the orientation
    assignment that retains the most timestamps, mirroring the tree search's
    per-branch maximisation.
    """
    if common.size == 0 or len(members) < 2:
        return common
    signs = []
    for sid in members:
        ev = evolving[sid]
        pos = np.searchsorted(ev.indices, common)
        signs.append(ev.directions[pos].astype(np.int8))
    base = signs[0]
    # The orientation of each non-seed sensor is a free ±1 choice; the best
    # assignment maximises the timestamps where *all* sensors agree with the
    # seed times their orientation.  Per-sensor greedy is not exact (choices
    # interact through the intersection), so enumerate all 2^(k-1)
    # assignments — the naive miner is an oracle, not a fast path.
    per_sensor = [(s == base, s != base) for s in signs[1:]]
    best_mask = np.zeros(common.size, dtype=bool)
    for choice in range(1 << len(per_sensor)):
        mask = np.ones(common.size, dtype=bool)
        for bit, (same, opposite) in enumerate(per_sensor):
            mask &= opposite if (choice >> bit) & 1 else same
            if not mask.any():
                break
        if int(mask.sum()) > int(best_mask.sum()):
            best_mask = mask
    return common[best_mask]


def _direction_aware_support_bits(
    evolving: Mapping[str, EvolvingSet], members: Sequence[str], common: np.ndarray
) -> np.ndarray:
    """Word-wise twin of :func:`_direction_aware_support`.

    ``common`` is a presence word array; direction agreement per sensor is
    ``XOR`` against the seed's direction words, and each of the 2^(k-1)
    orientation assignments is scored with a popcount.  Enumeration order
    and the strictly-greater tie-break match the array oracle exactly, so
    both backends select the same assignment.
    """
    n = common.size
    if n == 0 or len(members) < 2 or not np.any(common):
        return common
    # ``common`` is truncated to the shortest member bitmap, so every
    # member's direction words cover at least ``n`` words.
    base = evolving[members[0]].bits.dirs[:n]
    differs = [base ^ evolving[sid].bits.dirs[:n] for sid in members[1:]]
    best_words = np.zeros(n, dtype=np.uint64)
    best_count = 0
    for choice in range(1 << len(differs)):
        words = common.copy()
        for bit, x in enumerate(differs):
            words &= x if (choice >> bit) & 1 else ~x
            if not np.any(words):
                break
        count = popcount(words)
        if count > best_count:
            best_count = count
            best_words = words
    return best_words


def naive_search(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    max_component_size: int = 20,
) -> list[CAP]:
    """Exhaustive CAP enumeration.

    Raises
    ------
    ValueError
        If any connected component exceeds ``max_component_size`` — the
        2^n blow-up past ~20 sensors would hang rather than finish.

    Notes
    -----
    With ``params.n_jobs != 1`` the components are mined on a process pool
    (:func:`repro.core.parallel.parallel_naive_search`); output is
    identical to the serial path.
    """
    if params.n_jobs != 1:
        from .parallel import parallel_naive_search

        return parallel_naive_search(
            sensors, adjacency, evolving, params, max_component_size
        )
    attributes = {s.sensor_id: s.attribute for s in sensors}
    caps: list[CAP] = []
    max_size = params.max_sensors
    use_bits = params.evolving_backend == "bitset"
    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        if len(component) > max_component_size:
            raise ValueError(
                f"component of {len(component)} sensors exceeds the naive "
                f"miner's limit of {max_component_size}; use MiscelaMiner"
            )
        members = sorted(component)
        upper = len(members) if max_size is None else min(max_size, len(members))
        for size in range(2, upper + 1):
            for subset in combinations(members, size):
                attrs = frozenset(attributes[sid] for sid in subset)
                if len(attrs) > params.max_attributes:
                    continue
                if params.require_multi_attribute and len(attrs) < 2:
                    continue
                if not is_connected(adjacency, subset):
                    continue
                if use_bits:
                    words = evolving[subset[0]].bits.words
                    for sid in subset[1:]:
                        words = and_words(words, evolving[sid].bits.words)
                        if not np.any(words):
                            break
                    if params.direction_aware:
                        words = _direction_aware_support_bits(
                            evolving, subset, words
                        )
                    support = popcount(words)
                    if support < params.min_support:
                        continue
                    common = bits_to_indices(words)
                else:
                    common = evolving[subset[0]].indices
                    for sid in subset[1:]:
                        common = np.intersect1d(
                            common, evolving[sid].indices, assume_unique=True
                        )
                        if common.size == 0:
                            break
                    if params.direction_aware:
                        common = _direction_aware_support(evolving, subset, common)
                    if common.size < params.min_support:
                        continue
                    support = int(common.size)
                caps.append(
                    CAP(
                        sensor_ids=frozenset(subset),
                        attributes=attrs,
                        support=support,
                        evolving_indices=tuple(common.tolist()),
                    )
                )
    caps.sort(key=lambda c: (-c.support, c.key()))
    return caps
