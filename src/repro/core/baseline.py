"""Naive CAP miner — the exhaustive baseline.

The paper motivates MISCELA as "an efficient algorithm for CAP mining"; the
natural comparator (and our correctness oracle) enumerates **every** subset
of every spatially connected component, checks connectivity of the induced
subgraph, and recomputes the co-evolution support from scratch.  It produces
exactly the same CAP set as the tree search, exponentially slower.

``benchmarks/bench_miscela_vs_baseline.py`` uses this to reproduce the
efficiency claim; the property tests use it to cross-check the tree search.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from .parameters import MiningParameters
from .spatial import connected_components, is_connected
from .types import CAP, EvolvingSet, Sensor

__all__ = ["naive_search"]


def _direction_aware_support(
    evolving: Mapping[str, EvolvingSet], members: Sequence[str], common: np.ndarray
) -> np.ndarray:
    """Timestamps in ``common`` where the members' directions are consistent.

    Consistent means: there is a fixed relative orientation per sensor such
    that at every kept timestamp each sensor's direction equals the first
    sensor's direction times its orientation.  We keep the orientation
    assignment that retains the most timestamps, mirroring the tree search's
    per-branch maximisation.
    """
    if common.size == 0 or len(members) < 2:
        return common
    signs = []
    for sid in members:
        ev = evolving[sid]
        pos = np.searchsorted(ev.indices, common)
        signs.append(ev.directions[pos].astype(np.int8))
    base = signs[0]
    # The orientation of each non-seed sensor is a free ±1 choice; the best
    # assignment maximises the timestamps where *all* sensors agree with the
    # seed times their orientation.  Per-sensor greedy is not exact (choices
    # interact through the intersection), so enumerate all 2^(k-1)
    # assignments — the naive miner is an oracle, not a fast path.
    per_sensor = [(s == base, s != base) for s in signs[1:]]
    best_mask = np.zeros(common.size, dtype=bool)
    for choice in range(1 << len(per_sensor)):
        mask = np.ones(common.size, dtype=bool)
        for bit, (same, opposite) in enumerate(per_sensor):
            mask &= opposite if (choice >> bit) & 1 else same
            if not mask.any():
                break
        if int(mask.sum()) > int(best_mask.sum()):
            best_mask = mask
    return common[best_mask]


def naive_search(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    max_component_size: int = 20,
) -> list[CAP]:
    """Exhaustive CAP enumeration.

    Raises
    ------
    ValueError
        If any connected component exceeds ``max_component_size`` — the
        2^n blow-up past ~20 sensors would hang rather than finish.
    """
    attributes = {s.sensor_id: s.attribute for s in sensors}
    caps: list[CAP] = []
    max_size = params.max_sensors
    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        if len(component) > max_component_size:
            raise ValueError(
                f"component of {len(component)} sensors exceeds the naive "
                f"miner's limit of {max_component_size}; use MiscelaMiner"
            )
        members = sorted(component)
        upper = len(members) if max_size is None else min(max_size, len(members))
        for size in range(2, upper + 1):
            for subset in combinations(members, size):
                attrs = frozenset(attributes[sid] for sid in subset)
                if len(attrs) > params.max_attributes:
                    continue
                if params.require_multi_attribute and len(attrs) < 2:
                    continue
                if not is_connected(adjacency, subset):
                    continue
                common = evolving[subset[0]].indices
                for sid in subset[1:]:
                    common = np.intersect1d(
                        common, evolving[sid].indices, assume_unique=True
                    )
                    if common.size == 0:
                        break
                if params.direction_aware:
                    common = _direction_aware_support(evolving, subset, common)
                if common.size < params.min_support:
                    continue
                caps.append(
                    CAP(
                        sensor_ids=frozenset(subset),
                        attributes=attrs,
                        support=int(common.size),
                        evolving_indices=tuple(int(i) for i in common),
                    )
                )
    caps.sort(key=lambda c: (-c.support, c.key()))
    return caps
