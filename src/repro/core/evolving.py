"""Evolving-timestamp extraction (MISCELA step 2).

A sensor *evolves* at timestamp ``t`` when the change from the previous
timestamp is at least the evolving rate ε; smaller changes "are evaluated as
that the measurements do not change" (paper, Section 2.1).  The direction of
the change (+1 / −1) is kept so direction-aware co-evolution can be checked.

The extractor optionally smooths the series first with the linear
segmentation of step 1, which removes sub-ε jitter that would otherwise
create spurious single-step evolutions.

Downstream, evolving sets are consumed through one of two interchangeable
representations selected by ``MiningParameters.evolving_backend``: the
sorted index arrays built here (``"array"``, the correctness oracle) or
their packed-bitmap twins (``"bitset"``, the default fast path — see
:mod:`repro.core.bitset`), which every :class:`EvolvingSet` materializes
lazily via its ``.bits`` property.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .bitset import and_words, popcount
from .parameters import MiningParameters
from .segmentation import smooth_series
from .types import DECREASING, INCREASING, EvolvingSet, SensorDataset

__all__ = ["extract_evolving", "extract_all_evolving", "co_evolution_count"]


def extract_evolving(
    values: np.ndarray,
    evolving_rate: float,
    segmentation: str = "none",
    segmentation_error: float = 0.0,
) -> EvolvingSet:
    """The evolving timestamps of one measurement series.

    Timestamp index ``t`` (``t >= 1``) evolves iff
    ``|values[t] - values[t-1]| >= evolving_rate`` and both endpoints are
    present (non-NaN).  With ``evolving_rate == 0`` every strict change is an
    evolution, matching the definition's limit case.

    Parameters
    ----------
    values:
        1-D measurement array; NaN marks a missing reading.
    evolving_rate:
        ε from the paper.  Non-negative.
    segmentation, segmentation_error:
        Optional step-1 smoothing applied before differencing.
    """
    if evolving_rate < 0:
        raise ValueError(f"evolving_rate must be >= 0, got {evolving_rate}")
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if values.shape[0] < 2:
        return EvolvingSet.empty()
    smoothed = smooth_series(values, segmentation, segmentation_error)
    delta = smoothed[1:] - smoothed[:-1]
    with np.errstate(invalid="ignore"):
        if evolving_rate == 0.0:
            mask = np.abs(delta) > 0.0
        else:
            mask = np.abs(delta) >= evolving_rate
    mask &= ~np.isnan(delta)
    indices = np.nonzero(mask)[0] + 1
    directions = np.where(delta[indices - 1] > 0, INCREASING, DECREASING).astype(np.int8)
    return EvolvingSet(indices.astype(np.int64), directions)


def extract_all_evolving(
    dataset: SensorDataset, params: MiningParameters
) -> dict[str, EvolvingSet]:
    """Evolving sets for every sensor in the dataset.

    Uses the per-attribute ε override when one is configured, and the
    segmentation settings from the parameters.
    """
    evolving: dict[str, EvolvingSet] = {}
    for sensor in dataset:
        evolving[sensor.sensor_id] = extract_evolving(
            dataset.values(sensor.sensor_id),
            params.rate_for(sensor.attribute),
            params.segmentation,
            params.segmentation_error,
        )
    return evolving


def co_evolution_count(
    evolving: Mapping[str, EvolvingSet],
    sensor_ids: tuple[str, ...] | list[str],
    backend: str = "bitset",
) -> int:
    """Number of timestamps at which *all* the given sensors evolve.

    This is the support of the sensor set under the demo paper's
    direction-agnostic definition of co-evolution.  ``backend="bitset"``
    (default) folds the sets with word-wise ``AND`` + popcount over their
    packed bitmaps; ``backend="array"`` keeps the sorted-index intersection
    as the oracle.  Both return the same count.
    """
    if not sensor_ids:
        return 0
    ids = list(sensor_ids)
    if backend == "bitset":
        words = evolving[ids[0]].bits.words
        for sid in ids[1:]:
            words = and_words(words, evolving[sid].bits.words)
            if not np.any(words):
                return 0
        return popcount(words)
    common = evolving[ids[0]].indices
    for sid in ids[1:]:
        common = np.intersect1d(common, evolving[sid].indices, assume_unique=True)
        if common.size == 0:
            return 0
    return int(common.size)
