"""Packed-bitmap evolving sets — the word-wise co-evolution backend.

Every layer of the miner ultimately asks one question: *at which timestamps
do all these sensors evolve (with consistent directions)?*  The sorted-array
representation answers it with ``np.intersect1d`` / ``np.isin`` — O(k log k)
and a fresh allocation per tree node.  This module packs an evolving set
into two ``np.uint64`` word arrays over the timeline:

* ``words`` — presence: bit ``t`` is set iff the sensor evolves at
  timestamp index ``t`` (bit ``i`` of word ``w`` is timestamp ``w*64 + i``);
* ``dirs`` — direction: bit ``t`` is set iff that evolution is an
  *increase* (only meaningful where the presence bit is set).

Co-evolution intersection then becomes a vectorized ``AND`` + popcount over
``timeline/64`` words, direction consistency becomes ``XOR``/``AND-NOT``,
and the time-delayed variant's shift becomes a word-level bit shift.  The
mining stack selects this backend via
``MiningParameters.evolving_backend`` (default ``"bitset"``); the sorted
array path stays available as the correctness oracle and ablation baseline
(``benchmarks/bench_ablation_evolving_backend.py``), mirroring how
:mod:`repro.core.spatial` keeps ``method="brute"`` beside the grid index.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BitsetEvolvingSet",
    "pack_indices",
    "popcount",
    "bits_to_indices",
    "and_words",
]

_WORD = 64
_ONE = np.uint64(1)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across a uint64 word array."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across a uint64 word array."""
        if words.size == 0:
            return 0
        return int(np.unpackbits(words.view(np.uint8)).sum())


def _num_words(horizon: int) -> int:
    return (int(horizon) + _WORD - 1) // _WORD


def pack_indices(indices: np.ndarray, horizon: int) -> np.ndarray:
    """Pack sorted timestamp indices into a presence word array.

    ``horizon`` bounds the timeline; indices must lie in ``[0, horizon)``.
    """
    words = np.zeros(_num_words(horizon), dtype=np.uint64)
    if len(indices):
        idx = np.asarray(indices, dtype=np.int64)
        if idx[0] < 0 or idx[-1] >= horizon:
            raise ValueError(
                f"indices must lie in [0, {horizon}), got range "
                f"[{int(idx[0])}, {int(idx[-1])}]"
            )
        np.bitwise_or.at(words, idx >> 6, _ONE << (idx & 63).astype(np.uint64))
    return words


def bits_to_indices(words: np.ndarray) -> np.ndarray:
    """Sorted timestamp indices of the set bits in a presence word array."""
    if words.size == 0:
        return np.empty(0, dtype=np.int64)
    # Force little-endian bytes so byte k of word w covers bits 8k..8k+7.
    as_bytes = words.astype("<u8", copy=False).view(np.uint8)
    return np.flatnonzero(np.unpackbits(as_bytes, bitorder="little")).astype(np.int64)


def and_words(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise AND of two presence arrays, truncated to the shorter one.

    Word arrays may cover different horizons (each sensor's bitmap ends at
    its last evolution); bits past the shorter array are absent by
    definition, so truncating is exact.
    """
    n = min(a.size, b.size)
    return a[:n] & b[:n]


class BitsetEvolvingSet:
    """An evolving set as packed presence/direction bitmaps.

    Parameters
    ----------
    words, dirs:
        Equal-length ``np.uint64`` arrays; see the module docstring for the
        bit layout.
    horizon:
        Number of timeline positions the bitmaps cover (``len(words) * 64``
        rounded down to it; bits at or past ``horizon`` are always clear).
    """

    __slots__ = ("words", "dirs", "horizon")

    def __init__(self, words: np.ndarray, dirs: np.ndarray, horizon: int) -> None:
        words = np.asarray(words, dtype=np.uint64)
        dirs = np.asarray(dirs, dtype=np.uint64)
        if words.shape != dirs.shape or words.ndim != 1:
            raise ValueError("words and dirs must be 1-D and equal length")
        if words.size != _num_words(horizon):
            raise ValueError(
                f"horizon {horizon} needs {_num_words(horizon)} words, "
                f"got {words.size}"
            )
        words.setflags(write=False)
        dirs.setflags(write=False)
        self.words = words
        self.dirs = dirs
        self.horizon = int(horizon)

    @classmethod
    def from_arrays(
        cls,
        indices: np.ndarray,
        directions: np.ndarray,
        horizon: int | None = None,
    ) -> "BitsetEvolvingSet":
        """Pack sorted indices + ±1 directions into bitmaps.

        ``horizon`` defaults to the tightest cover (last index + 1).
        """
        indices = np.asarray(indices, dtype=np.int64)
        directions = np.asarray(directions)
        if horizon is None:
            horizon = int(indices[-1]) + 1 if len(indices) else 0
        words = pack_indices(indices, horizon)
        increasing = indices[directions > 0] if len(indices) else indices
        dirs = pack_indices(increasing, horizon)
        return cls(words, dirs, horizon)

    def __len__(self) -> int:
        return popcount(self.words)

    def __bool__(self) -> bool:
        return bool(np.any(self.words))

    def count(self) -> int:
        """Number of evolving timestamps (popcount of the presence words)."""
        return popcount(self.words)

    def to_indices(self) -> np.ndarray:
        """Sorted timestamp indices of the evolving positions."""
        return bits_to_indices(self.words)

    def to_directions(self) -> np.ndarray:
        """±1 directions aligned with :meth:`to_indices`."""
        indices = self.to_indices()
        inc = bits_to_indices(self.words & self.dirs)
        directions = np.full(indices.shape, -1, dtype=np.int8)
        directions[np.isin(indices, inc, assume_unique=True)] = 1
        return directions

    def intersect_count(self, other: "BitsetEvolvingSet") -> int:
        """Number of timestamps where both sets evolve (any direction)."""
        return popcount(and_words(self.words, other.words))

    def shift(self, delay: int, horizon: int) -> "BitsetEvolvingSet":
        """Bitmap with every bit moved ``delay`` steps later, clipped.

        Matches :meth:`repro.core.types.EvolvingSet.shift`: positive delay
        moves events later (``t -> t + delay``), negative earlier; bits
        leaving ``[0, horizon)`` are dropped.  The result always covers
        exactly ``horizon`` positions so delayed-search word arrays stay
        aligned without truncation.
        """
        nwords = _num_words(horizon)
        return BitsetEvolvingSet(
            _shift_words(self.words, delay, nwords, horizon),
            _shift_words(self.dirs, delay, nwords, horizon),
            horizon,
        )

    def extended(
        self,
        new_indices: np.ndarray,
        new_directions: np.ndarray,
        horizon: int,
    ) -> "BitsetEvolvingSet":
        """Bitmap grown to ``horizon`` with a batch of new events OR-ed in.

        The streaming miner uses this for incremental word-append: the old
        words are copied once into the wider array and only the tail batch
        is packed, instead of re-packing the whole history.
        """
        if horizon < self.horizon:
            raise ValueError(
                f"cannot shrink bitmap: horizon {horizon} < {self.horizon}"
            )
        nwords = _num_words(horizon)
        words = np.zeros(nwords, dtype=np.uint64)
        dirs = np.zeros(nwords, dtype=np.uint64)
        words[: self.words.size] = self.words
        dirs[: self.dirs.size] = self.dirs
        new_indices = np.asarray(new_indices, dtype=np.int64)
        if len(new_indices):
            if int(new_indices[0]) < self.horizon:
                raise ValueError(
                    "extension events must come after the existing horizon"
                )
            words |= pack_indices(new_indices, horizon)
            new_directions = np.asarray(new_directions)
            dirs |= pack_indices(new_indices[new_directions > 0], horizon)
        return BitsetEvolvingSet(words, dirs, horizon)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitsetEvolvingSet(n={self.count()}, horizon={self.horizon})"


def _shift_words(
    words: np.ndarray, delay: int, nwords_out: int, horizon: int
) -> np.ndarray:
    """Word-level bit shift by ``delay`` positions into an array of
    ``nwords_out`` words, clearing bits at or past ``horizon``."""
    out = np.zeros(nwords_out, dtype=np.uint64)
    n = words.size
    if delay >= 0:
        ws, bs = divmod(delay, _WORD)
        lo = words << np.uint64(bs) if bs else words
        m = min(n, nwords_out - ws)
        if m > 0:
            out[ws : ws + m] |= lo[:m]
        if bs:
            hi = words >> np.uint64(_WORD - bs)
            m = min(n, nwords_out - ws - 1)
            if m > 0:
                out[ws + 1 : ws + 1 + m] |= hi[:m]
    else:
        ws, bs = divmod(-delay, _WORD)
        lo = words >> np.uint64(bs) if bs else words
        m = min(n - ws, nwords_out)
        if m > 0:
            out[:m] |= lo[ws : ws + m]
        if bs:
            hi = words << np.uint64(_WORD - bs)
            m = min(n - ws - 1, nwords_out)
            if m > 0:
                out[:m] |= hi[ws + 1 : ws + 1 + m]
    excess = nwords_out * _WORD - horizon
    if excess and nwords_out:
        out[-1] &= np.uint64((1 << (_WORD - excess)) - 1)
    return out
