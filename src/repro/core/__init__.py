"""Core CAP mining: data model, parameters, and the MISCELA algorithm."""

from .baseline import naive_search
from .bitset import BitsetEvolvingSet
from .delayed import delayed_support, search_delayed
from .evolving import co_evolution_count, extract_all_evolving, extract_evolving
from .miner import MiningResult, MiscelaMiner, NaiveMiner
from .parallel import (
    MiningCancelled,
    MiningControl,
    PackedEvolvingStore,
    ShardUnit,
    estimate_seed_cost,
    parallel_naive_search,
    parallel_search_all,
    parallel_search_delayed,
    plan_shards,
    resolve_jobs,
)
from .parameters import EVOLVING_BACKENDS, SEGMENTATION_METHODS, MiningParameters
from .search import dedupe_strongest, filter_maximal, search_all, search_component
from .segmentation import (
    Segment,
    bottom_up_segmentation,
    reconstruct,
    segment_series,
    sliding_window_segmentation,
    smooth_series,
    top_down_segmentation,
)
from .streaming import StreamingMiner
from .spatial import (
    GridIndex,
    build_proximity_graph,
    connected_components,
    haversine_matrix,
    is_connected,
    subgraph,
)
from .types import CAP, EvolvingSet, Sensor, SensorDataset, haversine_km

__all__ = [
    "BitsetEvolvingSet",
    "CAP",
    "EVOLVING_BACKENDS",
    "EvolvingSet",
    "GridIndex",
    "MiningCancelled",
    "MiningControl",
    "MiningParameters",
    "MiningResult",
    "MiscelaMiner",
    "NaiveMiner",
    "PackedEvolvingStore",
    "SEGMENTATION_METHODS",
    "Segment",
    "Sensor",
    "SensorDataset",
    "ShardUnit",
    "StreamingMiner",
    "bottom_up_segmentation",
    "build_proximity_graph",
    "co_evolution_count",
    "connected_components",
    "dedupe_strongest",
    "delayed_support",
    "estimate_seed_cost",
    "extract_all_evolving",
    "extract_evolving",
    "filter_maximal",
    "haversine_km",
    "haversine_matrix",
    "is_connected",
    "naive_search",
    "parallel_naive_search",
    "parallel_search_all",
    "parallel_search_delayed",
    "plan_shards",
    "reconstruct",
    "resolve_jobs",
    "search_all",
    "search_component",
    "search_delayed",
    "segment_series",
    "sliding_window_segmentation",
    "smooth_series",
    "subgraph",
    "top_down_segmentation",
]
