"""Core data model for CAP mining.

This module defines the vocabulary shared by the whole library:

* :class:`Sensor` — one physical sensor measuring one attribute at a fixed
  location.  Following the paper (Section 4, footnote 2), co-located sensors
  with different attributes are distinct sensors.
* :class:`SensorDataset` — a synchronized collection of sensors: every sensor
  measures at the same timestamps, missing readings are NaN.
* :class:`EvolvingSet` — the timestamps at which one sensor's measurement
  changed by at least the evolving rate, together with the change direction.
* :class:`CAP` — a correlated attribute pattern: a spatially connected set of
  sensors covering at least two attributes that co-evolve frequently.

Datasets keep their measurements as dense ``numpy`` arrays indexed by the
shared timeline, which is what makes the mining passes cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Direction",
    "Sensor",
    "SensorDataset",
    "EvolvingSet",
    "CAP",
    "EARTH_RADIUS_KM",
    "haversine_km",
]

EARTH_RADIUS_KM = 6371.0088

#: Direction of an evolving step: +1 for increase, -1 for decrease.
Direction = int

INCREASING: Direction = 1
DECREASING: Direction = -1


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS-84 points, in kilometres.

    This is the distance the paper's distance threshold ``eta`` is compared
    against when deciding whether two sensors are "spatially close".
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True, slots=True)
class Sensor:
    """A single sensor: one attribute measured at one location.

    Attributes
    ----------
    sensor_id:
        Unique identifier (the ``id`` column of ``location.csv``).
    attribute:
        Name of the measured attribute (``temperature``, ``traffic_volume``,
        ``pm25`` ...).  Must appear in the dataset's attribute registry.
    lat, lon:
        WGS-84 coordinates.
    """

    sensor_id: str
    attribute: str
    lat: float
    lon: float

    def distance_km(self, other: "Sensor") -> float:
        """Haversine distance to another sensor in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def __post_init__(self) -> None:
        if not self.sensor_id:
            raise ValueError("sensor_id must be a non-empty string")
        if not self.attribute:
            raise ValueError("attribute must be a non-empty string")
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon!r}")


class SensorDataset:
    """A synchronized multi-sensor dataset.

    All sensors share one timeline (the paper requires "timestamps must be
    the same time intervals").  Measurements are stored as one float array per
    sensor; missing values (``null`` in ``data.csv``) are ``NaN``.

    Parameters
    ----------
    name:
        Dataset name, used as part of cache keys.
    timeline:
        Strictly increasing timestamps, evenly spaced.
    sensors:
        The sensors, each with a measurement array of ``len(timeline)``.
    measurements:
        Mapping from sensor id to a 1-D float array aligned with ``timeline``.
    attributes:
        Optional explicit attribute registry (``attribute.csv``).  Defaults
        to the set of attributes present among the sensors.
    """

    def __init__(
        self,
        name: str,
        timeline: Sequence[datetime],
        sensors: Iterable[Sensor],
        measurements: Mapping[str, np.ndarray],
        attributes: Sequence[str] | None = None,
    ) -> None:
        if not name:
            raise ValueError("dataset name must be non-empty")
        self.name = name
        self.timeline: tuple[datetime, ...] = tuple(timeline)
        if len(self.timeline) < 2:
            raise ValueError("timeline must contain at least two timestamps")
        self._validate_timeline()
        self._sensors: dict[str, Sensor] = {}
        for sensor in sensors:
            if sensor.sensor_id in self._sensors:
                raise ValueError(f"duplicate sensor id: {sensor.sensor_id!r}")
            self._sensors[sensor.sensor_id] = sensor
        if not self._sensors:
            raise ValueError("dataset must contain at least one sensor")
        self._measurements: dict[str, np.ndarray] = {}
        n = len(self.timeline)
        for sensor_id in self._sensors:
            if sensor_id not in measurements:
                raise ValueError(f"missing measurements for sensor {sensor_id!r}")
            values = np.asarray(measurements[sensor_id], dtype=np.float64)
            if values.ndim != 1 or values.shape[0] != n:
                raise ValueError(
                    f"measurements for {sensor_id!r} must be 1-D of length {n}, "
                    f"got shape {values.shape}"
                )
            self._measurements[sensor_id] = values
        unknown = set(measurements) - set(self._sensors)
        if unknown:
            raise ValueError(f"measurements for unknown sensors: {sorted(unknown)}")
        present = {s.attribute for s in self._sensors.values()}
        if attributes is None:
            self.attributes: tuple[str, ...] = tuple(sorted(present))
        else:
            registry = tuple(attributes)
            missing = present - set(registry)
            if missing:
                raise ValueError(
                    f"sensors use attributes not in the registry: {sorted(missing)}"
                )
            self.attributes = registry

    def _validate_timeline(self) -> None:
        steps = {
            (b - a)
            for a, b in zip(self.timeline, self.timeline[1:])
        }
        if any(step <= timedelta(0) for step in steps):
            raise ValueError("timeline must be strictly increasing")
        if len(steps) > 1:
            raise ValueError(
                "timeline must be evenly spaced (paper: 'timestamps must be "
                f"the same time intervals'); saw intervals {sorted(steps)}"
            )

    # -- basic access ------------------------------------------------------

    @property
    def interval(self) -> timedelta:
        """The sampling interval shared by all sensors."""
        return self.timeline[1] - self.timeline[0]

    @property
    def sensor_ids(self) -> tuple[str, ...]:
        return tuple(self._sensors)

    @property
    def num_timestamps(self) -> int:
        return len(self.timeline)

    @property
    def num_records(self) -> int:
        """Total number of non-missing measurement records."""
        return int(
            sum(np.count_nonzero(~np.isnan(v)) for v in self._measurements.values())
        )

    def __len__(self) -> int:
        return len(self._sensors)

    def __iter__(self) -> Iterator[Sensor]:
        return iter(self._sensors.values())

    def __contains__(self, sensor_id: object) -> bool:
        return sensor_id in self._sensors

    def sensor(self, sensor_id: str) -> Sensor:
        try:
            return self._sensors[sensor_id]
        except KeyError:
            raise KeyError(f"unknown sensor id: {sensor_id!r}") from None

    def values(self, sensor_id: str) -> np.ndarray:
        """The measurement array for one sensor (aligned with ``timeline``)."""
        self.sensor(sensor_id)
        return self._measurements[sensor_id]

    def sensors_with_attribute(self, attribute: str) -> list[Sensor]:
        return [s for s in self._sensors.values() if s.attribute == attribute]

    # -- slicing -----------------------------------------------------------

    def slice_time(self, start: datetime, end: datetime, name: str | None = None) -> "SensorDataset":
        """A dataset restricted to timestamps in ``[start, end)``.

        Used e.g. to split the COVID-19 dataset into before/after halves
        (paper, Figure 4).
        """
        keep = [i for i, t in enumerate(self.timeline) if start <= t < end]
        if len(keep) < 2:
            raise ValueError("time slice must keep at least two timestamps")
        lo, hi = keep[0], keep[-1] + 1
        if keep != list(range(lo, hi)):  # pragma: no cover - contiguity by construction
            raise ValueError("time slice must be contiguous")
        return SensorDataset(
            name or f"{self.name}[{start:%Y-%m-%d}..{end:%Y-%m-%d}]",
            self.timeline[lo:hi],
            self._sensors.values(),
            {sid: v[lo:hi] for sid, v in self._measurements.items()},
            attributes=self.attributes,
        )

    def subset(self, sensor_ids: Iterable[str], name: str | None = None) -> "SensorDataset":
        """A dataset restricted to the given sensors."""
        ids = list(dict.fromkeys(sensor_ids))
        return SensorDataset(
            name or f"{self.name}[subset]",
            self.timeline,
            [self.sensor(sid) for sid in ids],
            {sid: self._measurements[sid] for sid in ids},
        )

    def describe(self) -> dict[str, object]:
        """Summary row matching the paper's Section 4 dataset table."""
        return {
            "name": self.name,
            "sensors": len(self),
            "records": self.num_records,
            "attributes": list(self.attributes),
            "start": self.timeline[0].isoformat(),
            "end": self.timeline[-1].isoformat(),
            "interval_seconds": self.interval.total_seconds(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensorDataset(name={self.name!r}, sensors={len(self)}, "
            f"timestamps={self.num_timestamps}, attributes={list(self.attributes)})"
        )


class EvolvingSet:
    """The evolving timestamps of one sensor, with directions.

    ``indices`` are positions in the dataset timeline at which the sensor's
    measurement changed by at least the evolving rate; ``directions`` holds
    ``+1`` (increase) or ``-1`` (decrease) per index.  Both arrays are sorted
    by index and immutable.

    :attr:`bits` lazily materializes (and caches) the packed-bitmap twin of
    the set — see :mod:`repro.core.bitset` — which the ``"bitset"`` mining
    backend uses to turn every intersection into a word-wise ``AND``.
    """

    __slots__ = ("indices", "directions", "_bits")

    def __init__(self, indices: np.ndarray, directions: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        directions = np.asarray(directions, dtype=np.int8)
        if indices.shape != directions.shape or indices.ndim != 1:
            raise ValueError("indices and directions must be 1-D and equal length")
        if indices.size and np.any(np.diff(indices) <= 0):
            raise ValueError("indices must be strictly increasing")
        if directions.size and not np.all(np.isin(directions, (INCREASING, DECREASING))):
            raise ValueError("directions must be +1 or -1")
        indices.setflags(write=False)
        directions.setflags(write=False)
        self.indices = indices
        self.directions = directions

    @classmethod
    def empty(cls) -> "EvolvingSet":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int8))

    @property
    def bits(self) -> "BitsetEvolvingSet":
        """The packed-bitmap twin of this set, materialized lazily.

        The bitmap covers *at least* ``last index + 1`` positions (the
        streaming miner attaches incrementally-extended bitmaps that cover
        the whole timeline); trailing zero words never change a result
        because intersections truncate to the shorter operand.
        """
        try:
            return self._bits
        except AttributeError:
            from .bitset import BitsetEvolvingSet

            bits = BitsetEvolvingSet.from_arrays(self.indices, self.directions)
            self._bits = bits
            return bits

    def __len__(self) -> int:
        return int(self.indices.size)

    def __bool__(self) -> bool:
        return self.indices.size > 0

    def __contains__(self, index: int) -> bool:
        pos = int(np.searchsorted(self.indices, index))
        return pos < self.indices.size and int(self.indices[pos]) == index

    def direction_at(self, index: int) -> Direction:
        pos = int(np.searchsorted(self.indices, index))
        if pos >= self.indices.size or int(self.indices[pos]) != index:
            raise KeyError(f"timestamp index {index} is not evolving")
        return int(self.directions[pos])

    def intersect_indices(self, other: "EvolvingSet") -> np.ndarray:
        """Timestamp indices at which both sensors evolve (any direction).

        This is the paper's co-evolution: "increase/decrease at the same
        timestamp".  Direction-aware variants are layered on top by the
        search (see :mod:`repro.core.search`).
        """
        return np.intersect1d(self.indices, other.indices, assume_unique=True)

    def shift(self, delay: int, horizon: int) -> "EvolvingSet":
        """Evolving set shifted later by ``delay`` steps, clipped to the timeline.

        Used by the time-delayed extension (DPD 2020): sensor B reacting
        ``delay`` steps after sensor A contributes co-evolutions between A's
        events and B's events shifted back by ``delay``.
        """
        if delay == 0:
            return self
        shifted = self.indices + delay
        keep = (shifted >= 0) & (shifted < horizon)
        return EvolvingSet(shifted[keep], self.directions[keep])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EvolvingSet(n={len(self)})"


@dataclass(frozen=True)
class CAP:
    """A correlated attribute pattern.

    A CAP is a set of sensors that (1) form a connected component of the
    η-closeness graph, (2) jointly co-evolve at ``support`` ≥ ψ timestamps,
    and (3) cover between 2 and μ distinct attributes.

    ``evolving_indices`` records *where* the pattern co-evolves so the
    visualization can highlight those windows, and ``delays`` (all zero for
    simultaneous CAPs) records the per-sensor lag of the time-delayed
    extension.
    """

    sensor_ids: frozenset[str]
    attributes: frozenset[str]
    support: int
    evolving_indices: tuple[int, ...] = ()
    delays: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.sensor_ids) < 2:
            raise ValueError("a CAP must contain at least two sensors")
        if self.support < 0:
            raise ValueError("support must be non-negative")
        if self.evolving_indices and len(self.evolving_indices) != self.support:
            raise ValueError(
                "evolving_indices length must equal support when provided"
            )
        object.__setattr__(self, "delays", dict(self.delays))

    @property
    def size(self) -> int:
        return len(self.sensor_ids)

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def is_delayed(self) -> bool:
        return any(d != 0 for d in self.delays.values())

    def key(self) -> tuple[str, ...]:
        """Canonical identity of the pattern: its sorted sensor ids."""
        return tuple(sorted(self.sensor_ids))

    def to_document(self) -> dict[str, object]:
        """JSON-serialisable form, the shape stored in the document store."""
        return {
            "sensors": sorted(self.sensor_ids),
            "attributes": sorted(self.attributes),
            "support": self.support,
            "evolving_indices": list(self.evolving_indices),
            "delays": {k: int(v) for k, v in sorted(self.delays.items())},
        }

    @classmethod
    def from_document(cls, doc: Mapping[str, object]) -> "CAP":
        return cls(
            sensor_ids=frozenset(doc["sensors"]),  # type: ignore[arg-type]
            attributes=frozenset(doc["attributes"]),  # type: ignore[arg-type]
            support=int(doc["support"]),  # type: ignore[arg-type]
            evolving_indices=tuple(doc.get("evolving_indices", ())),  # type: ignore[arg-type]
            delays=dict(doc.get("delays", {})),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CAP(sensors={sorted(self.sensor_ids)}, "
            f"attributes={sorted(self.attributes)}, support={self.support})"
        )
