"""Linear segmentation of time series (MISCELA step 1).

MISCELA first "filters uninteresting data fluctuation by applying a linear
segmentation algorithm to time series data".  We implement the three classic
piecewise-linear-approximation algorithms (Keogh et al.):

* **sliding window** — grow a segment until its residual error exceeds the
  budget, then start a new one.  Online, O(n · L).
* **bottom-up** — start from length-2 segments and greedily merge the
  cheapest adjacent pair.  Best quality, O(n log n) with a heap.
* **top-down** — recursively split at the point of maximum error.

Each returns a list of :class:`Segment`.  :func:`reconstruct` rebuilds a
smoothed series by linear interpolation over the segments; feeding the
smoothed series to the evolving-timestamp extractor removes the sub-ε jitter
the paper wants gone.  Missing values (NaN) break the series into runs that
are segmented independently; NaNs stay NaN in the reconstruction.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Segment",
    "sliding_window_segmentation",
    "bottom_up_segmentation",
    "top_down_segmentation",
    "segment_series",
    "reconstruct",
    "smooth_series",
]


@dataclass(frozen=True, slots=True)
class Segment:
    """A linear segment over timeline indices ``[start, end]`` (inclusive).

    ``value_start``/``value_end`` are the fitted endpoint values; the
    approximation between them is linear in the index.
    """

    start: int
    end: int
    value_start: float
    value_end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"segment end {self.end} before start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def slope(self) -> float:
        if self.end == self.start:
            return 0.0
        return (self.value_end - self.value_start) / (self.end - self.start)

    def interpolate(self, index: int) -> float:
        if not self.start <= index <= self.end:
            raise ValueError(f"index {index} outside segment [{self.start}, {self.end}]")
        return self.value_start + self.slope * (index - self.start)


def _interpolation_error(values: np.ndarray, start: int, end: int) -> float:
    """Max absolute residual of the straight line joining the endpoints."""
    if end - start < 2:
        return 0.0
    n = end - start
    line = values[start] + (values[end] - values[start]) * (
        np.arange(n + 1, dtype=np.float64) / n
    )
    return float(np.max(np.abs(values[start : end + 1] - line)))


def _segment_endpoints(values: np.ndarray, start: int, end: int) -> Segment:
    return Segment(start, end, float(values[start]), float(values[end]))


class _ResidualHull:
    """Incremental max-residual oracle for a growing segment.

    The residual of interior point ``j`` against the candidate line from
    the anchor to ``i`` is ``d_j - s·x_j`` with ``x_j = j - anchor``,
    ``d_j = values[j] - values[anchor]`` and slope ``s = d_i / x_i``.  For
    a fixed point set that is a linear functional of ``(x, d)``, so its
    maximum sits on the upper convex hull and its minimum on the lower
    hull.  Points arrive with strictly increasing ``x``, so both hulls
    grow by amortized-O(1) monotone-chain pushes, and each error query
    locates its extreme vertex by bisecting the (monotone) hull edge
    slopes — O(log h) instead of re-scanning the whole segment, turning
    the sliding window's quadratic re-scan into O(n log n) total.
    """

    __slots__ = ("values", "anchor", "ux", "ud", "uneg", "lx", "ld", "lslope")

    def __init__(self, values: np.ndarray, anchor: int) -> None:
        self.values = values
        self.anchor = anchor
        # Upper hull vertices and negated edge slopes (increasing).
        self.ux: list[float] = []
        self.ud: list[float] = []
        self.uneg: list[float] = []
        # Lower hull vertices and edge slopes (increasing).
        self.lx: list[float] = []
        self.ld: list[float] = []
        self.lslope: list[float] = []

    def append(self, j: int) -> None:
        """Add interior point ``j`` to both hulls."""
        x = float(j - self.anchor)
        d = float(self.values[j]) - float(self.values[self.anchor])
        while self.ux:
            slope = (d - self.ud[-1]) / (x - self.ux[-1])
            if self.uneg and -slope <= self.uneg[-1]:
                self.ux.pop()
                self.ud.pop()
                self.uneg.pop()
            else:
                self.uneg.append(-slope)
                break
        self.ux.append(x)
        self.ud.append(d)
        while self.lx:
            slope = (d - self.ld[-1]) / (x - self.lx[-1])
            if self.lslope and slope <= self.lslope[-1]:
                self.lx.pop()
                self.ld.pop()
                self.lslope.pop()
            else:
                self.lslope.append(slope)
                break
        self.lx.append(x)
        self.ld.append(d)

    def _residual_at(
        self, k_x: float, intercept: float, d_i: float, x_i: float
    ) -> float:
        # Evaluate exactly as the full re-scan does — intercept + d·(x/x_i),
        # in that association — so the residual at the chosen vertex is
        # bit-identical to the re-scanning implementation's value there.
        j = self.anchor + int(k_x)
        return float(self.values[j]) - (intercept + d_i * (k_x / x_i))

    def max_error(self, i: int) -> float:
        """Max |residual| of the line anchor→``i`` over the interior points."""
        if i - self.anchor < 2:
            return 0.0
        value_a = float(self.values[self.anchor])
        x_i = float(i - self.anchor)
        d_i = float(self.values[i]) - value_a
        s = d_i / x_i
        # The straight line's last sample is value_a + d_i (not values[i]
        # bit-for-bit), so mirror the full-recompute endpoint residual.
        err = abs(float(self.values[i]) - (value_a + d_i))
        # Max of d - s·x: first upper-hull vertex whose outgoing edge has
        # slope <= s (edges before it climb faster than the line).
        k = bisect_left(self.uneg, -s)
        err = max(err, abs(self._residual_at(self.ux[k], value_a, d_i, x_i)))
        # Min of d - s·x: first lower-hull vertex whose edge slope >= s.
        k = bisect_left(self.lslope, s)
        err = max(err, abs(self._residual_at(self.lx[k], value_a, d_i, x_i)))
        return err


def sliding_window_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Online segmentation: extend each segment until the error budget breaks.

    The error check is incremental: interior points feed a pair of convex
    hulls (:class:`_ResidualHull`) so each step costs O(log segment) and
    the whole pass O(n log n), where the previous full re-scan from the
    anchor was quadratic in segment length.  The residual formula is
    evaluated exactly as the re-scan evaluated it at the hull's extreme
    vertices, so break points match the re-scanning implementation except
    when two residuals tie within ~1 ulp of the budget (the hull may then
    anchor the comparison at the other of the two).

    ``offset`` shifts the reported indices (used when segmenting NaN-free
    runs of a longer series).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]
    segments: list[Segment] = []
    anchor = 0
    hull = _ResidualHull(values, anchor)
    i = 1
    while i < n:
        if hull.max_error(i) > max_error:
            segments.append(_segment_endpoints(values, anchor, i - 1))
            # Re-anchor at the last in-budget point so segments tile the run.
            anchor = i - 1
            hull = _ResidualHull(values, anchor)
        hull.append(i)
        i += 1
    segments.append(_segment_endpoints(values, anchor, n - 1))
    return [_shift(s, offset) for s in segments]


def bottom_up_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Greedy bottom-up merge of adjacent segments, cheapest first."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]
    # Doubly linked list of segment boundaries over initial length-2 pieces.
    starts = list(range(0, n - 1, 1))
    # Each initial segment covers [i, i+1]; neighbours are adjacent entries.
    left = [i - 1 for i in range(len(starts))]
    right = [i + 1 if i + 1 < len(starts) else -1 for i in range(len(starts))]
    seg_start = {i: starts[i] for i in range(len(starts))}
    seg_end = {i: starts[i] + 1 for i in range(len(starts))}
    alive = [True] * len(starts)

    def merge_cost(i: int) -> float:
        j = right[i]
        if j == -1:
            return np.inf
        return _interpolation_error(values, seg_start[i], seg_end[j])

    heap: list[tuple[float, int, int]] = []
    version = [0] * len(starts)
    for i in range(len(starts)):
        cost = merge_cost(i)
        if np.isfinite(cost):
            heapq.heappush(heap, (cost, i, version[i]))

    while heap:
        cost, i, ver = heapq.heappop(heap)
        if not alive[i] or ver != version[i] or cost > max_error:
            if cost > max_error and alive[i] and ver == version[i]:
                break
            continue
        j = right[i]
        if j == -1 or not alive[j]:
            continue
        # Merge j into i.
        seg_end[i] = seg_end[j]
        alive[j] = False
        right[i] = right[j]
        if right[i] != -1:
            left[right[i]] = i
        version[i] += 1
        new_cost = merge_cost(i)
        if np.isfinite(new_cost):
            heapq.heappush(heap, (new_cost, i, version[i]))
        li = left[i]
        if li != -1 and alive[li]:
            version[li] += 1
            lcost = merge_cost(li)
            if np.isfinite(lcost):
                heapq.heappush(heap, (lcost, li, version[li]))

    segments = [
        _segment_endpoints(values, seg_start[i], seg_end[i])
        for i in range(len(starts))
        if alive[i]
    ]
    segments.sort(key=lambda s: s.start)
    return [_shift(s, offset) for s in segments]


def top_down_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Recursive split at the worst-approximated point."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]

    segments: list[Segment] = []
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2 or _interpolation_error(values, start, end) <= max_error:
            segments.append(_segment_endpoints(values, start, end))
            continue
        nseg = end - start
        line = values[start] + (values[end] - values[start]) * (
            np.arange(nseg + 1, dtype=np.float64) / nseg
        )
        split = start + int(np.argmax(np.abs(values[start : end + 1] - line)))
        split = min(max(split, start + 1), end - 1)
        stack.append((split, end))
        stack.append((start, split))
    segments.sort(key=lambda s: s.start)
    return [_shift(s, offset) for s in segments]


def _shift(segment: Segment, offset: int) -> Segment:
    if offset == 0:
        return segment
    return Segment(
        segment.start + offset,
        segment.end + offset,
        segment.value_start,
        segment.value_end,
    )


_ALGORITHMS: dict[str, Callable[[np.ndarray, float, int], list[Segment]]] = {
    "sliding_window": sliding_window_segmentation,
    "bottom_up": bottom_up_segmentation,
    "top_down": top_down_segmentation,
}


def _nan_runs(values: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of consecutive non-NaN values as ``(start, end)`` inclusive."""
    finite = ~np.isnan(values)
    runs: list[tuple[int, int]] = []
    start: int | None = None
    for i, ok in enumerate(finite):
        if ok and start is None:
            start = i
        elif not ok and start is not None:
            runs.append((start, i - 1))
            start = None
    if start is not None:
        runs.append((start, len(values) - 1))
    return runs


def segment_series(
    values: np.ndarray, method: str, max_error: float
) -> list[Segment]:
    """Segment a (possibly NaN-holed) series with the named algorithm.

    NaN gaps split the series; each finite run is segmented independently and
    indices refer to the original array.
    """
    if method == "none":
        raise ValueError('segment_series requires a real method, not "none"')
    try:
        algorithm = _ALGORITHMS[method]
    except KeyError:
        raise ValueError(
            f"unknown segmentation method {method!r}; "
            f"choose from {sorted(_ALGORITHMS)}"
        ) from None
    values = np.asarray(values, dtype=np.float64)
    segments: list[Segment] = []
    for start, end in _nan_runs(values):
        segments.extend(algorithm(values[start : end + 1], max_error, start))
    return segments


def reconstruct(segments: Sequence[Segment], length: int) -> np.ndarray:
    """Rebuild a smoothed series from segments; uncovered indices are NaN."""
    out = np.full(length, np.nan, dtype=np.float64)
    for seg in segments:
        if seg.end >= length:
            raise ValueError(f"segment {seg} exceeds series length {length}")
        idx = np.arange(seg.start, seg.end + 1)
        out[idx] = seg.value_start + seg.slope * (idx - seg.start)
    return out


def smooth_series(values: np.ndarray, method: str, max_error: float) -> np.ndarray:
    """Convenience: segment then reconstruct.  ``method == "none"`` is identity."""
    values = np.asarray(values, dtype=np.float64)
    if method == "none":
        return values
    return reconstruct(segment_series(values, method, max_error), values.shape[0])
