"""Linear segmentation of time series (MISCELA step 1).

MISCELA first "filters uninteresting data fluctuation by applying a linear
segmentation algorithm to time series data".  We implement the three classic
piecewise-linear-approximation algorithms (Keogh et al.):

* **sliding window** — grow a segment until its residual error exceeds the
  budget, then start a new one.  Online, O(n · L).
* **bottom-up** — start from length-2 segments and greedily merge the
  cheapest adjacent pair.  Best quality, O(n log n) with a heap.
* **top-down** — recursively split at the point of maximum error.

Each returns a list of :class:`Segment`.  :func:`reconstruct` rebuilds a
smoothed series by linear interpolation over the segments; feeding the
smoothed series to the evolving-timestamp extractor removes the sub-ε jitter
the paper wants gone.  Missing values (NaN) break the series into runs that
are segmented independently; NaNs stay NaN in the reconstruction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Segment",
    "sliding_window_segmentation",
    "bottom_up_segmentation",
    "top_down_segmentation",
    "segment_series",
    "reconstruct",
    "smooth_series",
]


@dataclass(frozen=True, slots=True)
class Segment:
    """A linear segment over timeline indices ``[start, end]`` (inclusive).

    ``value_start``/``value_end`` are the fitted endpoint values; the
    approximation between them is linear in the index.
    """

    start: int
    end: int
    value_start: float
    value_end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"segment end {self.end} before start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def slope(self) -> float:
        if self.end == self.start:
            return 0.0
        return (self.value_end - self.value_start) / (self.end - self.start)

    def interpolate(self, index: int) -> float:
        if not self.start <= index <= self.end:
            raise ValueError(f"index {index} outside segment [{self.start}, {self.end}]")
        return self.value_start + self.slope * (index - self.start)


def _interpolation_error(values: np.ndarray, start: int, end: int) -> float:
    """Max absolute residual of the straight line joining the endpoints."""
    if end - start < 2:
        return 0.0
    n = end - start
    line = values[start] + (values[end] - values[start]) * (
        np.arange(n + 1, dtype=np.float64) / n
    )
    return float(np.max(np.abs(values[start : end + 1] - line)))


def _segment_endpoints(values: np.ndarray, start: int, end: int) -> Segment:
    return Segment(start, end, float(values[start]), float(values[end]))


def sliding_window_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Online segmentation: extend each segment until the error budget breaks.

    ``offset`` shifts the reported indices (used when segmenting NaN-free
    runs of a longer series).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]
    segments: list[Segment] = []
    anchor = 0
    i = 1
    while i < n:
        if _interpolation_error(values, anchor, i) > max_error:
            segments.append(_segment_endpoints(values, anchor, i - 1))
            # Re-anchor at the last in-budget point so segments tile the run.
            anchor = i - 1
        i += 1
    segments.append(_segment_endpoints(values, anchor, n - 1))
    return [_shift(s, offset) for s in segments]


def bottom_up_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Greedy bottom-up merge of adjacent segments, cheapest first."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]
    # Doubly linked list of segment boundaries over initial length-2 pieces.
    starts = list(range(0, n - 1, 1))
    # Each initial segment covers [i, i+1]; neighbours are adjacent entries.
    left = [i - 1 for i in range(len(starts))]
    right = [i + 1 if i + 1 < len(starts) else -1 for i in range(len(starts))]
    seg_start = {i: starts[i] for i in range(len(starts))}
    seg_end = {i: starts[i] + 1 for i in range(len(starts))}
    alive = [True] * len(starts)

    def merge_cost(i: int) -> float:
        j = right[i]
        if j == -1:
            return np.inf
        return _interpolation_error(values, seg_start[i], seg_end[j])

    heap: list[tuple[float, int, int]] = []
    version = [0] * len(starts)
    for i in range(len(starts)):
        cost = merge_cost(i)
        if np.isfinite(cost):
            heapq.heappush(heap, (cost, i, version[i]))

    while heap:
        cost, i, ver = heapq.heappop(heap)
        if not alive[i] or ver != version[i] or cost > max_error:
            if cost > max_error and alive[i] and ver == version[i]:
                break
            continue
        j = right[i]
        if j == -1 or not alive[j]:
            continue
        # Merge j into i.
        seg_end[i] = seg_end[j]
        alive[j] = False
        right[i] = right[j]
        if right[i] != -1:
            left[right[i]] = i
        version[i] += 1
        new_cost = merge_cost(i)
        if np.isfinite(new_cost):
            heapq.heappush(heap, (new_cost, i, version[i]))
        li = left[i]
        if li != -1 and alive[li]:
            version[li] += 1
            lcost = merge_cost(li)
            if np.isfinite(lcost):
                heapq.heappush(heap, (lcost, li, version[li]))

    segments = [
        _segment_endpoints(values, seg_start[i], seg_end[i])
        for i in range(len(starts))
        if alive[i]
    ]
    segments.sort(key=lambda s: s.start)
    return [_shift(s, offset) for s in segments]


def top_down_segmentation(
    values: np.ndarray, max_error: float, offset: int = 0
) -> list[Segment]:
    """Recursive split at the worst-approximated point."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [Segment(offset, offset, float(values[0]), float(values[0]))]

    segments: list[Segment] = []
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2 or _interpolation_error(values, start, end) <= max_error:
            segments.append(_segment_endpoints(values, start, end))
            continue
        nseg = end - start
        line = values[start] + (values[end] - values[start]) * (
            np.arange(nseg + 1, dtype=np.float64) / nseg
        )
        split = start + int(np.argmax(np.abs(values[start : end + 1] - line)))
        split = min(max(split, start + 1), end - 1)
        stack.append((split, end))
        stack.append((start, split))
    segments.sort(key=lambda s: s.start)
    return [_shift(s, offset) for s in segments]


def _shift(segment: Segment, offset: int) -> Segment:
    if offset == 0:
        return segment
    return Segment(
        segment.start + offset,
        segment.end + offset,
        segment.value_start,
        segment.value_end,
    )


_ALGORITHMS: dict[str, Callable[[np.ndarray, float, int], list[Segment]]] = {
    "sliding_window": sliding_window_segmentation,
    "bottom_up": bottom_up_segmentation,
    "top_down": top_down_segmentation,
}


def _nan_runs(values: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of consecutive non-NaN values as ``(start, end)`` inclusive."""
    finite = ~np.isnan(values)
    runs: list[tuple[int, int]] = []
    start: int | None = None
    for i, ok in enumerate(finite):
        if ok and start is None:
            start = i
        elif not ok and start is not None:
            runs.append((start, i - 1))
            start = None
    if start is not None:
        runs.append((start, len(values) - 1))
    return runs


def segment_series(
    values: np.ndarray, method: str, max_error: float
) -> list[Segment]:
    """Segment a (possibly NaN-holed) series with the named algorithm.

    NaN gaps split the series; each finite run is segmented independently and
    indices refer to the original array.
    """
    if method == "none":
        raise ValueError('segment_series requires a real method, not "none"')
    try:
        algorithm = _ALGORITHMS[method]
    except KeyError:
        raise ValueError(
            f"unknown segmentation method {method!r}; "
            f"choose from {sorted(_ALGORITHMS)}"
        ) from None
    values = np.asarray(values, dtype=np.float64)
    segments: list[Segment] = []
    for start, end in _nan_runs(values):
        segments.extend(algorithm(values[start : end + 1], max_error, start))
    return segments


def reconstruct(segments: Sequence[Segment], length: int) -> np.ndarray:
    """Rebuild a smoothed series from segments; uncovered indices are NaN."""
    out = np.full(length, np.nan, dtype=np.float64)
    for seg in segments:
        if seg.end >= length:
            raise ValueError(f"segment {seg} exceeds series length {length}")
        idx = np.arange(seg.start, seg.end + 1)
        out[idx] = seg.value_start + seg.slope * (idx - seg.start)
    return out


def smooth_series(values: np.ndarray, method: str, max_error: float) -> np.ndarray:
    """Convenience: segment then reconstruct.  ``method == "none"`` is identity."""
    values = np.asarray(values, dtype=np.float64)
    if method == "none":
        return values
    return reconstruct(segment_series(values, method, max_error), values.shape[0])
