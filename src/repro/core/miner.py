"""Miner facades — the public entry points for CAP mining.

:class:`MiscelaMiner` wires the four MISCELA steps together:

1. linear segmentation (inside evolving extraction, per the parameters),
2. evolving-timestamp extraction,
3. proximity graph + connected components,
4. tree-structured CAP search (or the delayed variant when δ > 0).

:class:`NaiveMiner` runs the exhaustive baseline over the same steps 1–3 so
the two are comparable input-for-input.  Both return
:class:`MiningResult`, which carries the CAPs plus the intermediate products
the visualization layer needs (evolving sets, proximity graph) and basic
timing for the caching/efficiency benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .baseline import naive_search
from .delayed import search_delayed
from .evolving import extract_all_evolving
from .parallel import MiningControl, parallel_search_all, parallel_search_delayed
from .parameters import MiningParameters
from .search import search_all
from .spatial import build_proximity_graph, connected_components
from .types import CAP, EvolvingSet, SensorDataset

__all__ = ["MiningResult", "MiscelaMiner", "NaiveMiner"]


@dataclass
class MiningResult:
    """The output of one mining run.

    Attributes
    ----------
    dataset_name, parameters:
        Identify the run (together they form the cache key).
    caps:
        The discovered patterns, strongest support first.
    evolving:
        Per-sensor evolving sets (kept so charts can mark evolution points).
    adjacency:
        The η-proximity graph (kept so maps can draw closeness edges).
    elapsed_seconds:
        Wall-clock time of the mining computation.
    from_cache:
        Set by the cache layer when the result was replayed, not computed.
    """

    dataset_name: str
    parameters: MiningParameters
    caps: list[CAP]
    evolving: Mapping[str, EvolvingSet] = field(default_factory=dict)
    adjacency: Mapping[str, set[str]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    from_cache: bool = False
    # Lazy sensor → CAP-position inverted index serving the map-click hot
    # path; built on first lookup, assumes ``caps`` is not mutated after.
    _sensor_index: dict[str, list[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_caps(self) -> int:
        return len(self.caps)

    def _index(self) -> dict[str, list[int]]:
        if self._sensor_index is None:
            index: dict[str, list[int]] = {}
            for position, cap in enumerate(self.caps):
                for sid in cap.sensor_ids:
                    index.setdefault(sid, []).append(position)
            self._sensor_index = index
        return self._sensor_index

    def caps_containing(self, sensor_id: str) -> list[CAP]:
        """Patterns that include one sensor — the map's click interaction.

        Served from the inverted index (positions stay in caps order), so a
        click costs O(patterns containing the sensor), not O(all patterns).
        """
        return [self.caps[i] for i in self._index().get(sensor_id, ())]

    def correlated_sensors(self, sensor_id: str) -> set[str]:
        """Sensors correlated with the given one via any CAP (highlighting)."""
        correlated: set[str] = set()
        for cap in self.caps_containing(sensor_id):
            correlated |= cap.sensor_ids
        correlated.discard(sensor_id)
        return correlated

    def to_document(self) -> dict[str, object]:
        """JSON-serialisable form stored by the cache / document store."""
        return {
            "dataset": self.dataset_name,
            "parameters": self.parameters.to_document(),
            "caps": [cap.to_document() for cap in self.caps],
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_document(cls, doc: Mapping[str, object]) -> "MiningResult":
        return cls(
            dataset_name=str(doc["dataset"]),
            parameters=MiningParameters.from_document(doc["parameters"]),  # type: ignore[arg-type]
            caps=[CAP.from_document(d) for d in doc["caps"]],  # type: ignore[union-attr]
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),  # type: ignore[arg-type]
            from_cache=True,
        )


class MiscelaMiner:
    """The efficient CAP miner (the paper's MISCELA).

    Parameters
    ----------
    params:
        Mining parameters (ε, η, μ, ψ and extensions).  ``params.n_jobs``
        selects the execution engine for step 4: ``1`` runs serially,
        anything else shards the search across a process pool
        (:mod:`repro.core.parallel`) with identical output.
    spatial_method:
        ``"grid"`` (default) or ``"brute"`` — how the η-graph is built.
    """

    def __init__(self, params: MiningParameters, spatial_method: str = "grid") -> None:
        self.params = params
        self.spatial_method = spatial_method

    def mine(
        self, dataset: SensorDataset, control: MiningControl | None = None
    ) -> MiningResult:
        """Run the four MISCELA steps over a dataset.

        ``control`` (optional) makes the run observable and cancellable: the
        search reports per-shard/per-component progress through it and polls
        it for cooperative cancellation, raising
        :class:`~repro.core.parallel.MiningCancelled` at the next checkpoint
        when requested.  The mined CAPs are identical with or without one.
        """
        start = time.perf_counter()
        if control is not None:
            control.checkpoint()
        evolving = extract_all_evolving(dataset, self.params)
        if control is not None:
            control.checkpoint()
        adjacency = build_proximity_graph(
            list(dataset), self.params.distance_threshold, self.spatial_method
        )
        sensors = list(dataset)
        if self.params.max_delay > 0:
            if control is None:
                caps = search_delayed(
                    sensors,
                    adjacency,
                    evolving,
                    self.params,
                    horizon=dataset.num_timestamps,
                )
            else:
                caps = parallel_search_delayed(
                    sensors, adjacency, evolving, self.params,
                    dataset.num_timestamps, control=control,
                )
        elif control is None:
            caps = search_all(sensors, adjacency, evolving, self.params)
        else:
            caps = parallel_search_all(
                sensors, adjacency, evolving, self.params, control=control
            )
        elapsed = time.perf_counter() - start
        return MiningResult(
            dataset_name=dataset.name,
            parameters=self.params,
            caps=caps,
            evolving=evolving,
            adjacency=adjacency,
            elapsed_seconds=elapsed,
        )

    def components(self, dataset: SensorDataset) -> list[set[str]]:
        """The spatially connected sensor sets (step 3 output), for inspection."""
        adjacency = build_proximity_graph(
            list(dataset), self.params.distance_threshold, self.spatial_method
        )
        return connected_components(adjacency)


class NaiveMiner:
    """Exhaustive baseline miner with identical inputs and outputs.

    Only usable on small components (exponential search); see
    :func:`repro.core.baseline.naive_search`.
    """

    def __init__(
        self,
        params: MiningParameters,
        spatial_method: str = "grid",
        max_component_size: int = 20,
    ) -> None:
        if params.max_delay > 0:
            raise NotImplementedError("the naive baseline mines simultaneous CAPs only")
        self.params = params
        self.spatial_method = spatial_method
        self.max_component_size = max_component_size

    def mine(self, dataset: SensorDataset) -> MiningResult:
        start = time.perf_counter()
        evolving = extract_all_evolving(dataset, self.params)
        adjacency = build_proximity_graph(
            list(dataset), self.params.distance_threshold, self.spatial_method
        )
        caps = naive_search(
            list(dataset),
            adjacency,
            evolving,
            self.params,
            max_component_size=self.max_component_size,
        )
        elapsed = time.perf_counter() - start
        return MiningResult(
            dataset_name=dataset.name,
            parameters=self.params,
            caps=caps,
            evolving=evolving,
            adjacency=adjacency,
            elapsed_seconds=elapsed,
        )
