"""Spatial substrate (MISCELA step 3).

CAPs are only discovered among sensors that are "spatially close" — within
the distance threshold η of each other, connected transitively.  This module
provides:

* :func:`haversine_matrix` — pairwise great-circle distances;
* :class:`GridIndex` — a uniform lat/lon grid over the sensors so that the
  η-neighbour query inspects only nearby cells instead of all pairs;
* :func:`build_proximity_graph` — the η-closeness graph as adjacency sets;
* :func:`connected_components` — the spatially connected sensor sets that
  bound the CAP search space.

The grid index is the default; ``method="brute"`` keeps the O(n²) scan as a
correctness oracle and as the ablation baseline
(``benchmarks/bench_ablation_spatial_index.py``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Mapping, Sequence

import numpy as np

from .types import EARTH_RADIUS_KM, Sensor, haversine_km

__all__ = [
    "haversine_matrix",
    "GridIndex",
    "build_proximity_graph",
    "connected_components",
    "component_of",
]


def haversine_matrix(sensors: Sequence[Sensor]) -> np.ndarray:
    """Symmetric matrix of pairwise haversine distances in kilometres."""
    lat = np.radians(np.array([s.lat for s in sensors], dtype=np.float64))
    lon = np.radians(np.array([s.lon for s in sensors], dtype=np.float64))
    dphi = lat[:, None] - lat[None, :]
    dlmb = lon[:, None] - lon[None, :]
    a = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(lat)[:, None] * np.cos(lat)[None, :] * np.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


class GridIndex:
    """Uniform lat/lon grid for η-radius neighbour queries.

    Cells are sized so that any two points within η kilometres are in the
    same or adjacent cells (cell edge ≥ η in both axes), so a query only
    scans the 3×3 neighbourhood of the probe cell.
    """

    def __init__(self, sensors: Sequence[Sensor], eta_km: float) -> None:
        if eta_km <= 0:
            raise ValueError(f"eta_km must be > 0, got {eta_km}")
        self.sensors = list(sensors)
        self.eta_km = eta_km
        # Degrees of latitude spanning eta kilometres.
        self._dlat = math.degrees(eta_km / EARTH_RADIUS_KM)
        # Longitude degrees shrink with cos(lat); use the worst (largest
        # |lat|) cosine among the sensors so cells are wide enough everywhere.
        max_abs_lat = max((abs(s.lat) for s in self.sensors), default=0.0)
        cos_lat = max(math.cos(math.radians(min(max_abs_lat, 89.0))), 1e-6)
        self._dlon = self._dlat / cos_lat
        # Degree coordinate arrays: a neighbour query gathers its 3×3-cell
        # candidates by index and computes every haversine in one
        # vectorized shot instead of a scalar call per candidate.  Degrees
        # (not pre-converted radians) are kept so the vectorized formula
        # can mirror :func:`repro.core.types.haversine_km` operation for
        # operation — radians *of the coordinate differences* — keeping
        # grid and brute classifications aligned at the η boundary.
        self._lat_deg = np.array([s.lat for s in self.sensors], dtype=np.float64)
        self._lon_deg = np.array([s.lon for s in self.sensors], dtype=np.float64)
        self._lat_rad = np.radians(self._lat_deg)
        cells: dict[tuple[int, int], list[int]] = {}
        for i, sensor in enumerate(self.sensors):
            cells.setdefault(self._cell(sensor.lat, sensor.lon), []).append(i)
        self._cells: dict[tuple[int, int], np.ndarray] = {
            cell: np.array(members, dtype=np.int64)
            for cell, members in cells.items()
        }

    def _cell(self, lat: float, lon: float) -> tuple[int, int]:
        return (int(math.floor(lat / self._dlat)), int(math.floor(lon / self._dlon)))

    def _candidates(self, lat: float, lon: float) -> np.ndarray:
        """Sensor indices in the 3×3 cell neighbourhood of a point."""
        row, col = self._cell(lat, lon)
        chunks = [
            members
            for dr in (-1, 0, 1)
            for dc in (-1, 0, 1)
            if (members := self._cells.get((row + dr, col + dc))) is not None
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def _within(self, lat: float, lon: float, candidates: np.ndarray) -> np.ndarray:
        """Mask over ``candidates`` of those within η km of the point.

        The vectorized form of :func:`repro.core.types.haversine_km` (same
        subtraction-before-radians order); numpy's trig may still differ
        from libm by ~1 ulp, so candidates landing inside a microscopic
        band around η (≈ 1 µm) are re-checked with the scalar function —
        the grid classifies *exactly* like the brute-force path, boundary
        pairs included.
        """
        phi1 = math.radians(lat)
        dphi = np.radians(self._lat_deg[candidates] - lat)
        dlmb = np.radians(self._lon_deg[candidates] - lon)
        a = (
            np.sin(dphi / 2.0) ** 2
            + math.cos(phi1)
            * np.cos(self._lat_rad[candidates])
            * np.sin(dlmb / 2.0) ** 2
        )
        distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))
        mask = distance <= self.eta_km
        band = 1e-9 * max(1.0, self.eta_km)
        for pos in np.flatnonzero(np.abs(distance - self.eta_km) <= band):
            other = self.sensors[int(candidates[pos])]
            mask[pos] = (
                haversine_km(lat, lon, other.lat, other.lon) <= self.eta_km
            )
        return mask

    def neighbours_within(self, index: int) -> list[int]:
        """Indices of sensors within η km of ``sensors[index]`` (excluding it)."""
        probe = self.sensors[index]
        candidates = self._candidates(probe.lat, probe.lon)
        if not candidates.size:
            return []
        keep = self._within(probe.lat, probe.lon, candidates) & (candidates != index)
        return candidates[keep].tolist()

    def query_point(self, lat: float, lon: float) -> list[int]:
        """Indices of sensors within η km of an arbitrary point."""
        candidates = self._candidates(lat, lon)
        if not candidates.size:
            return []
        return candidates[self._within(lat, lon, candidates)].tolist()


def build_proximity_graph(
    sensors: Sequence[Sensor], eta_km: float, method: str = "grid"
) -> dict[str, set[str]]:
    """Adjacency sets of the η-closeness graph, keyed by sensor id.

    Two sensors are adjacent iff their haversine distance is ≤ η km.  Every
    sensor appears as a key, isolated sensors with an empty set.
    """
    if eta_km <= 0:
        raise ValueError(f"eta_km must be > 0, got {eta_km}")
    sensors = list(sensors)
    adjacency: dict[str, set[str]] = {s.sensor_id: set() for s in sensors}
    if len(adjacency) != len(sensors):
        raise ValueError("sensor ids must be unique")
    if method == "grid":
        index = GridIndex(sensors, eta_km)
        for i, sensor in enumerate(sensors):
            for j in index.neighbours_within(i):
                adjacency[sensor.sensor_id].add(sensors[j].sensor_id)
                adjacency[sensors[j].sensor_id].add(sensor.sensor_id)
    elif method == "brute":
        for i, a in enumerate(sensors):
            for b in sensors[i + 1 :]:
                if a.distance_km(b) <= eta_km:
                    adjacency[a.sensor_id].add(b.sensor_id)
                    adjacency[b.sensor_id].add(a.sensor_id)
    else:
        raise ValueError(f'method must be "grid" or "brute", got {method!r}')
    return adjacency


def connected_components(adjacency: Mapping[str, set[str]]) -> list[set[str]]:
    """Connected components of the proximity graph, largest first.

    These are MISCELA's "spatially connected sets of sensors"; the CAP
    search runs independently inside each component.
    """
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in adjacency:
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    component.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def component_of(adjacency: Mapping[str, set[str]], sensor_id: str) -> set[str]:
    """The connected component containing one sensor."""
    if sensor_id not in adjacency:
        raise KeyError(f"unknown sensor id: {sensor_id!r}")
    component = {sensor_id}
    queue = deque([sensor_id])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in component:
                component.add(neighbour)
                queue.append(neighbour)
    return component


def subgraph(adjacency: Mapping[str, set[str]], keep: Iterable[str]) -> dict[str, set[str]]:
    """The proximity graph restricted to a subset of sensors."""
    keep_set = set(keep)
    unknown = keep_set - set(adjacency)
    if unknown:
        raise KeyError(f"unknown sensor ids: {sorted(unknown)}")
    return {node: adjacency[node] & keep_set for node in keep_set}


def is_connected(adjacency: Mapping[str, set[str]], nodes: Iterable[str]) -> bool:
    """Whether the given nodes induce a connected subgraph."""
    nodes = set(nodes)
    if not nodes:
        return False
    start = next(iter(nodes))
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency.get(node, ()):
            if neighbour in nodes and neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return seen == nodes


__all__.extend(["subgraph", "is_connected"])
