"""Spatial substrate (MISCELA step 3).

CAPs are only discovered among sensors that are "spatially close" — within
the distance threshold η of each other, connected transitively.  This module
provides:

* :func:`haversine_matrix` — pairwise great-circle distances;
* :class:`GridIndex` — a uniform lat/lon grid over the sensors so that the
  η-neighbour query inspects only nearby cells instead of all pairs;
* :func:`build_proximity_graph` — the η-closeness graph as adjacency sets;
* :func:`connected_components` — the spatially connected sensor sets that
  bound the CAP search space.

The grid index is the default; ``method="brute"`` keeps the O(n²) scan as a
correctness oracle and as the ablation baseline
(``benchmarks/bench_ablation_spatial_index.py``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Mapping, Sequence

import numpy as np

from .types import EARTH_RADIUS_KM, Sensor, haversine_km

__all__ = [
    "haversine_matrix",
    "GridIndex",
    "build_proximity_graph",
    "connected_components",
    "component_of",
]


def haversine_matrix(sensors: Sequence[Sensor]) -> np.ndarray:
    """Symmetric matrix of pairwise haversine distances in kilometres."""
    lat = np.radians(np.array([s.lat for s in sensors], dtype=np.float64))
    lon = np.radians(np.array([s.lon for s in sensors], dtype=np.float64))
    dphi = lat[:, None] - lat[None, :]
    dlmb = lon[:, None] - lon[None, :]
    a = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(lat)[:, None] * np.cos(lat)[None, :] * np.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


class GridIndex:
    """Uniform lat/lon grid for η-radius neighbour queries.

    Cells are sized so that any two points within η kilometres are in the
    same or adjacent cells (cell edge ≥ η in both axes), so a query only
    scans the 3×3 neighbourhood of the probe cell.
    """

    def __init__(self, sensors: Sequence[Sensor], eta_km: float) -> None:
        if eta_km <= 0:
            raise ValueError(f"eta_km must be > 0, got {eta_km}")
        self.sensors = list(sensors)
        self.eta_km = eta_km
        # Degrees of latitude spanning eta kilometres.
        self._dlat = math.degrees(eta_km / EARTH_RADIUS_KM)
        # Longitude degrees shrink with cos(lat); use the worst (largest
        # |lat|) cosine among the sensors so cells are wide enough everywhere.
        max_abs_lat = max((abs(s.lat) for s in self.sensors), default=0.0)
        cos_lat = max(math.cos(math.radians(min(max_abs_lat, 89.0))), 1e-6)
        self._dlon = self._dlat / cos_lat
        self._cells: dict[tuple[int, int], list[int]] = {}
        for i, sensor in enumerate(self.sensors):
            self._cells.setdefault(self._cell(sensor.lat, sensor.lon), []).append(i)

    def _cell(self, lat: float, lon: float) -> tuple[int, int]:
        return (int(math.floor(lat / self._dlat)), int(math.floor(lon / self._dlon)))

    def neighbours_within(self, index: int) -> list[int]:
        """Indices of sensors within η km of ``sensors[index]`` (excluding it)."""
        probe = self.sensors[index]
        row, col = self._cell(probe.lat, probe.lon)
        found: list[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                for j in self._cells.get((row + dr, col + dc), ()):
                    if j == index:
                        continue
                    other = self.sensors[j]
                    if haversine_km(probe.lat, probe.lon, other.lat, other.lon) <= self.eta_km:
                        found.append(j)
        return found

    def query_point(self, lat: float, lon: float) -> list[int]:
        """Indices of sensors within η km of an arbitrary point."""
        row, col = self._cell(lat, lon)
        found: list[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                for j in self._cells.get((row + dr, col + dc), ()):
                    other = self.sensors[j]
                    if haversine_km(lat, lon, other.lat, other.lon) <= self.eta_km:
                        found.append(j)
        return found


def build_proximity_graph(
    sensors: Sequence[Sensor], eta_km: float, method: str = "grid"
) -> dict[str, set[str]]:
    """Adjacency sets of the η-closeness graph, keyed by sensor id.

    Two sensors are adjacent iff their haversine distance is ≤ η km.  Every
    sensor appears as a key, isolated sensors with an empty set.
    """
    if eta_km <= 0:
        raise ValueError(f"eta_km must be > 0, got {eta_km}")
    sensors = list(sensors)
    adjacency: dict[str, set[str]] = {s.sensor_id: set() for s in sensors}
    if len(adjacency) != len(sensors):
        raise ValueError("sensor ids must be unique")
    if method == "grid":
        index = GridIndex(sensors, eta_km)
        for i, sensor in enumerate(sensors):
            for j in index.neighbours_within(i):
                adjacency[sensor.sensor_id].add(sensors[j].sensor_id)
                adjacency[sensors[j].sensor_id].add(sensor.sensor_id)
    elif method == "brute":
        for i, a in enumerate(sensors):
            for b in sensors[i + 1 :]:
                if a.distance_km(b) <= eta_km:
                    adjacency[a.sensor_id].add(b.sensor_id)
                    adjacency[b.sensor_id].add(a.sensor_id)
    else:
        raise ValueError(f'method must be "grid" or "brute", got {method!r}')
    return adjacency


def connected_components(adjacency: Mapping[str, set[str]]) -> list[set[str]]:
    """Connected components of the proximity graph, largest first.

    These are MISCELA's "spatially connected sets of sensors"; the CAP
    search runs independently inside each component.
    """
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in adjacency:
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    component.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def component_of(adjacency: Mapping[str, set[str]], sensor_id: str) -> set[str]:
    """The connected component containing one sensor."""
    if sensor_id not in adjacency:
        raise KeyError(f"unknown sensor id: {sensor_id!r}")
    component = {sensor_id}
    queue = deque([sensor_id])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in component:
                component.add(neighbour)
                queue.append(neighbour)
    return component


def subgraph(adjacency: Mapping[str, set[str]], keep: Iterable[str]) -> dict[str, set[str]]:
    """The proximity graph restricted to a subset of sensors."""
    keep_set = set(keep)
    unknown = keep_set - set(adjacency)
    if unknown:
        raise KeyError(f"unknown sensor ids: {sorted(unknown)}")
    return {node: adjacency[node] & keep_set for node in keep_set}


def is_connected(adjacency: Mapping[str, set[str]], nodes: Iterable[str]) -> bool:
    """Whether the given nodes induce a connected subgraph."""
    nodes = set(nodes)
    if not nodes:
        return False
    start = next(iter(nodes))
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbour in adjacency.get(node, ()):
            if neighbour in nodes and neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return seen == nodes


__all__.extend(["subgraph", "is_connected"])
