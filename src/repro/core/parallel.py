"""Parallel component-sharded CAP mining engine.

MISCELA's step 3 bounds the search space to spatially connected components,
and inside a component every seed sensor roots an independent branch of the
ESU tree — so one mining run decomposes into shards with no shared state.
This module executes those shards on a process pool and merges the outputs
back into *exactly* the serial result:

* **Sharding** — :func:`plan_shards` turns the component list into work
  units: small components stay whole, oversized ones (estimated cost above
  an even per-worker share) split into runs of canonical seed sensors,
  because each seed's root-level ESU branch is independent of every other
  seed's.  A greedy cost model (:func:`estimate_seed_cost`, estimated tree
  nodes from evolving density, root degree, and component size) packs units
  into balanced shards (LPT) instead of round-robin.

* **Zero-copy handoff** — evolving sets cross the process boundary as one
  flat ``uint64`` presence buffer plus one flat direction buffer
  (:class:`PackedEvolvingStore`), not as per-sensor Python objects.  With
  the ``fork`` start method (Linux, the default here) the buffers are
  inherited copy-on-write — nothing is pickled at all; under ``spawn`` the
  two flat arrays are serialized once per worker.  Workers rebuild
  per-sensor :class:`~repro.core.types.EvolvingSet` views whose ``.bits``
  slice straight into the shared buffer.

* **Deterministic merge** — every unit is tagged with
  ``(component_index, first_seed_rank)``; sorting the tags reproduces the
  serial emission order (components largest-first, seeds in canonical rank
  order), after which the exact serial post-passes run once over the merged
  stream: :func:`~repro.core.search.dedupe_strongest` for the tree search,
  :func:`~repro.core.delayed.finalize_delayed` for the delayed variant, a
  global ``(-support, key)`` sort for the naive baseline.  Callers that
  only want maximal patterns run
  :func:`~repro.core.search.filter_maximal` once over the merged set,
  never per shard.

The engine is selected by ``MiningParameters.n_jobs`` (``1`` = serial,
``0`` = one worker per CPU) and guarantees byte-identical CAP lists for
every worker count — the property tests in ``tests/core/test_parallel.py``
hold it to that.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .bitset import BitsetEvolvingSet
from .parameters import MiningParameters
from .spatial import connected_components, subgraph
from .types import CAP, EvolvingSet, Sensor

__all__ = [
    "resolve_jobs",
    "MiningCancelled",
    "MiningControl",
    "PackedEvolvingStore",
    "ShardUnit",
    "estimate_seed_cost",
    "plan_shards",
    "run_shard_units",
    "merge_tagged",
    "parallel_search_all",
    "parallel_search_delayed",
    "parallel_naive_search",
]


class MiningCancelled(RuntimeError):
    """Raised inside a mining run when its controller requests cancellation.

    Cancellation is cooperative: the engine polls
    :meth:`MiningControl.checkpoint` between independent work units (between
    shard completions on the pooled path, between components on the serial
    path), never mid-component — so a cancelled run leaves no partially
    merged output behind.
    """


@dataclass
class MiningControl:
    """Driver-side hooks a long mining run reports to.

    The async job subsystem (:mod:`repro.jobs`) threads one of these into
    :meth:`repro.core.miner.MiscelaMiner.mine`; anything else that wants
    progress bars or cancellable mining can do the same.

    Parameters
    ----------
    progress:
        Called as ``progress(done, total)`` after each completed work unit
        (component shard).  ``done`` only ever grows.
    should_cancel:
        Polled between work units; returning ``True`` makes the engine raise
        :class:`MiningCancelled` at the next checkpoint.
    profiler:
        Optional :class:`repro.obs.profiler.Profiler` (any object with
        ``record``/``record_unit``).  When attached, the engine records
        per-phase and per-unit wall times; when ``None`` (the default) the
        hot loops pay nothing.
    """

    progress: Callable[[int, int], None] | None = None
    should_cancel: Callable[[], bool] | None = None
    profiler: Any | None = None

    def report(self, done: int, total: int) -> None:
        if self.progress is not None and total > 0:
            self.progress(done, total)

    def checkpoint(self) -> None:
        if self.should_cancel is not None and self.should_cancel():
            raise MiningCancelled("mining run cancelled by its controller")

#: Shards per worker: more shards than workers lets the pool's dynamic
#: scheduling absorb cost-model estimation error.
_SHARDS_PER_WORKER = 4


def resolve_jobs(n_jobs: int) -> int:
    """Translate ``MiningParameters.n_jobs`` into a worker count.

    ``0`` means one worker per CPU actually available to this process
    (respecting the scheduler affinity mask, not just the machine size).
    """
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    if n_jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1
    return n_jobs


class PackedEvolvingStore:
    """All evolving sets as two flat ``uint64`` buffers + per-sensor offsets.

    The bitmap twin of every evolving set (presence words + direction
    words, see :mod:`repro.core.bitset`) is concatenated sensor-by-sensor
    into ``words`` and ``dirs``; ``offsets[i]:offsets[i+1]`` slices sensor
    ``i``'s words and ``horizons[i]`` records its timeline cover.  Two flat
    arrays cross a process boundary with no per-sensor pickling — and with
    ``fork`` they cross it with no copying at all.
    """

    __slots__ = ("sensor_ids", "offsets", "horizons", "words", "dirs")

    def __init__(
        self,
        sensor_ids: tuple[str, ...],
        offsets: np.ndarray,
        horizons: np.ndarray,
        words: np.ndarray,
        dirs: np.ndarray,
    ) -> None:
        self.sensor_ids = sensor_ids
        self.offsets = offsets
        self.horizons = horizons
        self.words = words
        self.dirs = dirs

    @classmethod
    def pack(cls, evolving: Mapping[str, EvolvingSet]) -> "PackedEvolvingStore":
        """Flatten a sensor→evolving-set mapping into shared buffers."""
        sensor_ids = tuple(sorted(evolving))
        word_chunks: list[np.ndarray] = []
        dir_chunks: list[np.ndarray] = []
        sizes = np.zeros(len(sensor_ids), dtype=np.int64)
        horizons = np.zeros(len(sensor_ids), dtype=np.int64)
        for i, sid in enumerate(sensor_ids):
            bits = evolving[sid].bits
            word_chunks.append(bits.words)
            dir_chunks.append(bits.dirs)
            sizes[i] = bits.words.size
            horizons[i] = bits.horizon
        offsets = np.zeros(len(sensor_ids) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        words = (
            np.concatenate(word_chunks) if word_chunks else np.empty(0, np.uint64)
        )
        dirs = np.concatenate(dir_chunks) if dir_chunks else np.empty(0, np.uint64)
        return cls(sensor_ids, offsets, horizons, words, dirs)

    def unpack(self) -> dict[str, EvolvingSet]:
        """Per-sensor evolving sets whose bitmaps are views into the buffers.

        Index/direction arrays are materialized from the bitmaps (exact
        round trip); the ``.bits`` twin each set carries slices the shared
        buffer directly, so the search's word-wise inner loop runs on the
        handed-over memory without a copy.
        """
        out: dict[str, EvolvingSet] = {}
        for i, sid in enumerate(self.sensor_ids):
            lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
            bits = BitsetEvolvingSet(
                self.words[lo:hi], self.dirs[lo:hi], int(self.horizons[i])
            )
            evolving = EvolvingSet(bits.to_indices(), bits.to_directions())
            evolving._bits = bits
            out[sid] = evolving
        return out


@dataclass(frozen=True)
class ShardUnit:
    """One independent piece of a mining run.

    ``seeds is None`` means "the whole component"; otherwise the unit roots
    the tree only at the given seeds (a contiguous run in canonical rank
    order).  ``first_rank`` is ``-1`` for whole components so the merge tag
    ``(component_index, first_rank)`` sorts units back into the serial
    emission order.
    """

    component_index: int
    seeds: tuple[str, ...] | None
    first_rank: int
    cost: float

    @property
    def tag(self) -> tuple[int, int]:
        return (self.component_index, self.first_rank)


def estimate_seed_cost(
    seed: str,
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    component_size: int,
    params: MiningParameters,
) -> float:
    """Estimated search-tree nodes rooted at one seed sensor.

    A heuristic, not a count: the root branches over the seed's η-degree,
    survives roughly in proportion to the seed's evolving support (denser
    sets prune later), and deepens with the component (capped by
    ``max_sensors``).  Direction-aware doubles each expansion; delay δ
    multiplies it by the ``2δ+1`` delay choices.  Only relative magnitudes
    matter — the planner balances shards with it.
    """
    support = len(evolving[seed])
    if support < params.min_support:
        return 1.0
    breadth = 1.0 + len(adjacency[seed])
    if params.direction_aware:
        breadth *= 2.0
    if params.max_delay > 0:
        breadth *= 2.0 * params.max_delay + 1.0
    depth = component_size
    if params.max_sensors is not None:
        depth = min(depth, params.max_sensors)
    return 1.0 + support * breadth * math.log2(depth + 1.0)


def plan_shards(
    components: Sequence[Sequence[str]],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    n_workers: int,
    splittable: bool = True,
) -> list[list[ShardUnit]]:
    """Partition components into cost-balanced shards.

    Components whose estimated cost exceeds an even per-worker share are
    split into contiguous seed runs (when ``splittable``; the naive
    baseline's subset enumeration is not seed-rooted, so it shards at
    component granularity only).  Units are then packed greedily into at
    most ``n_workers * 4`` shards, biggest unit first onto the least
    loaded shard (LPT), which bounds the makespan far tighter than
    round-robin when component sizes are skewed.
    """
    order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    per_component: list[tuple[int, list[str], dict[str, float], float]] = []
    for ci, component in enumerate(components):
        members = sorted(component, key=lambda sid: order[sid])
        costs = {
            sid: estimate_seed_cost(sid, adjacency, evolving, len(members), params)
            for sid in members
        }
        per_component.append((ci, members, costs, sum(costs.values())))
    total = sum(entry[3] for entry in per_component)
    if total <= 0:
        return []
    fair_share = total / max(1, n_workers)
    units: list[ShardUnit] = []
    for ci, members, costs, component_cost in per_component:
        if not splittable or component_cost <= fair_share or len(members) < 2:
            units.append(ShardUnit(ci, None, -1, component_cost))
            continue
        # Oversized: contiguous seed runs of roughly one pool-slot each.
        target = component_cost / (n_workers * _SHARDS_PER_WORKER)
        run: list[str] = []
        run_cost = 0.0
        for sid in members:
            run.append(sid)
            run_cost += costs[sid]
            if run_cost >= target:
                units.append(ShardUnit(ci, tuple(run), order[run[0]], run_cost))
                run, run_cost = [], 0.0
        if run:
            units.append(ShardUnit(ci, tuple(run), order[run[0]], run_cost))
    n_shards = max(1, min(len(units), n_workers * _SHARDS_PER_WORKER))
    shards: list[list[ShardUnit]] = [[] for _ in range(n_shards)]
    loads = [(0.0, i) for i in range(n_shards)]
    heapq.heapify(loads)
    for unit in sorted(units, key=lambda u: (-u.cost, u.tag)):
        load, i = heapq.heappop(loads)
        shards[i].append(unit)
        heapq.heappush(loads, (load + unit.cost, i))
    return [shard for shard in shards if shard]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass
class _RunSpec:
    """Everything a worker needs, shared once per run (fork: zero-copy)."""

    mode: str  # "search" | "delayed" | "naive"
    params: MiningParameters  # n_jobs forced to 1 — workers never nest pools
    adjacency: dict[str, set[str]]
    attributes: dict[str, str]
    components: list[list[str]]
    store: PackedEvolvingStore
    horizon: int = 0
    sensors: tuple[Sensor, ...] = ()
    max_component_size: int = 0


#: Parent-set state inherited by forked workers (or installed by the spawn
#: initializer); the unpacked evolving views and the canonical rank map are
#: cached per worker process.
_SPEC: _RunSpec | None = None
_WORKER_EVOLVING: dict[str, EvolvingSet] | None = None
_WORKER_ORDER: dict[str, int] | None = None


def _install_spec(spec: _RunSpec) -> None:
    global _SPEC, _WORKER_EVOLVING, _WORKER_ORDER
    _SPEC = spec
    _WORKER_EVOLVING = None
    _WORKER_ORDER = None


def _worker_evolving() -> dict[str, EvolvingSet]:
    global _WORKER_EVOLVING
    if _WORKER_EVOLVING is None:
        assert _SPEC is not None
        _WORKER_EVOLVING = _SPEC.store.unpack()
    return _WORKER_EVOLVING


def _worker_order() -> dict[str, int]:
    global _WORKER_ORDER
    if _WORKER_ORDER is None:
        assert _SPEC is not None
        _WORKER_ORDER = {
            sid: i for i, sid in enumerate(sorted(_SPEC.adjacency))
        }
    return _WORKER_ORDER


def run_shard_units(
    mode: str,
    adjacency: Mapping[str, set[str]],
    attributes: Mapping[str, str],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    components: Sequence[Sequence[str]],
    units: Sequence[ShardUnit],
    horizon: int = 0,
    sensors: Sequence[Sensor] = (),
    max_component_size: int = 0,
    order: Mapping[str, int] | None = None,
    control: MiningControl | None = None,
) -> list[tuple[tuple[int, int], list[CAP]]]:
    """Execute shard units against prepared inputs; ``(merge_tag, caps)`` pairs.

    The single execution core behind both engines: the in-process pool
    workers (:func:`_run_shard`) and the distributed shard sub-jobs
    (:mod:`repro.jobs.planner`) run *exactly* this, so a unit produces the
    same caps whether it executes in a forked pool or on another machine's
    worker — the precondition for the distributed merge being byte-identical
    to the serial engine.  With a ``control``, progress is reported and
    cancellation polled between units.
    """
    from .baseline import naive_search
    from .delayed import search_delayed_component
    from .search import search_component

    if order is None:
        order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    profiler = getattr(control, "profiler", None) if control is not None else None
    out: list[tuple[tuple[int, int], list[CAP]]] = []
    for done, unit in enumerate(units, start=1):
        if control is not None:
            control.checkpoint()
        component = components[unit.component_index]
        unit_started = time.perf_counter() if profiler is not None else 0.0
        if mode == "search":
            caps = search_component(
                component, adjacency, attributes, evolving,
                params, seeds=unit.seeds,
            )
        elif mode == "delayed":
            caps = search_delayed_component(
                component, adjacency, attributes, evolving,
                params, horizon, seeds=unit.seeds, order=order,
            )
        else:
            keep = set(component)
            members = [s for s in sensors if s.sensor_id in keep]
            caps = naive_search(
                members, subgraph(adjacency, component), evolving,
                params, max_component_size=max_component_size,
            )
        if profiler is not None:
            # Measured next to the planner's cost estimate — the pair is
            # what calibrating estimate_seed_cost needs.
            seconds = time.perf_counter() - unit_started
            profiler.record("search", seconds)
            profiler.record_unit(
                f"c{unit.component_index}:r{unit.first_rank}",
                seconds,
                cost=unit.cost,
                caps=len(caps),
            )
        out.append((unit.tag, caps))
        if control is not None:
            control.report(done, len(units))
    return out


def merge_tagged(
    tagged: list[tuple[tuple[int, int], list[CAP]]]
) -> list[CAP]:
    """Sort unit outputs by merge tag and concatenate: serial emission order.

    The merge half of the shard protocol — callers then apply the same
    mode-specific post-pass the serial engine ends with
    (``dedupe_strongest`` / ``finalize_delayed`` / the naive support sort).
    """
    tagged = sorted(tagged, key=lambda pair: pair[0])
    return [cap for _tag, caps in tagged for cap in caps]


def _run_shard(shard: list[ShardUnit]) -> list[tuple[tuple[int, int], list[CAP]]]:
    """Execute one shard's units in a pool worker (spec via fork/initializer)."""
    spec = _SPEC
    assert spec is not None
    return run_shard_units(
        spec.mode,
        spec.adjacency,
        spec.attributes,
        _worker_evolving(),
        spec.params,
        spec.components,
        shard,
        horizon=spec.horizon,
        sensors=spec.sensors,
        max_component_size=spec.max_component_size,
        order=_worker_order(),
    )


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_sharded(
    spec: _RunSpec,
    shards: list[list[ShardUnit]],
    n_workers: int,
    control: MiningControl | None = None,
) -> list[CAP]:
    """Run shards on a pool and merge in serial emission order.

    With a ``control``, shards stream back as they finish
    (``imap_unordered`` — the merge re-sorts by tag, so completion order
    never affects output), progress is reported per completed shard, and
    cancellation is checked between completions; a cancel tears the pool
    down via ``Pool.__exit__``'s ``terminate()``.
    """
    ctx = _pool_context()
    forked = ctx.get_start_method() == "fork"
    if forked:
        # Set before the fork so children inherit the buffers copy-on-write.
        _install_spec(spec)
        initializer, initargs = None, ()
    else:  # pragma: no cover - spawn-only platforms
        initializer, initargs = _install_spec, (spec,)
    processes = max(1, min(n_workers, len(shards)))
    try:
        with ctx.Pool(
            processes=processes, initializer=initializer, initargs=initargs
        ) as pool:
            if control is None:
                shard_results = pool.map(_run_shard, shards, chunksize=1)
            else:
                control.checkpoint()
                shard_results = []
                for result in pool.imap_unordered(_run_shard, shards):
                    shard_results.append(result)
                    control.report(len(shard_results), len(shards))
                    control.checkpoint()
    finally:
        if forked:
            _install_spec(None)  # type: ignore[arg-type]
    return merge_tagged([pair for result in shard_results for pair in result])


def _run_serial_components(
    mode: str,
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    components: list[list[str]],
    control: MiningControl,
    horizon: int = 0,
    max_component_size: int = 0,
) -> list[CAP]:
    """In-process component loop with per-component progress/cancellation.

    The controllable twin of the serial fallback: each component runs whole,
    in serial emission order, so the concatenated output is exactly a
    one-unit-per-component sharded run (callers apply the same post-pass as
    for the pooled merge).  Used when a control is attached but the run is
    not worth a process pool.
    """
    from .baseline import naive_search
    from .delayed import search_delayed_component
    from .search import search_component

    attributes = {s.sensor_id: s.attribute for s in sensors}
    order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    profiler = getattr(control, "profiler", None)
    out: list[CAP] = []
    control.checkpoint()
    for done, component in enumerate(components, start=1):
        component_started = time.perf_counter() if profiler is not None else 0.0
        if mode == "search":
            out.extend(
                search_component(component, adjacency, attributes, evolving, params)
            )
        elif mode == "delayed":
            out.extend(
                search_delayed_component(
                    component, adjacency, attributes, evolving, params, horizon,
                    order=order,
                )
            )
        else:
            keep = set(component)
            members = [s for s in sensors if s.sensor_id in keep]
            out.extend(
                naive_search(
                    members, subgraph(adjacency, component), evolving, params,
                    max_component_size=max_component_size,
                )
            )
        if profiler is not None:
            profiler.record("search", time.perf_counter() - component_started)
        control.report(done, len(components))
        control.checkpoint()
    return out


def _mining_components(adjacency: Mapping[str, set[str]]) -> list[list[str]]:
    """Minable components in the serial visit order, members rank-sorted."""
    order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    return [
        sorted(component, key=lambda sid: order[sid])
        for component in connected_components(adjacency)
        if len(component) >= 2
    ]


def _try_sharded(
    mode: str,
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    serial_params: MiningParameters,
    n_workers: int,
    splittable: bool = True,
    horizon: int = 0,
    include_sensors: bool = False,
    max_component_size: int = 0,
    control: MiningControl | None = None,
) -> list[CAP] | None:
    """Plan and run shards; ``None`` when the serial path should handle it.

    The common scaffolding of all three drivers: shard planning, the
    not-worth-a-pool fallback decision, spec assembly, pooled execution,
    and the tag-ordered merge.  With a ``control`` attached, runs that are
    not worth a pool still go through the controllable in-process component
    loop (:func:`_run_serial_components`) so progress and cancellation work
    at every worker count.
    """
    components = _mining_components(adjacency)
    if not components:
        return None
    use_pool = n_workers > 1
    if use_pool:
        shards = plan_shards(
            components, adjacency, evolving, serial_params, n_workers, splittable
        )
        use_pool = len(shards) > 1
    if not use_pool:
        if control is None:
            return None
        return _run_serial_components(
            mode, sensors, adjacency, evolving, serial_params, components,
            control, horizon=horizon, max_component_size=max_component_size,
        )
    spec = _RunSpec(
        mode=mode,
        params=serial_params,
        adjacency=dict(adjacency),
        attributes={s.sensor_id: s.attribute for s in sensors},
        components=components,
        store=PackedEvolvingStore.pack(evolving),
        horizon=horizon,
        sensors=tuple(sensors) if include_sensors else (),
        max_component_size=max_component_size,
    )
    return _run_sharded(spec, shards, n_workers, control)


def parallel_search_all(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    control: MiningControl | None = None,
) -> list[CAP]:
    """Sharded tree search; identical output to serial ``search_all``.

    Callers wanting only maximal patterns run
    :func:`~repro.core.search.filter_maximal` over the returned (merged)
    list, exactly as with the serial path — filtering per shard would
    wrongly keep patterns subsumed across shard boundaries.
    """
    from .search import dedupe_strongest, search_all

    serial_params = params.with_updates(n_jobs=1)
    merged = _try_sharded(
        "search", sensors, adjacency, evolving, serial_params,
        resolve_jobs(params.n_jobs), control=control,
    )
    if merged is None:
        return search_all(sensors, adjacency, evolving, serial_params)
    return dedupe_strongest(merged)


def parallel_search_delayed(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    horizon: int,
    emit_all_assignments: bool = False,
    control: MiningControl | None = None,
) -> list[CAP]:
    """Sharded delayed search; identical output to serial ``search_delayed``."""
    from .delayed import finalize_delayed, search_delayed

    serial_params = params.with_updates(n_jobs=1)
    merged = _try_sharded(
        "delayed", sensors, adjacency, evolving, serial_params,
        resolve_jobs(params.n_jobs), horizon=horizon, control=control,
    )
    if merged is None:
        return search_delayed(
            sensors, adjacency, evolving, serial_params, horizon,
            emit_all_assignments,
        )
    return finalize_delayed(merged, emit_all_assignments)


def parallel_naive_search(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    max_component_size: int = 20,
    control: MiningControl | None = None,
) -> list[CAP]:
    """Component-sharded naive baseline; identical output to serial."""
    from .baseline import naive_search

    serial_params = params.with_updates(n_jobs=1)
    merged = _try_sharded(
        "naive", sensors, adjacency, evolving, serial_params,
        resolve_jobs(params.n_jobs), splittable=False, include_sensors=True,
        max_component_size=max_component_size, control=control,
    )
    if merged is None:
        return naive_search(
            sensors, adjacency, evolving, serial_params, max_component_size
        )
    merged.sort(key=lambda c: (-c.support, c.key()))
    return merged
