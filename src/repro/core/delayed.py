"""Time-delayed CAP mining (the DPD 2020 extension of MISCELA).

The journal version of MISCELA ("discovering simultaneous and time-delayed
correlated attribute patterns") generalises co-evolution: sensor ``s`` may
react up to δ timeline steps *after* the pattern's reference time.  A
delayed CAP assigns each sensor a delay ``d_s ∈ [0, δ]`` (with at least one
sensor at delay 0, which anchors the pattern in time) such that at ≥ ψ
reference timestamps ``t`` every sensor evolves at ``t + d_s``.

Implementation: shifting an evolving set *earlier* by ``d`` turns "evolves at
``t + d``" into "evolves at ``t``", so delayed co-evolution is an ordinary
intersection of shifted sets.  For each sensor set the miner reports the
best delay assignment (maximum support), which is what the analyst wants to
see; enumerating every passing assignment is available via
``emit_all_assignments``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .parameters import MiningParameters
from .spatial import connected_components
from .types import CAP, EvolvingSet, Sensor

__all__ = ["search_delayed", "delayed_support"]


def _shift_earlier(evolving: EvolvingSet, delay: int, horizon: int) -> EvolvingSet:
    """Evolving set re-indexed to reference time (event at t+delay → t)."""
    return evolving.shift(-delay, horizon)


def delayed_support(
    evolving: Mapping[str, EvolvingSet],
    delays: Mapping[str, int],
    horizon: int,
) -> np.ndarray:
    """Reference timestamps where every sensor evolves at its delayed time."""
    items = list(delays.items())
    if not items:
        return np.empty(0, dtype=np.int64)
    first_id, first_delay = items[0]
    common = _shift_earlier(evolving[first_id], first_delay, horizon).indices
    for sid, delay in items[1:]:
        shifted = _shift_earlier(evolving[sid], delay, horizon).indices
        common = np.intersect1d(common, shifted, assume_unique=True)
        if common.size == 0:
            break
    return common


class _DelayedState:
    """A tree node: members with chosen delays and surviving reference times."""

    __slots__ = ("members", "delays", "attrs", "indices")

    def __init__(
        self,
        members: tuple[str, ...],
        delays: tuple[int, ...],
        attrs: frozenset[str],
        indices: np.ndarray,
    ) -> None:
        self.members = members
        self.delays = delays
        self.attrs = attrs
        self.indices = indices


def search_delayed(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    horizon: int,
    emit_all_assignments: bool = False,
) -> list[CAP]:
    """Delayed CAPs over the proximity graph.

    Parameters
    ----------
    horizon:
        Number of timestamps in the dataset timeline (bounds shifted sets).
    emit_all_assignments:
        When true every passing delay assignment becomes its own CAP;
        by default only the maximum-support assignment per sensor set is
        returned.

    Notes
    -----
    With ``params.max_delay == 0`` this reduces exactly to the simultaneous
    search (every delay is forced to 0) — the property tests rely on that.
    """
    if params.direction_aware:
        raise NotImplementedError(
            "direction-aware delayed mining is not part of the reproduction; "
            "use direction_aware=False with max_delay > 0"
        )
    attributes = {s.sensor_id: s.attribute for s in sensors}
    delta = params.max_delay
    order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    results: list[CAP] = []

    def expand(state: _DelayedState, extension: list[str], seed_rank: int) -> None:
        if len(state.members) >= 2:
            multi_ok = (not params.require_multi_attribute) or len(state.attrs) >= 2
            if multi_ok and state.indices.size >= params.min_support:
                # Canonical form: the smallest delay is zero so patterns are
                # anchored (shifting all delays together is the same pattern).
                min_delay = min(state.delays)
                delays = {
                    sid: d - min_delay
                    for sid, d in zip(state.members, state.delays)
                }
                results.append(
                    CAP(
                        sensor_ids=frozenset(state.members),
                        attributes=state.attrs,
                        support=int(state.indices.size),
                        evolving_indices=tuple(int(i) for i in state.indices),
                        delays=delays,
                    )
                )
        if params.max_sensors is not None and len(state.members) >= params.max_sensors:
            return
        member_set = set(state.members)
        pending = list(extension)
        while pending:
            candidate = pending.pop()
            new_attrs = state.attrs | {attributes[candidate]}
            if len(new_attrs) > params.max_attributes:
                continue
            cand_evolving = evolving[candidate]
            if len(cand_evolving) < params.min_support:
                continue
            new_extension: list[str] | None = None
            # The seed is pinned at relative delay 0, so a candidate may lead
            # (negative) or lag (positive) it; the pattern is valid as long
            # as the overall delay span stays within δ.
            lo = min(state.delays)
            hi = max(state.delays)
            for delay in range(-delta, delta + 1):
                if max(hi, delay) - min(lo, delay) > delta:
                    continue
                shifted = _shift_earlier(cand_evolving, delay, horizon).indices
                mask = np.isin(state.indices, shifted, assume_unique=True)
                new_indices = state.indices[mask]
                if new_indices.size < params.min_support:
                    continue
                if new_extension is None:
                    new_extension = _grown_extension(
                        adjacency, order, member_set, candidate, pending, seed_rank
                    )
                expand(
                    _DelayedState(
                        state.members + (candidate,),
                        state.delays + (delay,),
                        new_attrs,
                        new_indices,
                    ),
                    new_extension,
                    seed_rank,
                )

    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        for seed in sorted(component, key=lambda sid: order[sid]):
            seed_evolving = evolving[seed]
            if len(seed_evolving) < params.min_support:
                continue
            seed_rank = order[seed]
            extension = [w for w in adjacency[seed] if order[w] > seed_rank]
            expand(
                _DelayedState(
                    (seed,),
                    (0,),
                    frozenset({attributes[seed]}),
                    seed_evolving.indices,
                ),
                extension,
                seed_rank,
            )

    if emit_all_assignments:
        results.sort(key=lambda c: (-c.support, c.key()))
        return results
    best: dict[tuple[str, ...], CAP] = {}
    for cap in results:
        key = cap.key()
        if key not in best or cap.support > best[key].support:
            best[key] = cap
    out = list(best.values())
    out.sort(key=lambda c: (-c.support, c.key()))
    return out


def _grown_extension(
    adjacency: Mapping[str, set[str]],
    order: Mapping[str, int],
    member_set: set[str],
    candidate: str,
    pending: Sequence[str],
    seed_rank: int,
) -> list[str]:
    """ESU extension growth; mirrors :func:`repro.core.search._grown_extension`."""
    existing = set(pending) | member_set
    for m in member_set:
        existing |= adjacency[m]
    grown = list(pending)
    for w in adjacency[candidate]:
        if order[w] <= seed_rank or w in existing or w == candidate:
            continue
        grown.append(w)
    return grown
