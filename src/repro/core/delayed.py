"""Time-delayed CAP mining (the DPD 2020 extension of MISCELA).

The journal version of MISCELA ("discovering simultaneous and time-delayed
correlated attribute patterns") generalises co-evolution: sensor ``s`` may
react up to δ timeline steps *after* the pattern's reference time.  A
delayed CAP assigns each sensor a delay ``d_s ∈ [0, δ]`` (with at least one
sensor at delay 0, which anchors the pattern in time) such that at ≥ ψ
reference timestamps ``t`` every sensor evolves at ``t + d_s``.

Implementation: shifting an evolving set *earlier* by ``d`` turns "evolves at
``t + d``" into "evolves at ``t``", so delayed co-evolution is an ordinary
intersection of shifted sets.  With the packed-bitmap backend
(``params.evolving_backend == "bitset"``) the shift is a word-level bit
shift, cached per (sensor, delay), and the intersection a word-wise ``AND``
+ popcount; the sorted-array path remains the correctness oracle.  For each
sensor set the miner reports the best delay assignment (maximum support),
which is what the analyst wants to see; enumerating every passing
assignment is available via ``emit_all_assignments``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .bitset import bits_to_indices, popcount
from .parameters import MiningParameters
from .spatial import connected_components
from .types import CAP, EvolvingSet, Sensor

__all__ = ["search_delayed", "search_delayed_component", "delayed_support"]


def _shift_earlier(evolving: EvolvingSet, delay: int, horizon: int) -> EvolvingSet:
    """Evolving set re-indexed to reference time (event at t+delay → t)."""
    return evolving.shift(-delay, horizon)


def delayed_support(
    evolving: Mapping[str, EvolvingSet],
    delays: Mapping[str, int],
    horizon: int,
    backend: str = "bitset",
) -> np.ndarray:
    """Reference timestamps where every sensor evolves at its delayed time.

    ``backend`` selects word-wise ``AND`` over shifted bitmaps
    (``"bitset"``, default) or sorted-array intersection (``"array"``);
    both return identical indices.
    """
    items = list(delays.items())
    if not items:
        return np.empty(0, dtype=np.int64)
    if backend == "bitset":
        first_id, first_delay = items[0]
        common = evolving[first_id].bits.shift(-first_delay, horizon).words
        for sid, delay in items[1:]:
            common = common & evolving[sid].bits.shift(-delay, horizon).words
            if not np.any(common):
                break
        return bits_to_indices(common)
    first_id, first_delay = items[0]
    common = _shift_earlier(evolving[first_id], first_delay, horizon).indices
    for sid, delay in items[1:]:
        shifted = _shift_earlier(evolving[sid], delay, horizon).indices
        common = np.intersect1d(common, shifted, assume_unique=True)
        if common.size == 0:
            break
    return common


class _DelayedState:
    """A tree node: members with chosen delays and surviving reference times.

    ``indices`` holds the sorted reference timestamps on the array backend
    and the packed presence words on the bitset backend; ``support`` caches
    the count so bitmap nodes never materialize index arrays.
    """

    __slots__ = ("members", "delays", "attrs", "indices", "support")

    def __init__(
        self,
        members: tuple[str, ...],
        delays: tuple[int, ...],
        attrs: frozenset[str],
        indices: np.ndarray,
        support: int,
    ) -> None:
        self.members = members
        self.delays = delays
        self.attrs = attrs
        self.indices = indices
        self.support = support


def search_delayed_component(
    component: Sequence[str] | set[str],
    adjacency: Mapping[str, set[str]],
    attributes: Mapping[str, str],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    horizon: int,
    seeds: Sequence[str] | None = None,
    order: Mapping[str, int] | None = None,
) -> list[CAP]:
    """Delayed CAPs rooted inside one connected component, in emission order.

    Returns the raw (pre-dedup) pattern stream for the component so callers
    — the serial driver below and the parallel engine — apply the
    best-assignment selection once over the merged stream.  ``seeds``
    optionally restricts the tree roots (the parallel engine's seed-split
    sharding); ``order`` may pass the precomputed canonical rank map to
    avoid re-sorting the whole adjacency per component.
    """
    delta = params.max_delay
    if order is None:
        order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    use_bits = params.evolving_backend == "bitset"
    results: list[CAP] = []

    # Shifted evolving sets are reused across the whole tree: cache the
    # word-shifted bitmaps and the re-indexed arrays per (sensor, delay),
    # separately — the two stores hold incompatible representations.
    words_cache: dict[tuple[str, int], np.ndarray] = {}
    indices_cache: dict[tuple[str, int], np.ndarray] = {}

    def shifted_words(sid: str, delay: int) -> np.ndarray:
        key = (sid, delay)
        words = words_cache.get(key)
        if words is None:
            words = evolving[sid].bits.shift(-delay, horizon).words
            words_cache[key] = words
        return words

    def shifted_indices(sid: str, delay: int) -> np.ndarray:
        key = (sid, delay)
        indices = indices_cache.get(key)
        if indices is None:
            indices = _shift_earlier(evolving[sid], delay, horizon).indices
            indices_cache[key] = indices
        return indices

    def emit(state: _DelayedState) -> None:
        if len(state.members) < 2:
            return
        if params.require_multi_attribute and len(state.attrs) < 2:
            return
        if state.support < params.min_support:
            return
        # Canonical form: the smallest delay is zero so patterns are
        # anchored (shifting all delays together is the same pattern).
        min_delay = min(state.delays)
        delays = {
            sid: d - min_delay for sid, d in zip(state.members, state.delays)
        }
        indices = bits_to_indices(state.indices) if use_bits else state.indices
        results.append(
            CAP(
                sensor_ids=frozenset(state.members),
                attributes=state.attrs,
                support=state.support,
                evolving_indices=tuple(indices.tolist()),
                delays=delays,
            )
        )

    def expand(state: _DelayedState, extension: list[str], excluded: set[str],
               seed_rank: int) -> None:
        emit(state)
        if params.max_sensors is not None and len(state.members) >= params.max_sensors:
            return
        pending = list(extension)
        while pending:
            candidate = pending.pop()
            new_attrs = state.attrs | {attributes[candidate]}
            if len(new_attrs) > params.max_attributes:
                continue
            cand_evolving = evolving[candidate]
            if len(cand_evolving) < params.min_support:
                continue
            added: list[str] | None = None
            new_extension: list[str] = []
            # The seed is pinned at relative delay 0, so a candidate may lead
            # (negative) or lag (positive) it; the pattern is valid as long
            # as the overall delay span stays within δ.
            lo = min(state.delays)
            hi = max(state.delays)
            for delay in range(-delta, delta + 1):
                if max(hi, delay) - min(lo, delay) > delta:
                    continue
                if use_bits:
                    common = state.indices & shifted_words(candidate, delay)
                    new_support = popcount(common)
                else:
                    mask = np.isin(
                        state.indices,
                        shifted_indices(candidate, delay),
                        assume_unique=True,
                    )
                    common = state.indices[mask]
                    new_support = int(common.size)
                if new_support < params.min_support:
                    continue
                if added is None:
                    added = [w for w in adjacency[candidate] if w not in excluded]
                    excluded.update(added)
                    new_extension = pending + [
                        w for w in added if order[w] > seed_rank
                    ]
                expand(
                    _DelayedState(
                        state.members + (candidate,),
                        state.delays + (delay,),
                        new_attrs,
                        common,
                        new_support,
                    ),
                    new_extension,
                    excluded,
                    seed_rank,
                )
            if added is not None:
                excluded.difference_update(added)

    members = sorted(component, key=lambda sid: order[sid])
    if seeds is not None:
        wanted = set(seeds)
        members = [sid for sid in members if sid in wanted]
    for seed in members:
        seed_evolving = evolving[seed]
        if len(seed_evolving) < params.min_support:
            continue
        seed_rank = order[seed]
        extension = [w for w in adjacency[seed] if order[w] > seed_rank]
        excluded = {seed} | adjacency[seed]
        if use_bits:
            seed_indices: np.ndarray = shifted_words(seed, 0)
        else:
            seed_indices = seed_evolving.indices
        expand(
            _DelayedState(
                (seed,),
                (0,),
                frozenset({attributes[seed]}),
                seed_indices,
                len(seed_evolving),
            ),
            extension,
            excluded,
            seed_rank,
        )
    return results


def finalize_delayed(results: Sequence[CAP], emit_all_assignments: bool) -> list[CAP]:
    """Best delay assignment per sensor set (or all), sorted canonically."""
    if emit_all_assignments:
        out = list(results)
        out.sort(key=lambda c: (-c.support, c.key()))
        return out
    from .search import dedupe_strongest

    return dedupe_strongest(results)


def search_delayed(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    horizon: int,
    emit_all_assignments: bool = False,
) -> list[CAP]:
    """Delayed CAPs over the proximity graph.

    Parameters
    ----------
    horizon:
        Number of timestamps in the dataset timeline (bounds shifted sets).
    emit_all_assignments:
        When true every passing delay assignment becomes its own CAP;
        by default only the maximum-support assignment per sensor set is
        returned.

    Notes
    -----
    With ``params.max_delay == 0`` this reduces exactly to the simultaneous
    search (every delay is forced to 0) — the property tests rely on that.
    With ``params.n_jobs != 1`` the component/seed shards run on a process
    pool (:func:`repro.core.parallel.parallel_search_delayed`) with
    identical output.
    """
    if params.direction_aware:
        raise NotImplementedError(
            "direction-aware delayed mining is not part of the reproduction; "
            "use direction_aware=False with max_delay > 0"
        )
    if params.n_jobs != 1:
        from .parallel import parallel_search_delayed

        return parallel_search_delayed(
            sensors, adjacency, evolving, params, horizon, emit_all_assignments
        )
    attributes = {s.sensor_id: s.attribute for s in sensors}
    order = {sid: i for i, sid in enumerate(sorted(adjacency))}
    results: list[CAP] = []
    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        results.extend(
            search_delayed_component(
                component, adjacency, attributes, evolving, params, horizon,
                order=order,
            )
        )
    return finalize_delayed(results, emit_all_assignments)
