"""Streaming / incremental CAP mining.

Smart-city feeds are continuous ("collected data ... is used for
continuously and cooperatively monitoring urban conditions"), but the demo
system re-mines from scratch per request.  This extension maintains the
expensive intermediate state — per-sensor evolving sets — incrementally as
new measurement batches arrive, so interactive re-mining after an append
skips step 2 entirely and step 3 whenever the fleet is unchanged.

The contract (checked by property tests): after any sequence of
:meth:`StreamingMiner.extend` calls, :meth:`StreamingMiner.mine` returns
exactly what a batch :class:`~repro.core.miner.MiscelaMiner` returns on the
concatenated dataset.

With the ``"bitset"`` evolving backend the per-sensor packed bitmaps
(:mod:`repro.core.bitset`) are maintained incrementally too: each append
copies the old words once and ORs in only the packed tail, so re-mining
after an extend never re-packs the full history.

Limitations (by design):

* the sensor fleet is fixed at construction (new sensors = new miner);
* segmentation must be ``"none"`` — piecewise-linear smoothing is a global
  operation, so incremental evolving extraction under it would not match
  the batch result.
"""

from __future__ import annotations

from datetime import datetime
from typing import Mapping, Sequence

import numpy as np

from .evolving import extract_evolving
from .miner import MiningResult
from .parameters import MiningParameters
from .search import search_all
from .delayed import search_delayed
from .spatial import build_proximity_graph
from .types import EvolvingSet, Sensor, SensorDataset

__all__ = ["StreamingMiner"]


class StreamingMiner:
    """Incremental miner over an append-only measurement stream.

    Parameters
    ----------
    params:
        Mining parameters; ``segmentation`` must be ``"none"``.
    initial:
        The dataset holding the fleet and the first measurements.
    """

    def __init__(self, params: MiningParameters, initial: SensorDataset) -> None:
        if params.segmentation != "none":
            raise ValueError(
                "StreamingMiner requires segmentation='none'; smoothing is a "
                "whole-series operation and cannot be maintained incrementally"
            )
        self.params = params
        self._name = initial.name
        self._sensors: list[Sensor] = list(initial)
        self._timeline: list[datetime] = list(initial.timeline)
        self._values: dict[str, np.ndarray] = {
            s.sensor_id: initial.values(s.sensor_id).copy() for s in self._sensors
        }
        # The η-graph depends only on the fleet: build once.
        self._adjacency = build_proximity_graph(
            self._sensors, params.distance_threshold
        )
        self._evolving: dict[str, EvolvingSet] = {}
        for sensor in self._sensors:
            self._evolving[sensor.sensor_id] = extract_evolving(
                self._values[sensor.sensor_id], params.rate_for(sensor.attribute)
            )
        self._appends = 0
        #: Sensors whose evolving set gained events in the most recent
        #: :meth:`extend` — the seed set for :meth:`affected_components`.
        self.last_changed_sensors: set[str] = set()

    # -- state ------------------------------------------------------------------

    @property
    def num_timestamps(self) -> int:
        return len(self._timeline)

    @property
    def appends(self) -> int:
        """How many extend() batches have been absorbed."""
        return self._appends

    def dataset(self) -> SensorDataset:
        """The current full dataset (a copy; mutating it won't affect the miner)."""
        return SensorDataset(
            self._name,
            self._timeline,
            self._sensors,
            {sid: v.copy() for sid, v in self._values.items()},
        )

    # -- checkpoint / restore ----------------------------------------------------

    def export_state(self) -> dict:
        """A JSON-serialisable checkpoint of the incremental state.

        Mining consumes only the evolving sets, the (fleet-derived)
        η-graph, and the timeline length; :meth:`extend` additionally
        reads one value per sensor — the last one — for the boundary
        transition.  The checkpoint therefore carries exactly those
        pieces, which is what makes *windowed replay* sound: a fresh
        miner built on the base dataset plus :meth:`adopt_state` mines
        byte-identically without the observation history in between.
        """
        last_values: dict[str, float | None] = {}
        for sensor in self._sensors:
            value = float(self._values[sensor.sensor_id][-1])
            last_values[sensor.sensor_id] = None if np.isnan(value) else value
        return {
            "num_timestamps": len(self._timeline),
            "last_timestamp": self._timeline[-1].isoformat(),
            "last_values": last_values,
            "evolving": {
                sid: {
                    "indices": [int(i) for i in ev.indices],
                    "directions": [int(d) for d in ev.directions],
                }
                for sid, ev in self._evolving.items()
            },
        }

    def adopt_state(self, state: Mapping) -> None:
        """Fast-forward a freshly-built miner to an exported checkpoint.

        Must be called before any :meth:`extend`.  The timeline is
        regrown on the sampling grid (appends are grid-validated, so
        positions are computable); values between the base and the
        checkpoint are NaN-padded — only the final value matters to the
        next boundary transition, and evolving status never looks
        further back than one step (``extract_evolving`` differences
        adjacent positions only).  After adoption :meth:`dataset`
        reflects the padded window, not the full history.
        """
        target = int(state["num_timestamps"])
        old_n = len(self._timeline)
        if target < old_n:
            raise ValueError(
                f"checkpoint covers {target} timestamps but the base dataset "
                f"already has {old_n}; cannot rewind a miner"
            )
        if self._appends:
            raise ValueError("adopt_state must precede any extend()")
        if target > old_n:
            interval = self._timeline[1] - self._timeline[0]
            last = self._timeline[-1]
            self._timeline.extend(
                last + interval * step for step in range(1, target - old_n + 1)
            )
        last_values = state.get("last_values", {})
        evolving = state.get("evolving", {})
        for sensor in self._sensors:
            sid = sensor.sensor_id
            if target > old_n:
                padded = np.full(target, np.nan, dtype=np.float64)
                padded[:old_n] = self._values[sid]
                final = last_values.get(sid)
                padded[-1] = np.nan if final is None else float(final)
                self._values[sid] = padded
            checkpoint = evolving.get(sid) or {"indices": [], "directions": []}
            self._evolving[sid] = EvolvingSet(
                np.asarray(checkpoint["indices"], dtype=np.int64),
                np.asarray(checkpoint["directions"], dtype=np.int8),
            )
        self.last_changed_sensors = set()

    # -- appends ----------------------------------------------------------------

    def extend(
        self,
        timeline: Sequence[datetime],
        measurements: Mapping[str, np.ndarray],
    ) -> int:
        """Append a batch of timestamps and measurements.

        Every sensor must provide an array of ``len(timeline)`` values
        (NaN for missing readings).  Timestamps must continue the existing
        grid.  Returns the number of new evolving timestamps discovered
        across all sensors.

        Incremental trick: with ε-thresholded differencing, the evolving
        status of timestamp ``t`` depends only on values at ``t-1`` and
        ``t``, so re-extracting from one step before the append boundary
        and offsetting yields exactly the batch result for the tail.
        """
        timeline = list(timeline)
        if not timeline:
            raise ValueError("timeline batch must be non-empty")
        interval = self._timeline[1] - self._timeline[0]
        expected = self._timeline[-1] + interval
        for i, t in enumerate(timeline):
            if t != expected:
                raise ValueError(
                    f"timestamp {t} breaks the grid; expected {expected} "
                    f"(batch position {i})"
                )
            expected = t + interval
        missing = {s.sensor_id for s in self._sensors} - set(measurements)
        if missing:
            raise ValueError(f"batch lacks measurements for sensors: {sorted(missing)}")

        old_n = len(self._timeline)
        self._timeline.extend(timeline)
        new_events = 0
        changed: set[str] = set()
        for sensor in self._sensors:
            sid = sensor.sensor_id
            batch = np.asarray(measurements[sid], dtype=np.float64)
            if batch.ndim != 1 or batch.shape[0] != len(timeline):
                raise ValueError(
                    f"batch for {sid!r} must be 1-D of length {len(timeline)}, "
                    f"got shape {batch.shape}"
                )
            self._values[sid] = np.concatenate([self._values[sid], batch])
            # Re-extract the tail only: one step of overlap catches the
            # boundary transition (old last value -> first new value).
            tail = self._values[sid][old_n - 1 :]
            tail_evolving = extract_evolving(tail, self.params.rate_for(sensor.attribute))
            offset_indices = tail_evolving.indices + (old_n - 1)
            old = self._evolving[sid]
            merged_indices = np.concatenate([old.indices, offset_indices])
            merged_directions = np.concatenate([old.directions, tail_evolving.directions])
            merged = EvolvingSet(merged_indices, merged_directions)
            if self.params.evolving_backend == "bitset":
                # Incremental word-append: copy the old bitmap once and OR
                # in only the packed tail, instead of re-packing the whole
                # history when the search asks for `.bits`.
                merged._bits = old.bits.extended(
                    offset_indices,
                    tail_evolving.directions,
                    len(self._timeline),
                )
            self._evolving[sid] = merged
            if len(tail_evolving):
                changed.add(sid)
            new_events += len(tail_evolving)
        self._appends += 1
        self.last_changed_sensors = changed
        return new_events

    def affected_components(self) -> list[set[str]]:
        """η-graph components reachable from the last extend's changed sensors.

        CAPs are confined to connected components of the proximity graph,
        and the search consumes only the evolving sets, so when a batch
        changes no evolving set inside a component that component's CAP
        list is provably unchanged.  An empty return therefore means the
        whole re-mine can be skipped: no CAP anywhere could have changed.
        """
        components: list[set[str]] = []
        seen: set[str] = set()
        for sid in sorted(self.last_changed_sensors):
            if sid in seen:
                continue
            component = {sid}
            frontier = [sid]
            while frontier:
                node = frontier.pop()
                for neighbour in self._adjacency.get(node, ()):
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            components.append(component)
        return components

    # -- mining -----------------------------------------------------------------

    def mine(self) -> MiningResult:
        """Mine the current stream state (step 2 and 3 already maintained)."""
        import time

        start = time.perf_counter()
        if self.params.max_delay > 0:
            caps = search_delayed(
                self._sensors, self._adjacency, self._evolving, self.params,
                horizon=len(self._timeline),
            )
        else:
            caps = search_all(self._sensors, self._adjacency, self._evolving, self.params)
        elapsed = time.perf_counter() - start
        return MiningResult(
            dataset_name=self._name,
            parameters=self.params,
            caps=caps,
            evolving=dict(self._evolving),
            adjacency=self._adjacency,
            elapsed_seconds=elapsed,
        )
