"""CAP search (MISCELA step 4).

MISCELA searches each spatially connected sensor set for CAPs by "recursively
conducting the CAP search with gradually expanding spatially close sensors
according to a tree structure".  We realise that tree as an ESU-style
enumeration (Wernicke 2006) of connected subgraphs of the η-proximity graph:

* every connected sensor set is visited **exactly once** (no duplicate work),
* the co-evolving timestamp set shrinks monotonically along a tree path, so
  any state whose support drops below ψ prunes its whole subtree,
* attribute-count and sensor-count bounds prune expansions that could never
  return below the limits.

The module exposes :func:`search_component` (one connected component) and
:func:`search_all` (whole proximity graph), plus :func:`filter_maximal` for
callers that only want maximal patterns.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .parameters import MiningParameters
from .spatial import connected_components
from .types import CAP, EvolvingSet, Sensor

__all__ = ["search_component", "search_all", "filter_maximal"]


class _SearchContext:
    """Immutable-per-run inputs shared by every tree node."""

    __slots__ = ("adjacency", "attributes", "evolving", "params", "order")

    def __init__(
        self,
        adjacency: Mapping[str, set[str]],
        attributes: Mapping[str, str],
        evolving: Mapping[str, EvolvingSet],
        params: MiningParameters,
    ) -> None:
        self.adjacency = adjacency
        self.attributes = attributes
        self.evolving = evolving
        self.params = params
        # A fixed total order on sensors makes the enumeration canonical:
        # each connected set is generated from its smallest member only.
        self.order = {sid: i for i, sid in enumerate(sorted(adjacency))}


def _signs_at(evolving: EvolvingSet, indices: np.ndarray) -> np.ndarray:
    """Directions of ``evolving`` at the given indices (must all be present)."""
    pos = np.searchsorted(evolving.indices, indices)
    return evolving.directions[pos].astype(np.int8)


def _emit(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    indices: np.ndarray,
    out: list[CAP],
) -> None:
    params = ctx.params
    if len(members) < 2:
        return
    if params.require_multi_attribute and len(attrs) < 2:
        return
    if indices.size < params.min_support:
        return
    out.append(
        CAP(
            sensor_ids=frozenset(members),
            attributes=attrs,
            support=int(indices.size),
            evolving_indices=tuple(int(i) for i in indices),
        )
    )


def _expand(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    indices: np.ndarray,
    ref_signs: np.ndarray | None,
    extension: list[str],
    seed_rank: int,
    out: list[CAP],
) -> None:
    """One node of the CAP tree.

    ``members`` is the current connected sensor set, ``indices`` the
    timestamps at which it co-evolves, ``ref_signs`` (direction-aware mode)
    the seed sensor's direction at each of those timestamps, and
    ``extension`` the ESU extension list: sensors that may still be added in
    this subtree.
    """
    params = ctx.params
    _emit(ctx, members, attrs, indices, out)
    if params.max_sensors is not None and len(members) >= params.max_sensors:
        return
    member_set = set(members)
    # Work on a copy we can consume: ESU removes each candidate before
    # recursing so no connected set is generated twice.
    pending = list(extension)
    while pending:
        candidate = pending.pop()
        cand_attr = ctx.attributes[candidate]
        new_attrs = attrs | {cand_attr}
        if len(new_attrs) > params.max_attributes:
            continue
        cand_evolving = ctx.evolving[candidate]
        if len(cand_evolving) < params.min_support:
            continue
        # Timestamps where the grown set still co-evolves.
        mask = np.isin(indices, cand_evolving.indices, assume_unique=True)
        new_indices = indices[mask]
        new_ref: np.ndarray | None = None
        if params.direction_aware and new_indices.size:
            cand_signs = _signs_at(cand_evolving, new_indices)
            base_signs = ref_signs[mask]  # type: ignore[index]
            # Keep timestamps where the candidate moves with a consistent
            # relative direction to the seed.  Both relative orientations
            # (same / opposite) are explored as separate tree branches.
            for relative in (1, -1):
                dir_mask = cand_signs == base_signs * relative
                if int(np.count_nonzero(dir_mask)) < params.min_support:
                    continue
                self_indices = new_indices[dir_mask]
                self_ref = base_signs[dir_mask]
                new_extension = _grown_extension(
                    ctx, member_set, candidate, pending, seed_rank
                )
                _expand(
                    ctx,
                    members + (candidate,),
                    new_attrs,
                    self_indices,
                    self_ref,
                    new_extension,
                    seed_rank,
                    out,
                )
            continue
        if new_indices.size < params.min_support:
            continue
        if params.direction_aware:
            new_ref = ref_signs[mask]  # type: ignore[index]
        new_extension = _grown_extension(ctx, member_set, candidate, pending, seed_rank)
        _expand(
            ctx,
            members + (candidate,),
            new_attrs,
            new_indices,
            new_ref,
            new_extension,
            seed_rank,
            out,
        )


def _grown_extension(
    ctx: _SearchContext,
    member_set: set[str],
    candidate: str,
    pending: Sequence[str],
    seed_rank: int,
) -> list[str]:
    """ESU extension list after adding ``candidate``.

    The new list keeps the not-yet-consumed candidates and adds the
    *exclusive* neighbours of ``candidate``: sensors adjacent to it that are
    neither members nor adjacent to an existing member, and rank after the
    seed.  The exclusivity test is what guarantees exactly-once enumeration.
    """
    order = ctx.order
    adjacency = ctx.adjacency
    existing_neighbourhood = set(pending) | member_set
    for m in member_set:
        existing_neighbourhood |= adjacency[m]
    new_extension = list(pending)
    for w in adjacency[candidate]:
        if order[w] <= seed_rank:
            continue
        if w == candidate or w in existing_neighbourhood:
            continue
        new_extension.append(w)
    return new_extension


def search_component(
    component: Iterable[str],
    adjacency: Mapping[str, set[str]],
    attributes: Mapping[str, str],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
) -> list[CAP]:
    """All CAPs inside one spatially connected sensor set.

    Parameters
    ----------
    component:
        Sensor ids of one connected component of the proximity graph.
    adjacency:
        The full proximity graph (only edges inside the component are used).
    attributes:
        Sensor id → attribute name.
    evolving:
        Sensor id → evolving set (step-2 output).
    params:
        Mining parameters.
    """
    ctx = _SearchContext(adjacency, attributes, evolving, params)
    out: list[CAP] = []
    members = sorted(component, key=lambda sid: ctx.order[sid])
    for seed in members:
        seed_rank = ctx.order[seed]
        seed_evolving = evolving[seed]
        if len(seed_evolving) < params.min_support:
            continue
        extension = [w for w in adjacency[seed] if ctx.order[w] > seed_rank]
        ref = seed_evolving.directions if params.direction_aware else None
        _expand(
            ctx,
            (seed,),
            frozenset({attributes[seed]}),
            seed_evolving.indices,
            ref,
            extension,
            seed_rank,
            out,
        )
    return out


def search_all(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
) -> list[CAP]:
    """CAPs across every connected component of the proximity graph."""
    attributes = {s.sensor_id: s.attribute for s in sensors}
    caps: list[CAP] = []
    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        caps.extend(search_component(component, adjacency, attributes, evolving, params))
    # Direction-aware search can reach one sensor set through both relative
    # orientations; keep the strongest pattern per set.
    best: dict[tuple[str, ...], CAP] = {}
    for cap in caps:
        key = cap.key()
        if key not in best or cap.support > best[key].support:
            best[key] = cap
    caps = list(best.values())
    caps.sort(key=lambda c: (-c.support, c.key()))
    return caps


def filter_maximal(caps: Sequence[CAP]) -> list[CAP]:
    """Only the CAPs whose sensor set is not a subset of another CAP's.

    The miner returns *all* patterns above threshold (like the reference
    implementation); visualizations usually want the maximal ones.
    """
    ordered = sorted(caps, key=lambda c: -len(c.sensor_ids))
    kept: list[CAP] = []
    for cap in ordered:
        if any(cap.sensor_ids < other.sensor_ids for other in kept):
            continue
        kept.append(cap)
    kept.sort(key=lambda c: (-c.support, c.key()))
    return kept
