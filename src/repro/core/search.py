"""CAP search (MISCELA step 4).

MISCELA searches each spatially connected sensor set for CAPs by "recursively
conducting the CAP search with gradually expanding spatially close sensors
according to a tree structure".  We realise that tree as an ESU-style
enumeration (Wernicke 2006) of connected subgraphs of the η-proximity graph:

* every connected sensor set is visited **exactly once** (no duplicate work),
* the co-evolving timestamp set shrinks monotonically along a tree path, so
  any state whose support drops below ψ prunes its whole subtree,
* attribute-count and sensor-count bounds prune expansions that could never
  return below the limits.

Two interchangeable evolving-set backends drive the inner loop, selected by
``params.evolving_backend``:

* ``"bitset"`` (default) — interior tree nodes carry packed ``np.uint64``
  bitmaps (:mod:`repro.core.bitset`): co-evolution intersection is a
  word-wise ``AND`` + popcount, direction consistency is ``XOR``/``AND``,
  and index arrays are materialized only at emit time, so a node allocates
  O(timeline/64) words instead of O(support) int64s;
* ``"array"`` — the original sorted-index intersection, kept as the
  correctness oracle and ablation baseline
  (``benchmarks/bench_ablation_evolving_backend.py``), mirroring how
  :mod:`repro.core.spatial` keeps ``method="brute"`` beside the grid index.

The ESU extension list is grown incrementally: each tree node extends the
excluded-neighbourhood set of its parent by one sensor's adjacency (O(degree)
per expansion) instead of re-uniting every member's adjacency per node.

The module exposes :func:`search_component` (one connected component) and
:func:`search_all` (whole proximity graph), plus :func:`filter_maximal` for
callers that only want maximal patterns.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .bitset import and_words, bits_to_indices, popcount
from .parameters import MiningParameters
from .spatial import connected_components
from .types import CAP, EvolvingSet, Sensor

__all__ = ["search_component", "search_all", "filter_maximal", "dedupe_strongest"]


class _SearchContext:
    """Immutable-per-run inputs shared by every tree node."""

    __slots__ = ("adjacency", "attributes", "evolving", "params", "order")

    def __init__(
        self,
        adjacency: Mapping[str, set[str]],
        attributes: Mapping[str, str],
        evolving: Mapping[str, EvolvingSet],
        params: MiningParameters,
    ) -> None:
        self.adjacency = adjacency
        self.attributes = attributes
        self.evolving = evolving
        self.params = params
        # A fixed total order on sensors makes the enumeration canonical:
        # each connected set is generated from its smallest member only.
        self.order = {sid: i for i, sid in enumerate(sorted(adjacency))}


def _signs_at(evolving: EvolvingSet, indices: np.ndarray) -> np.ndarray:
    """Directions of ``evolving`` at the given indices (must all be present)."""
    pos = np.searchsorted(evolving.indices, indices)
    return evolving.directions[pos].astype(np.int8)


def _emit(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    indices: np.ndarray,
    out: list[CAP],
) -> None:
    params = ctx.params
    if len(members) < 2:
        return
    if params.require_multi_attribute and len(attrs) < 2:
        return
    if indices.size < params.min_support:
        return
    out.append(
        CAP(
            sensor_ids=frozenset(members),
            attributes=attrs,
            support=int(indices.size),
            evolving_indices=tuple(indices.tolist()),
        )
    )


def _grow_excluded(
    adjacency: Mapping[str, set[str]], excluded: set[str], candidate: str
) -> list[str]:
    """Extend the path's excluded-neighbourhood set by one sensor's adjacency.

    Returns the sensors actually added so the caller can undo them when
    backtracking past ``candidate`` — the set is shared (mutated in place)
    along one DFS path, which keeps each expansion O(degree) instead of
    re-uniting every member's adjacency per tree node.  Exclusivity against
    this set is what guarantees exactly-once enumeration: a sensor adjacent
    to any current member can never re-enter a later extension list.
    """
    added = [w for w in adjacency[candidate] if w not in excluded]
    excluded.update(added)
    return added


def _expand(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    indices: np.ndarray,
    ref_signs: np.ndarray | None,
    extension: list[str],
    excluded: set[str],
    seed_rank: int,
    out: list[CAP],
) -> None:
    """One node of the CAP tree (sorted-array backend).

    ``members`` is the current connected sensor set, ``indices`` the
    timestamps at which it co-evolves, ``ref_signs`` (direction-aware mode)
    the seed sensor's direction at each of those timestamps, ``extension``
    the ESU extension list (sensors that may still be added in this
    subtree), and ``excluded`` the members' closed neighbourhood, grown
    incrementally along the path.
    """
    params = ctx.params
    _emit(ctx, members, attrs, indices, out)
    if params.max_sensors is not None and len(members) >= params.max_sensors:
        return
    order = ctx.order
    # Work on a copy we can consume: ESU removes each candidate before
    # recursing so no connected set is generated twice.
    pending = list(extension)
    while pending:
        candidate = pending.pop()
        cand_attr = ctx.attributes[candidate]
        new_attrs = attrs | {cand_attr}
        if len(new_attrs) > params.max_attributes:
            continue
        cand_evolving = ctx.evolving[candidate]
        if len(cand_evolving) < params.min_support:
            continue
        # Timestamps where the grown set still co-evolves.
        mask = np.isin(indices, cand_evolving.indices, assume_unique=True)
        new_indices = indices[mask]
        if params.direction_aware and new_indices.size:
            cand_signs = _signs_at(cand_evolving, new_indices)
            base_signs = ref_signs[mask]  # type: ignore[index]
            added = _grow_excluded(ctx.adjacency, excluded, candidate)
            new_extension = pending + [
                w for w in added if order[w] > seed_rank
            ]
            # Keep timestamps where the candidate moves with a consistent
            # relative direction to the seed.  Both relative orientations
            # (same / opposite) are explored as separate tree branches.
            for relative in (1, -1):
                dir_mask = cand_signs == base_signs * relative
                if int(np.count_nonzero(dir_mask)) < params.min_support:
                    continue
                _expand(
                    ctx,
                    members + (candidate,),
                    new_attrs,
                    new_indices[dir_mask],
                    base_signs[dir_mask],
                    new_extension,
                    excluded,
                    seed_rank,
                    out,
                )
            excluded.difference_update(added)
            continue
        if new_indices.size < params.min_support:
            continue
        new_ref = ref_signs[mask] if params.direction_aware else None  # type: ignore[index]
        added = _grow_excluded(ctx.adjacency, excluded, candidate)
        new_extension = pending + [w for w in added if order[w] > seed_rank]
        _expand(
            ctx,
            members + (candidate,),
            new_attrs,
            new_indices,
            new_ref,
            new_extension,
            excluded,
            seed_rank,
            out,
        )
        excluded.difference_update(added)


def _emit_bits(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    words: np.ndarray,
    support: int,
    out: list[CAP],
) -> None:
    """Emit a CAP from a bitmap node — indices materialize only here."""
    params = ctx.params
    if len(members) < 2:
        return
    if params.require_multi_attribute and len(attrs) < 2:
        return
    if support < params.min_support:
        return
    indices = bits_to_indices(words)
    out.append(
        CAP(
            sensor_ids=frozenset(members),
            attributes=attrs,
            support=support,
            evolving_indices=tuple(indices.tolist()),
        )
    )


def _expand_bits(
    ctx: _SearchContext,
    members: tuple[str, ...],
    attrs: frozenset[str],
    words: np.ndarray,
    support: int,
    ref_dirs: np.ndarray | None,
    extension: list[str],
    excluded: set[str],
    seed_rank: int,
    out: list[CAP],
) -> None:
    """One node of the CAP tree (packed-bitmap backend).

    ``words`` holds the surviving co-evolution timestamps as presence bits
    and ``ref_dirs`` (direction-aware mode) the seed's direction bits; both
    stay packed along the whole path — intersection is ``AND``, direction
    consistency ``XOR``/``AND-NOT``, support a popcount.
    """
    params = ctx.params
    _emit_bits(ctx, members, attrs, words, support, out)
    if params.max_sensors is not None and len(members) >= params.max_sensors:
        return
    order = ctx.order
    pending = list(extension)
    while pending:
        candidate = pending.pop()
        cand_attr = ctx.attributes[candidate]
        new_attrs = attrs | {cand_attr}
        if len(new_attrs) > params.max_attributes:
            continue
        cand_evolving = ctx.evolving[candidate]
        if len(cand_evolving) < params.min_support:
            continue
        cand_bits = cand_evolving.bits
        common = and_words(words, cand_bits.words)
        if params.direction_aware:
            n = common.size
            differs = ref_dirs[:n] ^ cand_bits.dirs[:n]  # type: ignore[index]
            added = _grow_excluded(ctx.adjacency, excluded, candidate)
            new_extension = pending + [w for w in added if order[w] > seed_rank]
            # Same / opposite relative orientation, as separate branches.
            for branch_words in (common & ~differs, common & differs):
                branch_support = popcount(branch_words)
                if branch_support < params.min_support:
                    continue
                _expand_bits(
                    ctx,
                    members + (candidate,),
                    new_attrs,
                    branch_words,
                    branch_support,
                    ref_dirs[:n],  # type: ignore[index]
                    new_extension,
                    excluded,
                    seed_rank,
                    out,
                )
            excluded.difference_update(added)
            continue
        new_support = popcount(common)
        if new_support < params.min_support:
            continue
        added = _grow_excluded(ctx.adjacency, excluded, candidate)
        new_extension = pending + [w for w in added if order[w] > seed_rank]
        _expand_bits(
            ctx,
            members + (candidate,),
            new_attrs,
            common,
            new_support,
            None,
            new_extension,
            excluded,
            seed_rank,
            out,
        )
        excluded.difference_update(added)


def search_component(
    component: Iterable[str],
    adjacency: Mapping[str, set[str]],
    attributes: Mapping[str, str],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
    seeds: Iterable[str] | None = None,
) -> list[CAP]:
    """All CAPs inside one spatially connected sensor set.

    Parameters
    ----------
    component:
        Sensor ids of one connected component of the proximity graph.
    adjacency:
        The full proximity graph (only edges inside the component are used).
    attributes:
        Sensor id → attribute name.
    evolving:
        Sensor id → evolving set (step-2 output).
    params:
        Mining parameters; ``params.evolving_backend`` selects the
        packed-bitmap fast path or the sorted-array oracle.
    seeds:
        Optional subset of the component to use as tree roots.  Each seed's
        root-level ESU branch is independent of every other seed's, so the
        parallel engine (:mod:`repro.core.parallel`) splits oversized
        components into seed runs; ``None`` (default) roots at every member.
    """
    ctx = _SearchContext(adjacency, attributes, evolving, params)
    use_bits = params.evolving_backend == "bitset"
    out: list[CAP] = []
    members = sorted(component, key=lambda sid: ctx.order[sid])
    if seeds is not None:
        wanted = set(seeds)
        members = [sid for sid in members if sid in wanted]
    for seed in members:
        seed_rank = ctx.order[seed]
        seed_evolving = evolving[seed]
        if len(seed_evolving) < params.min_support:
            continue
        extension = [w for w in adjacency[seed] if ctx.order[w] > seed_rank]
        excluded = {seed} | adjacency[seed]
        if use_bits:
            seed_bits = seed_evolving.bits
            _expand_bits(
                ctx,
                (seed,),
                frozenset({attributes[seed]}),
                seed_bits.words,
                len(seed_evolving),
                seed_bits.dirs if params.direction_aware else None,
                extension,
                excluded,
                seed_rank,
                out,
            )
        else:
            ref = seed_evolving.directions if params.direction_aware else None
            _expand(
                ctx,
                (seed,),
                frozenset({attributes[seed]}),
                seed_evolving.indices,
                ref,
                extension,
                excluded,
                seed_rank,
                out,
            )
    return out


def dedupe_strongest(caps: Iterable[CAP]) -> list[CAP]:
    """Strongest pattern per sensor set, sorted by (-support, key).

    Direction-aware search can reach one sensor set through both relative
    orientations; first-seen wins ties, so callers must present CAPs in the
    serial emission order (components largest-first, seeds in rank order) —
    the parallel engine's deterministic merge preserves exactly that.
    """
    best: dict[tuple[str, ...], CAP] = {}
    for cap in caps:
        key = cap.key()
        if key not in best or cap.support > best[key].support:
            best[key] = cap
    out = list(best.values())
    out.sort(key=lambda c: (-c.support, c.key()))
    return out


def search_all(
    sensors: Sequence[Sensor],
    adjacency: Mapping[str, set[str]],
    evolving: Mapping[str, EvolvingSet],
    params: MiningParameters,
) -> list[CAP]:
    """CAPs across every connected component of the proximity graph.

    With ``params.n_jobs != 1`` the components are sharded across a process
    pool (:func:`repro.core.parallel.parallel_search_all`); the result is
    identical to the serial path for any worker count.
    """
    if params.n_jobs != 1:
        from .parallel import parallel_search_all

        return parallel_search_all(sensors, adjacency, evolving, params)
    attributes = {s.sensor_id: s.attribute for s in sensors}
    caps: list[CAP] = []
    for component in connected_components(adjacency):
        if len(component) < 2:
            continue
        caps.extend(search_component(component, adjacency, attributes, evolving, params))
    return dedupe_strongest(caps)


def filter_maximal(caps: Sequence[CAP]) -> list[CAP]:
    """Only the CAPs whose sensor set is not a strict subset of another's.

    The miner returns *all* patterns above threshold (like the reference
    implementation); visualizations usually want the maximal ones.

    Sensor sets are packed into integer bitmasks and kept masks are indexed
    per sensor, so each CAP is subset-checked only against the kept patterns
    sharing its rarest member (instead of the O(n²) all-pairs scan) — the
    check itself is a single ``mask & kept == mask`` word operation.
    """
    sensor_bit: dict[str, int] = {}
    for cap in caps:
        for sid in cap.sensor_ids:
            if sid not in sensor_bit:
                sensor_bit[sid] = len(sensor_bit)
    ordered = sorted(caps, key=lambda c: -len(c.sensor_ids))
    kept: list[CAP] = []
    kept_masks_by_sensor: dict[str, list[int]] = {}
    for cap in ordered:
        mask = 0
        for sid in cap.sensor_ids:
            mask |= 1 << sensor_bit[sid]
        # Any superset among the kept caps must contain every member, so
        # scanning the member with the fewest kept occurrences suffices.
        buckets = [kept_masks_by_sensor.get(sid, ()) for sid in cap.sensor_ids]
        rarest = min(buckets, key=len)
        if any(mask & other == mask and other != mask for other in rarest):
            continue
        kept.append(cap)
        for sid in cap.sensor_ids:
            kept_masks_by_sensor.setdefault(sid, []).append(mask)
    kept.sort(key=lambda c: (-c.support, c.key()))
    return kept
