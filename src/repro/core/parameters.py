"""Mining parameters (Section 2.1 of the paper).

The four user-facing parameters of CAP mining, plus the knobs the MISCELA
papers add (segmentation method, direction-aware co-evolution, maximum time
delay).  ``MiningParameters`` is immutable and hashable so it can serve
directly as a cache key component (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["MiningParameters", "SEGMENTATION_METHODS", "EVOLVING_BACKENDS"]

#: Linear-segmentation algorithms offered by :mod:`repro.core.segmentation`.
SEGMENTATION_METHODS = ("none", "sliding_window", "bottom_up", "top_down")

#: Evolving-set representations the mining stack can run on.  ``"bitset"``
#: (default) intersects packed word arrays (:mod:`repro.core.bitset`);
#: ``"array"`` keeps the sorted-index path as the correctness oracle and
#: ablation baseline.
EVOLVING_BACKENDS = ("array", "bitset")


@dataclass(frozen=True, slots=True)
class MiningParameters:
    """User-specified parameters of CAP mining.

    Parameters
    ----------
    evolving_rate:
        ε — changes smaller than this are treated as "no change" when
        extracting evolving timestamps.  Must be non-negative.  Measured in
        the unit of the attribute; attribute-specific overrides can be given
        via ``evolving_rate_per_attribute``.
    distance_threshold:
        η — two sensors closer than this many kilometres are "spatially
        close".  Must be positive.
    max_attributes:
        μ — upper bound on the number of distinct attributes in a CAP.
        Must be at least 2 (a CAP correlates *multiple* attributes).
    min_support:
        ψ — minimum number of co-evolving timestamps.  Must be at least 1.
    max_sensors:
        Optional cap on CAP size in sensors (the MISCELA implementation
        bounds pattern size to keep the search tractable).  ``None`` means
        unbounded.
    segmentation:
        Which linear-segmentation filter to run before extracting evolving
        timestamps (MISCELA step 1).  ``"none"`` skips filtering.
    segmentation_error:
        Maximum residual error allowed per segment for the segmentation
        algorithms.
    direction_aware:
        When true, a co-evolution additionally requires a *consistent*
        direction pattern across the sensor set at the shared timestamps
        (the MDM 2019 definition records direction patterns; the demo paper
        uses the simpler "change at the same timestamp").
    require_multi_attribute:
        The paper restricts CAPs to multiple attributes but notes "this
        restriction can be easily removed" — set to ``False`` to remove it.
    max_delay:
        δ — maximum time delay (in timeline steps) for the time-delayed
        extension (DPD 2020).  ``0`` mines simultaneous CAPs only.
    evolving_rate_per_attribute:
        Optional per-attribute ε overrides, e.g. ``{"temperature": 0.5}``.
    evolving_backend:
        Representation the search intersects evolving sets with.
        ``"bitset"`` (default) runs co-evolution as word-wise ``AND`` +
        popcount over packed bitmaps; ``"array"`` keeps the sorted-index
        intersection as the correctness oracle and ablation baseline
        (``benchmarks/bench_ablation_evolving_backend.py``).
    n_jobs:
        Worker processes for the CAP search (:mod:`repro.core.parallel`).
        ``1`` (default) runs today's serial path, ``0`` means one worker
        per available CPU, ``n > 1`` uses exactly ``n`` workers.  Purely an
        execution knob: the mined CAPs are identical for every value, so it
        is excluded from :meth:`to_document` (and therefore from cache
        keys) while still being accepted by :meth:`from_document`.
    """

    evolving_rate: float
    distance_threshold: float
    max_attributes: int
    min_support: int
    max_sensors: int | None = None
    segmentation: str = "none"
    segmentation_error: float = 0.0
    direction_aware: bool = False
    require_multi_attribute: bool = True
    max_delay: int = 0
    evolving_rate_per_attribute: Mapping[str, float] = field(default_factory=dict)
    evolving_backend: str = "bitset"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.evolving_rate < 0:
            raise ValueError(f"evolving_rate must be >= 0, got {self.evolving_rate}")
        if self.distance_threshold <= 0:
            raise ValueError(
                f"distance_threshold must be > 0, got {self.distance_threshold}"
            )
        if self.max_attributes < 2 and self.require_multi_attribute:
            raise ValueError(
                f"max_attributes must be >= 2 for multi-attribute CAPs, "
                f"got {self.max_attributes}"
            )
        if self.max_attributes < 1:
            raise ValueError(f"max_attributes must be >= 1, got {self.max_attributes}")
        if self.min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {self.min_support}")
        if self.max_sensors is not None and self.max_sensors < 2:
            raise ValueError(f"max_sensors must be >= 2, got {self.max_sensors}")
        if self.segmentation not in SEGMENTATION_METHODS:
            raise ValueError(
                f"segmentation must be one of {SEGMENTATION_METHODS}, "
                f"got {self.segmentation!r}"
            )
        if self.segmentation_error < 0:
            raise ValueError(
                f"segmentation_error must be >= 0, got {self.segmentation_error}"
            )
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.evolving_backend not in EVOLVING_BACKENDS:
            raise ValueError(
                f"evolving_backend must be one of {EVOLVING_BACKENDS}, "
                f"got {self.evolving_backend!r}"
            )
        if self.n_jobs < 0:
            raise ValueError(
                f"n_jobs must be >= 0 (0 = one worker per CPU), got {self.n_jobs}"
            )
        for attr, rate in self.evolving_rate_per_attribute.items():
            if rate < 0:
                raise ValueError(
                    f"evolving_rate override for {attr!r} must be >= 0, got {rate}"
                )
        # Freeze the mapping so the dataclass stays hashable-by-value.
        object.__setattr__(
            self,
            "evolving_rate_per_attribute",
            dict(self.evolving_rate_per_attribute),
        )

    def rate_for(self, attribute: str) -> float:
        """The evolving rate ε to use for one attribute."""
        return self.evolving_rate_per_attribute.get(attribute, self.evolving_rate)

    def with_updates(self, **changes: Any) -> "MiningParameters":
        """A copy with some fields replaced (for parameter sweeps)."""
        return replace(self, **changes)

    # -- serialisation (cache keys, API payloads) ---------------------------

    def to_document(self) -> dict[str, Any]:
        """Canonical JSON-serialisable form used for cache keys and the API.

        ``n_jobs`` is deliberately omitted: the parallel engine guarantees
        identical CAPs for any worker count, so two requests differing only
        in ``n_jobs`` must share one cache entry.
        """
        return {
            "evolving_rate": float(self.evolving_rate),
            "distance_threshold": float(self.distance_threshold),
            "max_attributes": int(self.max_attributes),
            "min_support": int(self.min_support),
            "max_sensors": None if self.max_sensors is None else int(self.max_sensors),
            "segmentation": self.segmentation,
            "segmentation_error": float(self.segmentation_error),
            "direction_aware": bool(self.direction_aware),
            "require_multi_attribute": bool(self.require_multi_attribute),
            "max_delay": int(self.max_delay),
            "evolving_rate_per_attribute": {
                k: float(v)
                for k, v in sorted(self.evolving_rate_per_attribute.items())
            },
            "evolving_backend": self.evolving_backend,
        }

    @classmethod
    def from_document(cls, doc: Mapping[str, Any]) -> "MiningParameters":
        known = {
            "evolving_rate",
            "distance_threshold",
            "max_attributes",
            "min_support",
            "max_sensors",
            "segmentation",
            "segmentation_error",
            "direction_aware",
            "require_multi_attribute",
            "max_delay",
            "evolving_rate_per_attribute",
            "evolving_backend",
            "n_jobs",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown parameter fields: {sorted(unknown)}")
        missing = {"evolving_rate", "distance_threshold", "max_attributes", "min_support"} - set(doc)
        if missing:
            raise ValueError(f"missing required parameter fields: {sorted(missing)}")
        return cls(**dict(doc))

    def __hash__(self) -> int:
        return hash(
            (
                self.evolving_rate,
                self.distance_threshold,
                self.max_attributes,
                self.min_support,
                self.max_sensors,
                self.segmentation,
                self.segmentation_error,
                self.direction_aware,
                self.require_multi_attribute,
                self.max_delay,
                tuple(sorted(self.evolving_rate_per_attribute.items())),
                self.evolving_backend,
                self.n_jobs,
            )
        )
