"""Correlation statistics over datasets and mining results.

Quantitative companions to the visual analysis: co-evolution rates between
sensor pairs, attribute-pair pattern counts (which attribute combinations
correlate, and how strongly), and the geographic-axis statistics behind the
paper's China scenario (east–west vs. north–south correlation).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from ..core.evolving import extract_evolving
from ..core.types import CAP, EvolvingSet, Sensor, SensorDataset

__all__ = [
    "co_evolution_rate",
    "pairwise_co_evolution",
    "attribute_pair_counts",
    "cap_summary",
    "axis_alignment",
    "axis_correlation_report",
]


def co_evolution_rate(a: EvolvingSet, b: EvolvingSet, backend: str = "bitset") -> float:
    """Jaccard similarity of two evolving sets.

    1.0 means the sensors always change together; 0.0 never.  This is the
    symmetric normalisation of the paper's raw support count.  The shared
    count is a word-wise ``AND`` + popcount over the packed bitmaps by
    default (``backend="bitset"``); ``backend="array"`` keeps the sorted
    intersection as the oracle — both give identical rates.
    """
    if len(a) == 0 and len(b) == 0:
        return 0.0
    if backend == "bitset":
        shared = a.bits.intersect_count(b.bits)
    else:
        shared = np.intersect1d(a.indices, b.indices, assume_unique=True).size
    union = len(a) + len(b) - shared
    return shared / union if union else 0.0


def pairwise_co_evolution(
    dataset: SensorDataset,
    evolving: Mapping[str, EvolvingSet],
    sensor_ids: Sequence[str] | None = None,
    backend: str = "bitset",
) -> dict[tuple[str, str], float]:
    """Co-evolution rate for every sensor pair (or a subset).

    ``backend`` is forwarded to :func:`co_evolution_rate` — pass a mining
    run's ``params.evolving_backend`` to keep an ablation end-to-end on one
    representation (both give identical rates).
    """
    ids = list(sensor_ids) if sensor_ids is not None else list(dataset.sensor_ids)
    rates: dict[tuple[str, str], float] = {}
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            key = (a, b) if a <= b else (b, a)
            rates[key] = co_evolution_rate(evolving[a], evolving[b], backend)
    return rates


def attribute_pair_counts(caps: Sequence[CAP]) -> Counter:
    """How often each attribute pair appears together across CAPs.

    The demo's "we can find correlated patterns among temperatures and
    traffic volumes" reads straight off this counter.
    """
    counts: Counter = Counter()
    for cap in caps:
        attrs = sorted(cap.attributes)
        for i, a in enumerate(attrs):
            for b in attrs[i + 1 :]:
                counts[(a, b)] += 1
    return counts


def cap_summary(caps: Sequence[CAP]) -> dict[str, object]:
    """Aggregate statistics of a CAP set (the results-page summary strip)."""
    if not caps:
        return {
            "num_caps": 0,
            "max_support": 0,
            "mean_support": 0.0,
            "size_histogram": {},
            "attribute_histogram": {},
        }
    sizes = Counter(cap.size for cap in caps)
    attr_counts = Counter(cap.num_attributes for cap in caps)
    supports = [cap.support for cap in caps]
    return {
        "num_caps": len(caps),
        "max_support": max(supports),
        "mean_support": sum(supports) / len(supports),
        "size_histogram": dict(sorted(sizes.items())),
        "attribute_histogram": dict(sorted(attr_counts.items())),
    }


def axis_alignment(a: Sensor, b: Sensor) -> str:
    """Classify a sensor pair's geographic alignment.

    ``"east-west"`` when the pair's longitude separation dominates,
    ``"north-south"`` when latitude does (scaled by cos(lat) so degrees are
    comparable), ``"mixed"`` when neither dominates by 2×.
    """
    dlat = abs(a.lat - b.lat)
    mean_lat = math.radians((a.lat + b.lat) / 2.0)
    dlon = abs(a.lon - b.lon) * math.cos(mean_lat)
    if dlon >= 2.0 * dlat:
        return "east-west"
    if dlat >= 2.0 * dlon:
        return "north-south"
    return "mixed"


def axis_correlation_report(
    dataset: SensorDataset, caps: Sequence[CAP], min_km: float = 1.0
) -> dict[str, int]:
    """Count CAP sensor pairs by geographic axis — the China wind scenario.

    Only pairs at least ``min_km`` apart count (co-located sensors in one
    station have no meaningful axis).  The paper's claim is that pairs
    inside patterns skew heavily east–west when pollution rides the wind.
    """
    counts = {"east-west": 0, "north-south": 0, "mixed": 0}
    for cap in caps:
        members = sorted(cap.sensor_ids)
        for i, sid_a in enumerate(members):
            a = dataset.sensor(sid_a)
            for sid_b in members[i + 1 :]:
                b = dataset.sensor(sid_b)
                if a.distance_km(b) < min_km:
                    continue
                counts[axis_alignment(a, b)] += 1
    return counts
