"""Plain-text / Markdown result summaries.

The HTML report (``repro.viz.report``) is for browsers; pipelines and
notebooks want something greppable.  :func:`result_to_markdown` renders a
mining result as a self-contained Markdown document: parameters, headline
statistics, attribute-pair counts, geographic-axis breakdown, and the top
patterns — the textual twin of the Figure-3 page.
"""

from __future__ import annotations

from typing import Sequence

from ..core.miner import MiningResult
from ..core.types import CAP, SensorDataset
from .statistics import attribute_pair_counts, axis_correlation_report, cap_summary

__all__ = ["result_to_markdown", "caps_to_table"]


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def caps_to_table(caps: Sequence[CAP], limit: int = 10) -> str:
    """Top patterns as a Markdown table (support, attributes, sensors, delays)."""
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    rows = []
    for cap in list(caps)[:limit]:
        delays = (
            ", ".join(f"{sid}+{d}" for sid, d in sorted(cap.delays.items()) if d)
            if cap.is_delayed
            else "-"
        )
        rows.append(
            (
                cap.support,
                ", ".join(sorted(cap.attributes)),
                ", ".join(sorted(cap.sensor_ids)),
                delays,
            )
        )
    return _md_table(["support", "attributes", "sensors", "delays"], rows)


def result_to_markdown(
    dataset: SensorDataset,
    result: MiningResult,
    top: int = 10,
    include_axis_report: bool = True,
) -> str:
    """A full mining result as a Markdown document."""
    params = result.parameters
    summary = cap_summary(result.caps)
    parts: list[str] = [
        f"# CAP mining report — {dataset.name}",
        "",
        f"*{len(dataset)} sensors, {dataset.num_timestamps} timestamps, "
        f"{dataset.num_records} records; "
        f"mined in {result.elapsed_seconds:.3f}s"
        f"{' (from cache)' if result.from_cache else ''}*",
        "",
        "## Parameters",
        "",
        _md_table(
            ["parameter", "value"],
            [
                ("evolving rate ε", params.evolving_rate),
                ("distance threshold η (km)", params.distance_threshold),
                ("max attributes μ", params.max_attributes),
                ("min support ψ", params.min_support),
                ("max delay δ", params.max_delay),
                ("direction aware", params.direction_aware),
                ("segmentation", params.segmentation),
            ],
        ),
        "",
        "## Findings",
        "",
        f"- **{summary['num_caps']}** patterns "
        f"(max support {summary['max_support']}, "
        f"mean {summary['mean_support']:.1f})"
        if summary["num_caps"]
        else "- no patterns under these parameters",
    ]
    if result.caps:
        pair_rows = [
            (f"{a} × {b}", count)
            for (a, b), count in attribute_pair_counts(result.caps).most_common(8)
        ]
        parts += [
            "",
            "### Correlated attribute pairs",
            "",
            _md_table(["pair", "patterns"], pair_rows),
            "",
            f"### Top {min(top, len(result.caps))} patterns",
            "",
            caps_to_table(result.caps, top),
        ]
        if include_axis_report:
            axis = axis_correlation_report(dataset, result.caps, min_km=1.0)
            if sum(axis.values()):
                parts += [
                    "",
                    "### Cross-location pairs by geographic axis",
                    "",
                    _md_table(["axis", "pairs"], sorted(axis.items())),
                ]
    return "\n".join(parts) + "\n"
