"""Before/after pattern comparison — the paper's COVID-19 analysis (Fig. 4).

"Attendees can know that levels of air pollution change due to spreading
COVID-19 ... our activity changes affect not only the amounts of air
pollutants but also their correlation patterns."

:func:`compare_periods` splits a dataset at a date, mines both halves with
the same parameters, and diffs the resulting pattern sets; the result knows
which patterns vanished, appeared, or survived, plus per-attribute mean
levels so the "amounts" claim is checkable alongside the "patterns" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Sequence

import numpy as np

from ..core.miner import MiningResult, MiscelaMiner
from ..core.parameters import MiningParameters
from ..core.types import CAP, SensorDataset

__all__ = ["PeriodComparison", "compare_periods", "attribute_level_shift"]


def _pattern_keys(caps: Sequence[CAP]) -> set[tuple[str, ...]]:
    return {cap.key() for cap in caps}


@dataclass
class PeriodComparison:
    """The diff between two mined periods."""

    split_at: datetime
    before: MiningResult
    after: MiningResult
    #: Mean measurement level per attribute, before and after.
    levels_before: Mapping[str, float] = field(default_factory=dict)
    levels_after: Mapping[str, float] = field(default_factory=dict)

    @property
    def vanished(self) -> list[CAP]:
        """Patterns present before the split but absent after."""
        after_keys = _pattern_keys(self.after.caps)
        return [cap for cap in self.before.caps if cap.key() not in after_keys]

    @property
    def appeared(self) -> list[CAP]:
        """Patterns absent before the split but present after."""
        before_keys = _pattern_keys(self.before.caps)
        return [cap for cap in self.after.caps if cap.key() not in before_keys]

    @property
    def survived(self) -> list[CAP]:
        """Patterns present in both periods (keyed by sensor set)."""
        after_keys = _pattern_keys(self.after.caps)
        return [cap for cap in self.before.caps if cap.key() in after_keys]

    def level_shifts(self) -> dict[str, float]:
        """after − before mean level per attribute."""
        return {
            attribute: self.levels_after.get(attribute, float("nan"))
            - self.levels_before.get(attribute, float("nan"))
            for attribute in self.levels_before
        }

    def summary(self) -> dict[str, object]:
        return {
            "split_at": self.split_at.isoformat(),
            "caps_before": self.before.num_caps,
            "caps_after": self.after.num_caps,
            "vanished": len(self.vanished),
            "appeared": len(self.appeared),
            "survived": len(self.survived),
            "level_shifts": {
                k: round(v, 3) for k, v in sorted(self.level_shifts().items())
            },
        }


def attribute_level_shift(dataset: SensorDataset) -> dict[str, float]:
    """Mean measurement level per attribute (NaN-aware)."""
    levels: dict[str, list[float]] = {}
    for sensor in dataset:
        values = dataset.values(sensor.sensor_id)
        finite = values[~np.isnan(values)]
        if finite.size:
            levels.setdefault(sensor.attribute, []).append(float(finite.mean()))
    return {attribute: float(np.mean(v)) for attribute, v in levels.items()}


def compare_periods(
    dataset: SensorDataset,
    split_at: datetime,
    params: MiningParameters,
    miner: MiscelaMiner | None = None,
) -> PeriodComparison:
    """Mine the dataset before and after a date and diff the patterns.

    Raises
    ------
    ValueError
        If the split leaves fewer than two timestamps on either side.
    """
    start, end = dataset.timeline[0], dataset.timeline[-1]
    if not start < split_at <= end:
        raise ValueError(
            f"split_at {split_at} outside the dataset period [{start}, {end}]"
        )
    before_ds = dataset.slice_time(start, split_at, name=f"{dataset.name}:before")
    after_ds = dataset.slice_time(
        split_at, end + dataset.interval, name=f"{dataset.name}:after"
    )
    mining = miner if miner is not None else MiscelaMiner(params)
    return PeriodComparison(
        split_at=split_at,
        before=mining.mine(before_ds),
        after=mining.mine(after_ds),
        levels_before=attribute_level_shift(before_ds),
        levels_after=attribute_level_shift(after_ds),
    )
