"""Analysis toolkit: statistics, before/after comparison, parameter sweeps."""

from .comparison import PeriodComparison, attribute_level_shift, compare_periods
from .sensitivity import (
    SWEEPABLE_PARAMETERS,
    SweepPoint,
    expected_direction,
    is_monotone,
    sweep,
)
from .reporting import caps_to_table, result_to_markdown
from .stability import core_patterns, mine_settings, pattern_overlap, stability_matrix
from .statistics import (
    attribute_pair_counts,
    axis_alignment,
    axis_correlation_report,
    cap_summary,
    co_evolution_rate,
    pairwise_co_evolution,
)

__all__ = [
    "PeriodComparison",
    "SWEEPABLE_PARAMETERS",
    "SweepPoint",
    "attribute_level_shift",
    "attribute_pair_counts",
    "axis_alignment",
    "axis_correlation_report",
    "cap_summary",
    "caps_to_table",
    "co_evolution_rate",
    "compare_periods",
    "core_patterns",
    "expected_direction",
    "is_monotone",
    "mine_settings",
    "pairwise_co_evolution",
    "pattern_overlap",
    "result_to_markdown",
    "stability_matrix",
    "sweep",
]
