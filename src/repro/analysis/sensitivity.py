"""Parameter sensitivity sweeps (Section 2.1).

The paper documents how each mining parameter moves the number of CAPs and
notes "the sensitivity of parameters depends on datasets, so it is necessary
to support interactive analysis".  :func:`sweep` mines a dataset across a
grid of values for one parameter and reports #CAPs and runtime per value —
the data behind the parameter-sensitivity benchmark and the interactive
tuning workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.miner import MiscelaMiner
from ..core.parameters import MiningParameters
from ..core.types import SensorDataset

__all__ = ["SweepPoint", "sweep", "SWEEPABLE_PARAMETERS", "expected_direction"]

#: Parameters :func:`sweep` accepts, with the direction Section 2.1 implies
#: for #CAPs as the value grows.  (ε is implemented per its definition —
#: larger ε discards more changes, hence fewer CAPs; see DESIGN.md for the
#: discrepancy note on the paper's prose.)
SWEEPABLE_PARAMETERS = {
    "evolving_rate": "decreasing",
    "distance_threshold": "increasing",
    "max_attributes": "increasing",
    "min_support": "decreasing",
}


def expected_direction(parameter: str) -> str:
    """The monotone direction of #CAPs as the parameter grows."""
    try:
        return SWEEPABLE_PARAMETERS[parameter]
    except KeyError:
        raise KeyError(
            f"unknown sweep parameter {parameter!r}; "
            f"choose from {sorted(SWEEPABLE_PARAMETERS)}"
        ) from None


@dataclass(frozen=True)
class SweepPoint:
    """One sweep measurement."""

    parameter: str
    value: float
    num_caps: int
    elapsed_seconds: float


def sweep(
    dataset: SensorDataset,
    base_params: MiningParameters,
    parameter: str,
    values: Sequence[float | int],
) -> list[SweepPoint]:
    """Mine the dataset once per value of one parameter.

    Returns points in the order of ``values``.  Every other parameter stays
    at its ``base_params`` setting.
    """
    expected_direction(parameter)  # validates the name
    if not values:
        raise ValueError("values must be non-empty")
    points: list[SweepPoint] = []
    for value in values:
        params = base_params.with_updates(**{parameter: value})
        result = MiscelaMiner(params).mine(dataset)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=float(value),
                num_caps=result.num_caps,
                elapsed_seconds=result.elapsed_seconds,
            )
        )
    return points


def is_monotone(points: Sequence[SweepPoint], direction: str) -> bool:
    """Whether a sweep's #CAPs is (weakly) monotone in the given direction."""
    counts = [p.num_caps for p in points]
    if direction == "increasing":
        return all(a <= b for a, b in zip(counts, counts[1:]))
    if direction == "decreasing":
        return all(a >= b for a, b in zip(counts, counts[1:]))
    raise ValueError(f'direction must be "increasing" or "decreasing", got {direction!r}')


__all__.append("is_monotone")
