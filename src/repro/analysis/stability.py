"""Pattern stability across parameter settings.

Interactive analysis (Section 4) is a loop of re-mining under tweaked
parameters.  A question the UI raises but the paper leaves to the analyst's
eye is *how much the answer moved*: did loosening ψ merely add weak
patterns, or did it reshuffle everything?  This module quantifies that:

* :func:`pattern_overlap` — Jaccard similarity between two CAP sets (keyed
  by sensor set);
* :func:`stability_matrix` — pairwise overlap across a list of settings;
* :func:`core_patterns` — the patterns present under *every* setting, i.e.
  the parameter-robust findings worth reporting.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.miner import MiningResult, MiscelaMiner
from ..core.parameters import MiningParameters
from ..core.types import CAP, SensorDataset

__all__ = ["pattern_overlap", "stability_matrix", "core_patterns", "mine_settings"]


def _keys(caps: Sequence[CAP]) -> set[tuple[str, ...]]:
    return {cap.key() for cap in caps}


def pattern_overlap(a: Sequence[CAP], b: Sequence[CAP]) -> float:
    """Jaccard similarity of two pattern sets (by sensor-set identity).

    1.0 — identical findings; 0.0 — nothing in common.  Empty vs empty is
    defined as 1.0 (both settings agree there is nothing).
    """
    ka, kb = _keys(a), _keys(b)
    if not ka and not kb:
        return 1.0
    union = ka | kb
    return len(ka & kb) / len(union)


def mine_settings(
    dataset: SensorDataset, settings: Sequence[MiningParameters]
) -> list[MiningResult]:
    """Mine one dataset under each parameter setting, in order."""
    if not settings:
        raise ValueError("settings must be non-empty")
    return [MiscelaMiner(params).mine(dataset) for params in settings]


def stability_matrix(results: Sequence[MiningResult]) -> list[list[float]]:
    """Pairwise pattern overlap between mining results (symmetric, 1s on diag)."""
    n = len(results)
    matrix = [[1.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            overlap = pattern_overlap(results[i].caps, results[j].caps)
            matrix[i][j] = overlap
            matrix[j][i] = overlap
    return matrix


def core_patterns(results: Sequence[MiningResult]) -> list[CAP]:
    """Patterns discovered under every setting — the robust findings.

    Returned as the instances from the *first* result (whose supports are
    the first setting's), ordered by support.
    """
    if not results:
        return []
    common = _keys(results[0].caps)
    for result in results[1:]:
        common &= _keys(result.caps)
        if not common:
            return []
    kept = [cap for cap in results[0].caps if cap.key() in common]
    kept.sort(key=lambda c: (-c.support, c.key()))
    return kept
