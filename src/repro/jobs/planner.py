"""Planner for distributed mining: one mine → shard sub-jobs → merge.

The distributed engine (ROADMAP: "one job, many workers") promotes the
PR 2 shard decomposition to durable sub-jobs.  This module is the *pure*
half of that machinery — everything deterministic, nothing store- or
server-aware — so the planner, every shard worker, and the merge step can
each recompute exactly the same facts from the same stored inputs:

* :func:`prepare` — the deterministic preprocessing prefix of
  :meth:`repro.core.miner.MiscelaMiner.mine` (evolving extraction,
  η-proximity graph, component list).  Share-nothing by design: a shard
  worker on another machine re-derives it from the dataset rather than
  shipping packed buffers through the store.
* :func:`plan_mine` — drives :func:`repro.core.parallel.plan_shards` with a
  **fixed** planning width (stored on the parent job), so the shard set is
  a deterministic function of (dataset, parameters, plan_workers) and a
  crashed planner can be re-run idempotently.
* :func:`execute_units` — runs one shard's units through
  :func:`repro.core.parallel.run_shard_units`, the same execution core the
  in-process pool uses, returning JSON-serialisable ``(tag, caps)`` output
  documents (CAP round-trips are lossless).
* :func:`merge_outputs` — re-sorts every shard's tagged output into serial
  emission order and applies the mode's post-pass, reproducing the serial
  engine's CAP list byte-for-byte.

The stateful half — sub-job documents, leases, retries, dead-lettering —
lives in :class:`repro.jobs.durable.DurableJobStore`; the runners that glue
both to the server are in :mod:`repro.server.handlers`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.delayed import finalize_delayed
from ..core.evolving import extract_all_evolving
from ..core.parallel import (
    MiningControl,
    ShardUnit,
    _mining_components,
    merge_tagged,
    plan_shards,
    run_shard_units,
)
from ..core.parameters import MiningParameters
from ..core.search import dedupe_strongest
from ..core.spatial import build_proximity_graph
from ..core.types import CAP, SensorDataset

__all__ = [
    "PLAN_WORKERS_DEFAULT",
    "MODE_SEARCH",
    "MODE_DELAYED",
    "MinePlan",
    "prepare",
    "plan_mine",
    "unit_to_document",
    "unit_from_document",
    "execute_units",
    "merge_outputs",
]

#: Default planning width.  Deliberately *not* ``os.cpu_count()``: the plan
#: must be a pure function of the submission so re-planning after a planner
#: crash (possibly on a different machine) regenerates identical sub-jobs.
PLAN_WORKERS_DEFAULT = 4

#: Maximum accepted planning width (a submission knob; bounds fan-out).
PLAN_WORKERS_MAX = 64

MODE_SEARCH = "search"
MODE_DELAYED = "delayed"


@dataclass
class MinePlan:
    """A deterministic split of one mine into shard unit-lists."""

    mode: str
    horizon: int
    shards: list[list[ShardUnit]]

    @property
    def shard_documents(self) -> list[list[dict[str, Any]]]:
        return [[unit_to_document(u) for u in shard] for shard in self.shards]


def prepare(
    dataset: SensorDataset, params: MiningParameters
) -> tuple[MiningParameters, dict, dict, list, dict]:
    """The deterministic preprocessing every distributed actor recomputes.

    Returns ``(serial_params, evolving, adjacency, components, attributes)``
    — exactly the state :meth:`MiscelaMiner.mine` builds before step 4, with
    ``n_jobs`` forced to 1 (shard workers never nest process pools).
    """
    serial = params.with_updates(n_jobs=1)
    evolving = extract_all_evolving(dataset, serial)
    adjacency = build_proximity_graph(list(dataset), serial.distance_threshold)
    components = _mining_components(adjacency)
    attributes = {s.sensor_id: s.attribute for s in dataset}
    return serial, evolving, adjacency, components, attributes


def plan_mine(
    dataset: SensorDataset,
    params: MiningParameters,
    plan_workers: int = PLAN_WORKERS_DEFAULT,
) -> MinePlan:
    """Split one mine into cost-balanced shard unit-lists.

    Pure: same (dataset, parameters, plan_workers) → same plan, which makes
    crashed-planner re-planning idempotent (sub-job ids are derived from
    shard indices) and lets any process verify a plan it did not produce.
    """
    if plan_workers < 1:
        raise ValueError(f"plan_workers must be >= 1, got {plan_workers}")
    serial, evolving, adjacency, components, _attributes = prepare(dataset, params)
    mode = MODE_DELAYED if serial.max_delay > 0 else MODE_SEARCH
    shards = plan_shards(
        components, adjacency, evolving, serial, plan_workers, splittable=True
    )
    return MinePlan(mode=mode, horizon=dataset.num_timestamps, shards=shards)


def unit_to_document(unit: ShardUnit) -> dict[str, Any]:
    return {
        "component_index": unit.component_index,
        "seeds": list(unit.seeds) if unit.seeds is not None else None,
        "first_rank": unit.first_rank,
        "cost": unit.cost,
    }


def unit_from_document(document: Mapping[str, Any]) -> ShardUnit:
    seeds = document.get("seeds")
    return ShardUnit(
        component_index=int(document["component_index"]),
        seeds=tuple(seeds) if seeds is not None else None,
        first_rank=int(document["first_rank"]),
        cost=float(document.get("cost", 0.0)),
    )


def execute_units(
    dataset: SensorDataset,
    params: MiningParameters,
    unit_documents: Sequence[Mapping[str, Any]],
    mode: str,
    horizon: int,
    control: MiningControl | None = None,
) -> list[dict[str, Any]]:
    """Run one shard sub-job's units; returns tagged output documents.

    Recomputes the deterministic preprocessing locally, executes the
    persisted units through the shared execution core, and serialises each
    unit's caps with its merge tag: ``{"tag": [ci, rank], "caps": [...]}``.

    With a ``control`` carrying a profiler, the three phases are timed
    separately: ``prepare`` (preprocessing recomputation), ``search``
    (recorded per unit inside the execution core), and ``emit`` (output
    serialisation).
    """
    profiler = getattr(control, "profiler", None) if control is not None else None
    prepare_started = time.perf_counter() if profiler is not None else 0.0
    serial, evolving, adjacency, components, attributes = prepare(dataset, params)
    if profiler is not None:
        profiler.record("prepare", time.perf_counter() - prepare_started)
    units = [unit_from_document(doc) for doc in unit_documents]
    for unit in units:
        if unit.component_index >= len(components):
            raise ValueError(
                f"shard unit references component {unit.component_index} but "
                f"the dataset now yields {len(components)} components — the "
                f"plan no longer matches its inputs"
            )
    tagged = run_shard_units(
        mode, adjacency, attributes, evolving, serial, components, units,
        horizon=horizon, control=control,
    )
    emit_started = time.perf_counter() if profiler is not None else 0.0
    out = [
        {"tag": [tag[0], tag[1]], "caps": [cap.to_document() for cap in caps]}
        for tag, caps in tagged
    ]
    if profiler is not None:
        profiler.record("emit", time.perf_counter() - emit_started)
    return out


def merge_outputs(
    mode: str, outputs: Sequence[Mapping[str, Any]]
) -> list[CAP]:
    """Reassemble every shard's tagged output into the serial CAP list.

    ``outputs`` is the concatenation of all shards' output documents, in any
    order — the merge tag restores serial emission order, and the mode's
    post-pass (the same one the serial engine ends with) runs once over the
    merged stream.  Byte-identical to a serial mine of the same inputs.
    """
    tagged = [
        (
            (int(entry["tag"][0]), int(entry["tag"][1])),
            [CAP.from_document(doc) for doc in entry["caps"]],
        )
        for entry in outputs
    ]
    merged = merge_tagged(tagged)
    if mode == MODE_DELAYED:
        return finalize_delayed(merged, emit_all_assignments=False)
    return dedupe_strongest(merged)
