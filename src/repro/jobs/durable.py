"""The durable job registry: store-backed lifecycle + lease-based claiming.

:class:`DurableJobStore` keeps the PR 3 :class:`~repro.jobs.store.JobStore`
contract — the queued→running→succeeded/failed/cancelled state machine,
monotone progress, atomic cache-key dedup — but every job lives as a
document in the ``jobs`` collection of a :class:`~repro.store.Database`
and every transition writes through :meth:`Database.save`.  A submitted
job therefore survives the process that accepted it: a restarted server
finds it in the snapshot and :meth:`recover` puts it back to work.

**Two engines.**  With the WAL store engine (the default for a path),
the registry simply rides :meth:`Database.exclusive`: every transition
appends one checksummed record inside the store's own cross-process
critical section and is fsync'd before the lock releases — no snapshot
rewriting, no union-merging, and deletions propagate as first-class
tombstone records.  With the legacy ``snapshot`` engine the PR 5
protocol remains: a critical section (process-local lock + an ``flock``
on ``<snapshot>.lock``) that refreshes this process's view from disk,
mutates, then persists the whole snapshot.

**Multi-process protocol.**  Several server processes may share one
store path.  Either way the on-disk store is the single source of truth
and a compare-and-set through :meth:`repro.store.Collection.update_if`
decides every claim exactly once across processes:

* **claiming** — a worker moves a job ``queued → running`` only via CAS,
  stamping ``{worker_id, lease_expires_at}``;
* **leases** — progress updates renew the lease; a running job whose
  lease lapsed is presumed orphaned (its worker died) and *any* process
  may requeue it (:meth:`reclaim_expired`), which is the only legal
  ``running → queued`` edge;
* **publication** — terminal transitions CAS on ``worker_id`` too, so a
  worker that lost its lease (and whose job was reclaimed and re-run
  elsewhere) cannot clobber the newer attempt's outcome.

**Distributed sub-jobs (PR 7).**  A ``mine`` job submitted with
``distributed=True`` is a *parent*: a planner step (claimed like any job)
splits it into ``shard`` sub-jobs plus one ``merge`` sub-job — documents in
the same ``jobs`` collection, moving through the same state machine under
their own leases — via :meth:`finish_planning`.  Workers claim shards with
the ordinary CAS (:meth:`claim_next` gates on readiness: a shard needs a
planned, live parent; the merge needs every shard ``succeeded``), persist
their tagged CAP output atomically with the success transition
(:meth:`complete_shard`), and a planned parent is completed, failed, or
cancelled *by rules over its children* (:meth:`reclaim_expired` /
:meth:`recover` run the resolution pass) rather than by a lease — crashing
a worker loses one shard, not the mine.

**Bounded retries and dead-lettering.**  Every lease-expiry requeue now
backs off exponentially (``not_before`` gates the next claim) and counts
against ``max_attempts``: a job that loses its worker on every attempt —
a *poison* job that crashes whatever claims it — transitions to ``failed``
with a structured :data:`~repro.jobs.model.ATTEMPTS_EXHAUSTED` error and
its inputs are quarantined in the ``dead_letters`` collection instead of
crash-looping the fleet forever.  A dead-lettered shard fails its parent
with a precise diagnosis naming the shard.

**Fault injection.**  The crash points the recovery tests kill the server
at are real code paths here, selected by the ``REPRO_JOBS_FAULT``
environment variable (see :data:`FAULT_POINTS`): the process hard-exits
(``os._exit``) at the named point, exactly like a ``kill -9`` landing
there.  In production the variable is unset and the checks are no-ops.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..cache.keys import short_key
from ..obs.metrics import get_registry
from ..obs.spans import SpanStore
from ..store.database import Database
from .model import (
    ATTEMPTS_EXHAUSTED,
    CANCELLED,
    FAILED,
    JOB_STATES,
    KIND_MERGE,
    KIND_MINE,
    KIND_SHARD,
    KIND_STREAM,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobError,
    JobStateError,
    ensure_transition,
)
from .planner import PLAN_WORKERS_DEFAULT

__all__ = ["DurableJobStore", "FAULT_ENV", "FAULT_POINTS", "maybe_fault"]

_JOBS = "jobs"
_DEAD_LETTERS = "dead_letters"
_SHARD_OUTPUTS = "shard_outputs"

_METRICS = get_registry()
_CLAIMS = _METRICS.counter(
    "repro_jobs_claims_total",
    "Successful job claims (queued->running CAS wins), by job kind.",
    labels=("kind",),
)
_LEASE_RENEWALS = _METRICS.counter(
    "repro_jobs_lease_renewals_total",
    "Lease extensions granted to the owning worker.",
)
_LEASE_EXPIRIES = _METRICS.counter(
    "repro_jobs_lease_expiries_total",
    "Running jobs whose lease lapsed (worker presumed dead).",
)
_REQUEUES = _METRICS.counter(
    "repro_jobs_requeues_total",
    "Lease-expiry requeues (running->queued recovery edges).",
)
_DEAD_LETTERED = _METRICS.counter(
    "repro_jobs_dead_letters_total",
    "Jobs quarantined after exhausting max_attempts.",
)
_CAS_CONFLICTS = _METRICS.counter(
    "repro_jobs_cas_conflicts_total",
    "Compare-and-set losses: stale workers refused a transition or renewal.",
)

#: Environment variable naming the crash point to hard-exit at (tests only).
FAULT_ENV = "REPRO_JOBS_FAULT"

#: The supported crash points, in lifecycle order.
FAULT_POINTS = (
    "after-enqueue",           # queued job persisted; submitter never answered
    "after-claim",             # running + lease persisted; worker dies pre-mine
    "after-shard-claim",       # shard sub-job claimed; worker dies pre-execution
    "mid-shard",               # shard computed; success/output never hit disk
    "before-merge-publish",    # all shards done; merge dies pre-result-publish
    "before-succeed-persist",  # mine finished; success/result never hit disk
    "after-succeed-persist",   # success + result durable; process dies after
)

#: Exit status used by fault-point exits (distinct from SIGKILL's 137).
FAULT_EXIT_CODE = 70


def maybe_fault(name: str) -> None:
    """Hard-exit when ``REPRO_JOBS_FAULT`` names this point (tests only).

    Module-level so runner code outside the store (shard execution, the
    merge publish) can share the same crash-point vocabulary.  Simulates a
    ``kill -9`` landing exactly here: no cleanup, no flushing — any flock
    dies with the process.
    """
    if os.environ.get(FAULT_ENV) == name:
        os._exit(FAULT_EXIT_CODE)


class DurableJobStore:
    """Store-backed registry of async jobs with lease-based claiming.

    Drop-in for :class:`~repro.jobs.store.JobStore` wherever the queue,
    executor, and handlers are concerned; the additional surface
    (:meth:`claim_next`, :meth:`reclaim_expired`, :meth:`recover`,
    :meth:`refresh`) is what multi-process serving and crash recovery
    build on.

    Parameters
    ----------
    database:
        The backing store.  With ``database.path`` set, every transition
        persists a snapshot and cross-process claiming is coordinated
        through ``<path>.lock``; without a path the registry is
        process-local (unit tests) but keeps identical semantics.
    worker_id:
        Stable identity stamped onto claimed jobs; defaults to a
        pid-derived token unique per store instance.
    lease_seconds:
        How long a claim stays valid without renewal.  Progress ticks
        renew it; pick a small value in tests so orphaned jobs are
        reclaimed quickly.
    terminal_capacity:
        Retention bound for finished jobs, as in the in-memory store.
        Evicted *succeeded* jobs leave their ``job_id → result_key``
        mapping behind (see :meth:`evicted_result_key`) so result
        ``Location`` links issued this process lifetime keep resolving.
        Counted over top-level jobs; a pruned distributed parent takes its
        sub-job documents with it.
    max_attempts:
        Dead-letter bound: a job whose lease lapses on its Nth attempt with
        ``N >= max_attempts`` fails with a structured
        ``AttemptsExhausted`` error (inputs quarantined in the
        ``dead_letters`` collection) instead of requeueing forever.
        ``0`` disables the bound.  Per-job ``max_attempts`` overrides it.
    backoff_base, backoff_cap:
        Exponential requeue delay: attempt *n*'s requeue sets
        ``not_before = now + min(cap, base * 2**(n-1))``, gating the
        polling claim path so a crashing job doesn't hot-loop the fleet.
    """

    def __init__(
        self,
        database: Database,
        *,
        worker_id: str | None = None,
        clock=time.time,
        lease_seconds: float = 30.0,
        terminal_capacity: int = 1024,
        results_collection: str = "cap_results",
        max_attempts: int = 5,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if terminal_capacity < 1:
            raise ValueError(
                f"terminal_capacity must be >= 1, got {terminal_capacity}"
            )
        if max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0, got {max_attempts}")
        self.database = database
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"w{os.getpid()}-{os.urandom(3).hex()}"
        )
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        #: Whether other processes may share this registry (store-backed).
        #: Governs shutdown semantics: a shared registry's jobs are
        #: *released* for takeover instead of cancelled when this process
        #: exits (see :meth:`release` / ``JobQueue.shutdown``).
        self.shared = database.path is not None
        self._clock = clock
        self._terminal_capacity = terminal_capacity
        self._results_collection = results_collection
        self._lock = threading.RLock()
        self._lock_depth = 0
        #: (mtime_ns, size) of the snapshot this process last merged.
        self._disk_state: tuple[int, int] | None = None
        #: job_id -> locally observed progress not yet persisted, survives
        #: collection refreshes (monotone re-application).
        self._progress_cache: dict[str, dict[str, Any]] = {}
        #: job_id -> result_key for evicted succeeded jobs (process lifetime).
        self._evicted_results: dict[str, str] = {}
        #: Collections other processes also write, merged on refresh by a
        #: unique field (never overwriting local documents).
        self.merge_collections: dict[str, str] = {
            results_collection: "key",
            "datasets": "name",
            "spans": "span_id",
            "shard_outputs": "shard_id",
            "observations": "batch_id",
            "stream_epochs": "name",
            "stream_state": "name",
            "cap_events": "event_id",
            # Rule ids are unique per *dataset*, so rules merge by the
            # composite ``rule_uid`` ("{dataset}:{rule_id}") the API stamps.
            "alert_rules": "rule_uid",
            "alerts": "alert_id",
        }
        #: Trace spans ride the same store (and therefore the same
        #: durability + cross-process merge rules) as the jobs they time.
        self.spans = SpanStore(database)
        #: Minimum age between snapshot reloads on the *cancellation poll*
        #: (the engine checkpoints between every work unit; re-parsing the
        #: whole snapshot each time a peer renews a lease would put a
        #: multi-MB JSON load on the hot mining path).  Bounds cancel
        #: latency; set to 0 for immediate cross-process visibility.
        self.poll_refresh_seconds = 0.2
        self._last_refresh_mono = float("-inf")
        self._ensure_indexes()

    # -- locking / refresh / persistence ---------------------------------------

    def _ensure_indexes(self) -> None:
        collection = self.database.collection(_JOBS)
        collection.create_index("job_id", "hash")
        collection.create_index("key", "hash")
        collection.create_index("state", "hash")
        collection.create_index("parent_id", "hash")

    @property
    def _lock_path(self) -> Path | None:
        if self.database.path is None:
            return None
        return self.database.path.with_name(self.database.path.name + ".lock")

    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        """The cross-process critical section: lock, refresh, then mutate.

        WAL engine: delegate to the store's own exclusive section — entry
        replays peers' appended records, exit fsyncs ours, and the flock
        lives with the store (one lock protocol instead of two).

        Snapshot engine: reentrant flock on ``<snapshot>.lock`` + refresh
        + persist, as in PR 5 (``flock`` self-deadlocks across fds of one
        process otherwise, hence the depth counter).
        """
        if self.database.engine == "wal":
            with self._lock, self.database.exclusive():
                yield
            return
        with self._lock:
            if self._lock_depth > 0:
                self._lock_depth += 1
                try:
                    yield
                finally:
                    self._lock_depth -= 1
                return
            handle = None
            lock_path = self._lock_path
            if lock_path is not None:
                handle = open(lock_path, "a+")
                try:
                    import fcntl

                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                except ImportError:  # pragma: no cover - non-POSIX fallback
                    pass
            self._lock_depth = 1
            try:
                self._refresh_locked()
                yield
            finally:
                self._lock_depth = 0
                if handle is not None:
                    handle.close()  # closing the fd releases the flock

    def refresh(self) -> None:
        """Adopt any changes other processes persisted since the last look.

        Cheap when nothing changed (one ``stat``).  Readers call this; the
        mutating paths refresh inside :meth:`_exclusive` automatically.
        """
        with self._lock:
            self._refresh_locked()

    def _refresh_locked(self, max_age: float | None = None) -> None:
        if self.database.engine == "wal":
            # Tail replay: per-collection byte cursors; one stat per log
            # when nothing changed.  The throttle still bounds how often
            # the cancellation poll even stats.
            if (
                max_age is not None
                and time.monotonic() - self._last_refresh_mono < max_age
            ):
                return
            self._last_refresh_mono = time.monotonic()
            self.database.refresh()
            return
        path = self.database.path
        if path is None or not path.exists():
            return
        if (
            max_age is not None
            and time.monotonic() - self._last_refresh_mono < max_age
        ):
            return
        self._last_refresh_mono = time.monotonic()
        stat = path.stat()
        disk_state = (stat.st_mtime_ns, stat.st_size)
        if disk_state == self._disk_state:
            return
        fresh = Database(path)
        # Jobs: the on-disk registry is the source of truth — every writer
        # persists before leaving the critical section.  Locally cached
        # progress (ticks between lease renewals) is re-applied on top.
        if _JOBS in fresh:
            jobs = fresh[_JOBS]
            self._reapply_progress(jobs)
            self.database.replace_collection(jobs)
            self._ensure_indexes()
        # Shared artifact collections: union in documents another process
        # wrote (a worker's mined result, a dataset uploaded elsewhere).
        # Local documents win — this process may hold newer unsaved state.
        for name, unique in self.merge_collections.items():
            if name not in fresh:
                continue
            local = self.database.collection(name)
            for document in fresh[name].find():
                document.pop("_id", None)
                if local.find_one({unique: document[unique]}) is None:
                    local.insert_one(document)
        self._disk_state = disk_state

    def _reapply_progress(self, jobs_collection) -> None:
        for job_id, cached in list(self._progress_cache.items()):
            document = jobs_collection.find_one({"job_id": job_id})
            if (
                document is None
                or document["state"] != RUNNING
                or document.get("worker_id") != self.worker_id
                or document.get("attempt") != cached["attempt"]
            ):
                del self._progress_cache[job_id]
                continue
            if cached["progress"] > document.get("progress", 0.0):
                jobs_collection.update_one(
                    {"job_id": job_id},
                    {
                        "progress": cached["progress"],
                        "shards_done": cached["shards_done"],
                        "shards_total": cached["shards_total"],
                    },
                )

    def _persist(self) -> None:
        """Write the snapshot (when bound to one) and remember its identity.

        WAL engine: a deliberate no-op — every mutation already appended
        its record, and the exclusive section fsyncs on exit, so there is
        no "world" left to rewrite.
        """
        if self.database.engine == "wal" or self.database.path is None:
            return
        target = self.database.save()
        stat = target.stat()
        self._disk_state = (stat.st_mtime_ns, stat.st_size)

    def _fault_point(self, name: str) -> None:
        maybe_fault(name)

    # -- document helpers -------------------------------------------------------

    def _collection(self):
        return self.database.collection(_JOBS)

    def _doc(self, job_id: str) -> dict[str, Any] | None:
        return self._collection().find_one({"job_id": job_id})

    def _require_doc(self, job_id: str) -> dict[str, Any]:
        document = self._doc(job_id)
        if document is None:
            raise KeyError(f"unknown job {job_id!r}")
        return document

    def _job(self, document: Mapping[str, Any]) -> Job:
        return Job.from_document(document)

    def _store_document(self, job: Job) -> dict[str, Any]:
        return {**job.to_document(), "sequence": job.sequence}

    def _next_sequence(self) -> int:
        return 1 + max(
            (doc.get("sequence", 0) for doc in self._collection().find()),
            default=0,
        )

    # -- creation / dedup -------------------------------------------------------

    def open_job(
        self,
        dataset: str,
        parameters: Mapping[str, Any],
        key: str,
        *,
        distributed: bool = False,
        plan_workers: int | None = None,
        max_attempts: int | None = None,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """The active job for ``key``, or a new queued one — atomically.

        Same contract as the in-memory store, but the decision is made
        against the *shared* registry: a job another process opened for the
        same key dedups here too.  Dedup considers top-level jobs only —
        shard/merge sub-jobs share their parent's key and never absorb a
        submission.  ``distributed=True`` marks the new job for shard-level
        execution (the planner splits it when a worker claims it);
        ``plan_workers`` fixes the planning width the split uses;
        ``trace_id`` (the request's ``X-Request-Id``) is stamped on the job
        and inherited by its sub-jobs, correlating every span of one
        distributed mine.  Dedup keeps the *existing* job's trace.
        """
        with self._exclusive():
            for document in self._collection().find({"key": key}):
                if document.get("kind", KIND_MINE) != KIND_MINE:
                    continue
                if document["state"] in (QUEUED, RUNNING):
                    return self._job(document), False
            sequence = self._next_sequence()
            job = Job(
                job_id=f"job-{sequence:04d}-{short_key(key)}",
                dataset=dataset,
                parameters=dict(parameters),
                key=key,
                created_at=self._clock(),
                distributed=distributed,
                max_attempts=max_attempts,
                trace_id=trace_id,
                sequence=sequence,
            )
            stored = self._store_document(job)
            if distributed:
                stored["plan_workers"] = int(plan_workers or PLAN_WORKERS_DEFAULT)
            self._collection().insert_one(stored)
            self._prune_terminal_locked()
            self._persist()
            self._fault_point("after-enqueue")
            return job, True

    def open_stream_job(
        self,
        dataset: str,
        parameters: Mapping[str, Any],
        key: str,
        *,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """The resident stream job for ``dataset``, or a new queued one.

        One live stream job per dataset: dedup matches any non-terminal
        ``stream`` job on the dataset *name* (not the key — re-submitting
        with different parameters keeps the running miner rather than
        racing a second one against the same feed).  Stream jobs are
        created with ``max_attempts=0`` (unlimited): every idle release
        and lease-expiry requeue grows ``attempt``, and a long-lived
        resident job must never dead-letter itself by simply living.
        """
        with self._exclusive():
            for document in self._collection().find({"dataset": dataset}):
                if document.get("kind", KIND_MINE) != KIND_STREAM:
                    continue
                if document["state"] in (QUEUED, RUNNING):
                    return self._job(document), False
            sequence = self._next_sequence()
            job = Job(
                job_id=f"stream-{sequence:04d}-{short_key(key)}",
                dataset=dataset,
                parameters=dict(parameters),
                key=key,
                created_at=self._clock(),
                kind=KIND_STREAM,
                max_attempts=0,
                trace_id=trace_id,
                sequence=sequence,
            )
            self._collection().insert_one(self._store_document(job))
            self._prune_terminal_locked()
            self._persist()
            self._fault_point("after-enqueue")
            return job, True

    # -- lookup -----------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            self._refresh_locked()
            document = self._doc(job_id)
            return self._job(document) if document is not None else None

    def list(
        self, status: str | None = None, kind: str | None = KIND_MINE
    ) -> list[Job]:
        """Jobs in submission order, optionally filtered by state.

        Defaults to *top-level* jobs (``kind="mine"``) so listings, local
        re-scheduling, and shutdown sweeps see parents, not their shard and
        merge sub-jobs; pass ``kind=None`` for everything, or a specific
        kind.  Use :meth:`children` for one parent's sub-job tree.
        """
        if status is not None and status not in JOB_STATES:
            raise JobStateError(
                f"unknown job status {status!r}; expected one of {JOB_STATES}"
            )
        with self._lock:
            self._refresh_locked()
            query = {"state": status} if status is not None else None
            documents = self._collection().find(query, sort="sequence")
            return [
                self._job(document)
                for document in documents
                if kind is None or document.get("kind", KIND_MINE) == kind
            ]

    def children(self, parent_id: str) -> list[Job]:
        """A distributed parent's sub-jobs: shards (by index), then merge."""
        with self._lock:
            self._refresh_locked()
            documents = self._collection().find(
                {"parent_id": parent_id}, sort="sequence"
            )
            jobs = [self._job(document) for document in documents]
            jobs.sort(
                key=lambda job: (
                    job.kind == KIND_MERGE,
                    job.shard_index if job.shard_index is not None else 0,
                )
            )
            return jobs

    def counters(self) -> dict[str, Any]:
        """Per-state job counts plus lease health (``/admin/stats``)."""
        with self._lock:
            self._refresh_locked()
            counts: dict[str, Any] = {state: 0 for state in JOB_STATES}
            active = expired = 0
            now = self._clock()
            documents = self._collection().find()
            for document in documents:
                counts[document["state"]] += 1
                if document["state"] == RUNNING:
                    lease = document.get("lease_expires_at")
                    if lease is not None and lease < now:
                        expired += 1
                    else:
                        active += 1
            counts["total"] = len(documents)
            counts["leases"] = {"active": active, "expired": expired}
            kinds: dict[str, int] = {}
            for document in documents:
                kind = document.get("kind", KIND_MINE)
                kinds[kind] = kinds.get(kind, 0) + 1
            counts["kinds"] = kinds
            counts["dead_lettered"] = len(
                self.database.collection(_DEAD_LETTERS)
            )
            return counts

    def cancel_requested(self, job_id: str) -> bool:
        """The cooperative-cancellation poll — sees flags set by *any*
        process sharing the store (a cancel posted to server A stops the
        worker mining in server B, within ``poll_refresh_seconds``)."""
        with self._lock:
            self._refresh_locked(max_age=self.poll_refresh_seconds)
            document = self._doc(job_id)
            return bool(document and document.get("cancel_requested"))

    def evicted_result_key(self, job_id: str) -> str | None:
        """The result key of a succeeded job whose metadata was evicted."""
        with self._lock:
            return self._evicted_results.get(job_id)

    def persist_removal(self, collection_name: str, query: Mapping[str, Any]) -> int:
        """Apply a deletion to the *shared* store; returns the count.

        WAL engine: ``delete_many`` appends a first-class tombstone record,
        so the removal propagates to every peer's next tail replay — no
        merge races.  Snapshot engine: a plain local ``delete_many`` is not
        enough because the union-merge of :meth:`refresh` would re-adopt
        the documents from disk on the next peer write; running it inside
        the critical section (refresh, delete, persist) makes the removal
        the snapshot's new truth, though a peer that still holds the
        documents locally re-publishes them with its next persist.
        """
        with self._exclusive():
            removed = self.database.collection(collection_name).delete_many(
                dict(query)
            )
            self._persist()
            return removed

    # -- claiming / leases ------------------------------------------------------

    def mark_running(self, job_id: str) -> Job:
        """Claim one specific queued job (the executor's path).

        Atomic: the ``queued → running`` edge is a compare-and-set that
        stamps this store's ``worker_id`` and a fresh lease, so of all the
        executors and pollers racing for a job — in this process or
        another — exactly one wins.
        """
        with self._exclusive():
            document = self._require_doc(job_id)
            claimed = self._claim_locked(document)
            if claimed is None:
                # CAS failed: surface the illegal edge the state machine saw.
                ensure_transition(self._require_doc(job_id)["state"], RUNNING)
                raise JobStateError(  # pragma: no cover - ensure raises first
                    f"job {job_id} could not be claimed"
                )
            return claimed

    def claim_next(self) -> Job | None:
        """Claim the oldest *claimable* queued job, or ``None``.

        The polling worker's path: lets a process execute jobs *other*
        processes enqueued (it reconstructs the runner from the job's
        stored dataset + parameters).  Sub-jobs gate on readiness
        (:meth:`_claimable_locked`): a shard needs its parent planned and
        live, the merge additionally needs every shard ``succeeded``, and
        a requeued job backs off until its ``not_before``.
        """
        with self._exclusive():
            queued = self._collection().find({"state": QUEUED}, sort="sequence")
            now = self._clock()
            for document in queued:
                if not self._claimable_locked(document, now):
                    continue
                claimed = self._claim_locked(document)
                if claimed is not None:
                    return claimed
            return None

    def _claimable_locked(self, document: Mapping[str, Any], now: float) -> bool:
        """Readiness gate for the *polling* claim path.

        Deliberately not applied by :meth:`mark_running` — the executor
        claims a specific job it was just handed (liveness over backoff)
        — so ``not_before`` throttles only fleet-wide polling.
        """
        not_before = document.get("not_before")
        if not_before is not None and now < not_before:
            return False
        kind = document.get("kind", KIND_MINE)
        if kind in (KIND_MINE, KIND_STREAM):
            return True
        parent = self._doc(document.get("parent_id") or "")
        if (
            parent is None
            or parent["state"] != RUNNING
            or not parent.get("planned")
            or parent.get("cancel_requested")
        ):
            return False
        if kind == KIND_SHARD:
            return True
        # Merge: every shard must have succeeded.
        for shard_id in parent.get("shard_ids", []):
            shard = self._doc(shard_id)
            if shard is None or shard["state"] != SUCCEEDED:
                return False
        return True

    def _claim_locked(self, document: Mapping[str, Any]) -> Job | None:
        if document["state"] != QUEUED:
            return None
        now = self._clock()
        matched = self._collection().update_if(
            {"job_id": document["job_id"]},
            {"state": QUEUED},
            {
                "state": RUNNING,
                "worker_id": self.worker_id,
                "lease_expires_at": now + self.lease_seconds,
                "started_at": now,
                "attempt": int(document.get("attempt", 0)) + 1,
            },
        )
        if matched is None:  # pragma: no cover - CAS races need no lock here
            return None
        self._persist()
        _CLAIMS.inc(document.get("kind", KIND_MINE))
        if document.get("kind", KIND_MINE) == KIND_SHARD:
            self._fault_point("after-shard-claim")
        else:
            self._fault_point("after-claim")
        return self._job(self._require_doc(document["job_id"]))

    def renew_lease(self, job_id: str, attempt: int | None = None) -> None:
        """Extend this worker's lease on a running job (progress does this).

        ``attempt`` scopes the renewal to one claim: a stale thread whose
        claim was reclaimed (same process, same ``worker_id``, newer
        attempt) must not keep the newer claim's lease alive.
        """
        expected: dict[str, Any] = {"state": RUNNING, "worker_id": self.worker_id}
        if attempt is not None:
            expected["attempt"] = attempt
        with self._exclusive():
            now = self._clock()
            matched = self._collection().update_if(
                {"job_id": job_id},
                expected,
                {"lease_expires_at": now + self.lease_seconds},
            )
            if matched is not None:
                _LEASE_RENEWALS.inc()
                self._persist()
            else:
                _CAS_CONFLICTS.inc()

    def reclaim_expired(self) -> list[Job]:
        """Requeue running jobs whose lease lapsed (their worker died).

        The only legal ``running → queued`` edge.  A lapsed job whose
        cancellation was requested finishes ``cancelled`` instead — its
        worker can no longer honour the flag cooperatively.
        """
        with self._exclusive():
            now = self._clock()
            processed = 0
            reclaimed: list[Job] = []
            for document in self._collection().find({"state": RUNNING}):
                lease = document.get("lease_expires_at")
                if lease is None or lease >= now:
                    # Planned parents are lease-less by design (children
                    # drive them); live leases belong to live workers.
                    continue
                job = self._requeue_locked(document, now)
                processed += 1
                if job.state == QUEUED:
                    reclaimed.append(job)
            processed += self._resolve_parents_locked(now)
            if processed:
                self._persist()
            return reclaimed

    def _attempt_limit(self, document: Mapping[str, Any]) -> int:
        override = document.get("max_attempts")
        return int(override) if override is not None else self.max_attempts

    def _requeue_locked(self, document: Mapping[str, Any], now: float) -> Job:
        """Handle one lapsed lease: cancel, dead-letter, or backoff-requeue.

        The dead-letter edge is the attempt bound: the job already burned
        ``attempt`` claims (each one died without finishing), so when that
        meets its limit it fails with a structured ``AttemptsExhausted``
        error and its inputs are quarantined — a poison job must not
        crash-loop the fleet.
        """
        job_id = document["job_id"]
        _LEASE_EXPIRIES.inc()
        # The dead worker's open spans become forensic evidence: the
        # reclaimer stamps them ``interrupted`` so the trace timeline shows
        # exactly which attempt was lost (and a late finisher's CAS loses).
        self.spans.close_open_spans(
            job_id,
            "interrupted",
            error=(
                f"lease expired at attempt {int(document.get('attempt', 0))}; "
                f"worker {document.get('worker_id')!r} presumed dead"
            ),
        )
        expected = {
            "state": RUNNING,
            "lease_expires_at": document.get("lease_expires_at"),
        }
        if document.get("cancel_requested"):
            changes: dict[str, Any] = {
                "state": CANCELLED,
                "worker_id": None,
                "lease_expires_at": None,
                "finished_at": now,
            }
        else:
            attempt = int(document.get("attempt", 0))
            limit = self._attempt_limit(document)
            if limit > 0 and attempt >= limit:
                kind = document.get("kind", KIND_MINE)
                error = JobError(
                    type=ATTEMPTS_EXHAUSTED,
                    message=(
                        f"{kind} job {job_id} lost its worker on all "
                        f"{attempt} of {limit} allowed attempt(s); last "
                        f"worker {document.get('worker_id')!r}. Inputs "
                        f"quarantined in the dead-letter collection."
                    ),
                )
                changes = {
                    "state": FAILED,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "finished_at": now,
                    "error": error.to_document(),
                }
                self._quarantine_locked(document, now)
            else:
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * (2.0 ** max(0, attempt - 1)),
                )
                changes = {
                    "state": QUEUED,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "started_at": None,
                    "not_before": now + delay,
                    "progress": 0.0,
                    "shards_done": 0,
                    "shards_total": 0,
                }
                _REQUEUES.inc()
        self._collection().update_if({"job_id": job_id}, expected, changes)
        self._progress_cache.pop(job_id, None)
        return self._job(self._require_doc(job_id))

    def _quarantine_locked(self, document: Mapping[str, Any], now: float) -> None:
        """Record a dead-lettered job's inputs (insert-if-missing)."""
        letters = self.database.collection(_DEAD_LETTERS)
        if letters.find_one({"job_id": document["job_id"]}) is not None:
            return
        _DEAD_LETTERED.inc()
        letters.insert_one(
            {
                "job_id": document["job_id"],
                "kind": document.get("kind", KIND_MINE),
                "parent_id": document.get("parent_id"),
                "dataset": document.get("dataset"),
                "parameters": document.get("parameters"),
                "units": document.get("units"),
                "attempts": int(document.get("attempt", 0)),
                "max_attempts": self._attempt_limit(document),
                "last_worker": document.get("worker_id"),
                "quarantined_at": now,
            }
        )

    def _resolve_parents_locked(self, now: float) -> int:
        """Drive planned parents from their children's states.

        A planned parent is lease-less: its lifecycle is a pure function of
        its sub-jobs, applied here (under the registry's critical section)
        by whichever process runs reclamation or recovery first —

        * any child ``failed`` → parent ``failed`` with a diagnosis naming
          the shard, and the remaining children are cancelled;
        * cancellation (requested on the parent, or a child ended
          ``cancelled``) propagates and completes once children stop;
        * the merge ``succeeded`` → parent ``succeeded``, publishing the
          merge's result key;
        * otherwise the parent's progress tracks its shard completions.

        Returns how many documents changed (persistence is the caller's).
        """
        changed = 0
        parents = [
            document
            for document in self._collection().find({"state": RUNNING})
            if document.get("kind", KIND_MINE) == KIND_MINE
            and document.get("planned")
        ]
        for parent in parents:
            children = self._collection().find(
                {"parent_id": parent["job_id"]}, sort="sequence"
            )
            shards = [
                c for c in children if c.get("kind") == KIND_SHARD
            ]
            merge = next(
                (c for c in children if c.get("kind") == KIND_MERGE), None
            )
            failed = next(
                (c for c in children if c["state"] == FAILED), None
            )
            if failed is not None:
                error = failed.get("error") or {}
                if failed.get("kind") == KIND_SHARD:
                    where = (
                        f"shard {failed.get('shard_index')}/"
                        f"{len(shards)} ({failed['job_id']})"
                    )
                else:
                    where = f"merge step ({failed['job_id']})"
                diagnosis = JobError(
                    type=str(error.get("type", "ShardFailed")),
                    message=(
                        f"{where} failed after "
                        f"{int(failed.get('attempt', 0))} attempt(s) "
                        f"[{error.get('type', 'unknown')}]: "
                        f"{error.get('message', 'no message recorded')}"
                    ),
                )
                self._collection().update_if(
                    {"job_id": parent["job_id"]},
                    {"state": RUNNING},
                    {
                        "state": FAILED,
                        "finished_at": now,
                        "error": diagnosis.to_document(),
                    },
                )
                self._cancel_children_locked(parent["job_id"], children, now)
                changed += 1
                continue
            cancelling = parent.get("cancel_requested") or any(
                c["state"] == CANCELLED for c in children
            )
            if cancelling:
                changed += self._cancel_children_locked(
                    parent["job_id"], children, now
                )
                if all(c["state"] in TERMINAL_STATES for c in children):
                    self._collection().update_if(
                        {"job_id": parent["job_id"]},
                        {"state": RUNNING},
                        {"state": CANCELLED, "finished_at": now},
                    )
                    changed += 1
                continue
            if merge is not None and merge["state"] == SUCCEEDED:
                self._collection().update_if(
                    {"job_id": parent["job_id"]},
                    {"state": RUNNING},
                    {
                        "state": SUCCEEDED,
                        "finished_at": now,
                        "progress": 1.0,
                        "shards_done": len(shards),
                        "shards_total": len(shards),
                        "result_key": merge.get("result_key") or parent["key"],
                    },
                )
                changed += 1
                continue
            done = sum(1 for c in shards if c["state"] == SUCCEEDED)
            fraction = min(done / len(shards), 0.99) if shards else 0.0
            if (
                fraction > parent.get("progress", 0.0)
                or done != parent.get("shards_done", 0)
            ):
                self._collection().update_if(
                    {"job_id": parent["job_id"]},
                    {"state": RUNNING},
                    {
                        "progress": max(fraction, parent.get("progress", 0.0)),
                        "shards_done": done,
                        "shards_total": len(shards),
                    },
                )
                changed += 1
        return changed

    def _cancel_children_locked(
        self, parent_id: str, children: list[dict[str, Any]], now: float
    ) -> int:
        """Stop a failing/cancelling parent's remaining children.

        Queued children cancel immediately; running ones get the
        cooperative flag (their worker aborts at the next checkpoint, or
        lease reclamation finishes the cancellation for a dead one).
        """
        changed = 0
        for child in children:
            if child["state"] == QUEUED:
                if self._collection().update_if(
                    {"job_id": child["job_id"]},
                    {"state": QUEUED},
                    {
                        "state": CANCELLED,
                        "cancel_requested": True,
                        "finished_at": now,
                    },
                ):
                    changed += 1
            elif child["state"] == RUNNING and not child.get("cancel_requested"):
                self._collection().update_one(
                    {"job_id": child["job_id"]}, {"cancel_requested": True}
                )
                changed += 1
        return changed

    # -- progress ---------------------------------------------------------------

    def set_progress(
        self, job_id: str, done: int, total: int, attempt: int | None = None
    ) -> Job:
        """Record a progress tick; monotone, capped below 1.0, lease-renewing.

        Ticks mutate the local view immediately; the snapshot is only
        rewritten when the lease is due for renewal (writing the whole
        database per shard would drown the mine in IO).  The monotone rule
        is per *attempt* — a requeued job legitimately starts over at 0 —
        and a tick carrying an ``attempt`` is ignored unless it matches the
        current claim (a stale thread of this same process must not touch a
        newer attempt's progress or lease).

        WAL engine: ticks write through — one appended record per tick is
        cheap, and it renews the lease inline (an extra field on the same
        record) instead of taking a second critical section.  The local
        progress cache exists only for the snapshot engine's deferred
        persistence.
        """
        if self.database.engine == "wal":
            return self._set_progress_wal(job_id, done, total, attempt)
        with self._lock:
            document = self._doc(job_id)
            if (
                document is None
                or document["state"] != RUNNING
                or document.get("worker_id") != self.worker_id
                or (attempt is not None and document.get("attempt") != attempt)
                or total <= 0
            ):
                return self._job(document) if document else None  # type: ignore[return-value]
            fraction = min(max(done / total, 0.0), 1.0)
            fraction = min(fraction, 0.99)
            changes: dict[str, Any] = {}
            if fraction >= document.get("progress", 0.0):
                changes["progress"] = fraction
                if (
                    document.get("shards_total") != total
                    or done > document.get("shards_done", 0)
                ):
                    changes["shards_done"] = done
                    changes["shards_total"] = total
            if changes:
                self._collection().update_one({"job_id": job_id}, changes)
                document = self._require_doc(job_id)
                self._progress_cache[job_id] = {
                    "progress": document["progress"],
                    "shards_done": document["shards_done"],
                    "shards_total": document["shards_total"],
                    "attempt": document.get("attempt", 0),
                }
            lease = document.get("lease_expires_at")
            renew_due = (
                lease is not None
                and lease - self._clock() < self.lease_seconds * (2.0 / 3.0)
            )
        if renew_due:
            self.renew_lease(job_id, attempt=attempt)
            with self._lock:
                self._progress_cache.pop(job_id, None)  # persisted with renewal
                document = self._doc(job_id) or document
        return self._job(document)

    def _set_progress_wal(
        self, job_id: str, done: int, total: int, attempt: int | None
    ) -> Job:
        """Write-through progress tick for the WAL engine."""
        with self._exclusive():
            document = self._doc(job_id)
            if (
                document is None
                or document["state"] != RUNNING
                or document.get("worker_id") != self.worker_id
                or (attempt is not None and document.get("attempt") != attempt)
                or total <= 0
            ):
                return self._job(document) if document else None  # type: ignore[return-value]
            fraction = min(min(max(done / total, 0.0), 1.0), 0.99)
            changes: dict[str, Any] = {}
            if fraction >= document.get("progress", 0.0):
                changes["progress"] = fraction
                if (
                    document.get("shards_total") != total
                    or done > document.get("shards_done", 0)
                ):
                    changes["shards_done"] = done
                    changes["shards_total"] = total
            lease = document.get("lease_expires_at")
            if (
                lease is not None
                and lease - self._clock() < self.lease_seconds * (2.0 / 3.0)
            ):
                changes["lease_expires_at"] = self._clock() + self.lease_seconds
            if changes:
                expected: dict[str, Any] = {
                    "state": RUNNING,
                    "worker_id": self.worker_id,
                }
                if attempt is not None:
                    expected["attempt"] = attempt
                self._collection().update_if(
                    {"job_id": job_id}, expected, changes
                )
                document = self._doc(job_id) or document
            return self._job(document)

    # -- terminal transitions ---------------------------------------------------

    def mark_succeeded(
        self,
        job_id: str,
        result_key: str | None = None,
        attempt: int | None = None,
    ) -> Job:
        with self._exclusive():
            document = self._require_doc(job_id)
            ensure_transition(document["state"], SUCCEEDED)
            self._finish_locked(
                document,
                SUCCEEDED,
                {
                    "progress": 1.0,
                    "shards_done": document.get("shards_total", 0)
                    or document.get("shards_done", 0),
                    "result_key": result_key,
                },
                expected_attempt=attempt,
                fault_before="before-succeed-persist",
                fault_after="after-succeed-persist",
            )
            return self._job(self._require_doc(job_id))

    def mark_failed(
        self, job_id: str, exc: BaseException, attempt: int | None = None
    ) -> Job:
        with self._exclusive():
            document = self._require_doc(job_id)
            ensure_transition(document["state"], FAILED)
            self._finish_locked(
                document,
                FAILED,
                {"error": JobError.from_exception(exc).to_document()},
                expected_attempt=attempt,
            )
            return self._job(self._require_doc(job_id))

    def mark_cancelled(self, job_id: str, attempt: int | None = None) -> Job:
        with self._exclusive():
            document = self._require_doc(job_id)
            ensure_transition(document["state"], CANCELLED)
            self._finish_locked(document, CANCELLED, {}, expected_attempt=attempt)
            return self._job(self._require_doc(job_id))

    def _finish_locked(
        self,
        document: Mapping[str, Any],
        state: str,
        extra: Mapping[str, Any],
        expected_attempt: int | None = None,
        fault_before: str | None = None,
        fault_after: str | None = None,
    ) -> None:
        """One terminal transition, ownership-checked and persisted.

        From ``running``, the CAS re-checks ``worker_id`` *and* — when the
        caller passes its claim's ``expected_attempt`` — the attempt
        counter: a worker whose lease lapsed and whose job was requeued and
        re-claimed gets a :class:`JobStateError` instead of clobbering the
        newer attempt.  The attempt check matters within one process too,
        where the executor and the polling worker share a ``worker_id``.
        """
        expected: dict[str, Any] = {"state": document["state"]}
        if document["state"] == RUNNING:
            expected["worker_id"] = self.worker_id
            if expected_attempt is not None:
                expected["attempt"] = expected_attempt
        changes = {
            **extra,
            "state": state,
            "finished_at": self._clock(),
            "lease_expires_at": None,
        }
        if fault_before is not None:
            # Crash *before* the transition reaches disk.  The CAS itself
            # writes through on the WAL engine, so "before persist" means
            # before the update — on the snapshot engine the process dies
            # either way before ``_persist`` runs.
            self._fault_point(fault_before)
        matched = self._collection().update_if(
            {"job_id": document["job_id"]}, expected, changes
        )
        if matched is None:
            _CAS_CONFLICTS.inc()
            raise JobStateError(
                f"job {document['job_id']} is no longer owned by "
                f"{self.worker_id!r} (lease lost); refusing the "
                f"{document['state']!r} -> {state!r} transition"
            )
        self._progress_cache.pop(document["job_id"], None)
        self._persist()
        if fault_after is not None:
            self._fault_point(fault_after)

    def request_cancel(self, job_id: str) -> Job:
        """Ask a job to stop; immediate when queued, cooperative when running.

        The flag is persisted, so whichever process's worker holds the
        lease sees it at its next checkpoint poll.  Cancelling a planned
        distributed parent propagates to its sub-jobs: queued children
        cancel at once, running ones get the flag, and the resolution pass
        completes the parent when the last child stops.
        """
        with self._exclusive():
            document = self._require_doc(job_id)
            if document["state"] == CANCELLED:
                return self._job(document)
            if document["state"] in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} already finished ({document['state']}); "
                    f"cannot cancel"
                )
            now = self._clock()
            self._collection().update_one(
                {"job_id": job_id}, {"cancel_requested": True}
            )
            if document["state"] == QUEUED:
                self._collection().update_if(
                    {"job_id": job_id},
                    {"state": QUEUED},
                    {"state": CANCELLED, "finished_at": now},
                )
            elif document.get("planned"):
                children = self._collection().find(
                    {"parent_id": job_id}, sort="sequence"
                )
                self._cancel_children_locked(job_id, children, now)
                self._resolve_parents_locked(now)
            self._persist()
            return self._job(self._require_doc(job_id))

    # -- distributed sub-jobs ---------------------------------------------------

    def plan_workers(self, job_id: str) -> int:
        """The planning width a distributed parent was submitted with."""
        with self._lock:
            self._refresh_locked()
            document = self._require_doc(job_id)
            return int(document.get("plan_workers", PLAN_WORKERS_DEFAULT))

    def finish_planning(
        self,
        job_id: str,
        attempt: int,
        *,
        shard_units: list[list[Mapping[str, Any]]],
        mode: str,
        horizon: int,
        generation: int = 0,
    ) -> Job:
        """Persist a distributed parent's plan: shard + merge sub-jobs.

        Runs under the planner's claim on the parent; the parent's
        transition to *planned* (running, lease-less, child-driven) is a
        CAS on ``{worker_id, attempt}``, so a planner that lost its lease
        mid-plan cannot clobber a newer planning attempt.  Sub-job ids are
        deterministic (``<parent>-s<index>``, ``<parent>-merge``) and
        insertion skips ids that already exist, which makes a re-run after
        a planner crash idempotent — the plan itself is a pure function of
        the stored submission (see :mod:`repro.jobs.planner`).

        ``generation`` is the *dataset* generation the planner observed;
        it is stamped on every sub-job so shard/merge runners can refuse
        to compute (or publish) against replaced data.
        """
        with self._exclusive():
            parent = self._require_doc(job_id)
            if parent["state"] != RUNNING:
                raise JobStateError(
                    f"cannot plan job {job_id} in state {parent['state']!r}"
                )
            now = self._clock()
            generation = int(generation)
            shard_ids = [
                f"{job_id}-s{index:03d}" for index in range(len(shard_units))
            ]
            merge_id = f"{job_id}-merge"
            sequence = self._next_sequence()
            for index, units in enumerate(shard_units):
                if self._doc(shard_ids[index]) is not None:
                    continue
                child = Job(
                    job_id=shard_ids[index],
                    dataset=parent["dataset"],
                    parameters=dict(parent["parameters"]),
                    key=parent["key"],
                    created_at=now,
                    kind=KIND_SHARD,
                    parent_id=job_id,
                    shard_index=index,
                    max_attempts=parent.get("max_attempts"),
                    trace_id=parent.get("trace_id"),
                    sequence=sequence,
                )
                sequence += 1
                stored = self._store_document(child)
                stored.update(
                    {
                        "units": [dict(unit) for unit in units],
                        "mode": mode,
                        "horizon": int(horizon),
                        "generation": generation,
                    }
                )
                self._collection().insert_one(stored)
            if self._doc(merge_id) is None:
                merge = Job(
                    job_id=merge_id,
                    dataset=parent["dataset"],
                    parameters=dict(parent["parameters"]),
                    key=parent["key"],
                    created_at=now,
                    kind=KIND_MERGE,
                    parent_id=job_id,
                    max_attempts=parent.get("max_attempts"),
                    trace_id=parent.get("trace_id"),
                    sequence=sequence,
                )
                stored = self._store_document(merge)
                stored.update(
                    {"mode": mode, "horizon": int(horizon),
                     "generation": generation}
                )
                self._collection().insert_one(stored)
            matched = self._collection().update_if(
                {"job_id": job_id},
                {
                    "state": RUNNING,
                    "worker_id": self.worker_id,
                    "attempt": int(attempt),
                },
                {
                    "planned": True,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "shards_total": len(shard_units),
                    "shards_done": 0,
                    "shard_ids": shard_ids,
                    "merge_id": merge_id,
                    "generation": generation,
                    "mode": mode,
                    "horizon": int(horizon),
                },
            )
            if matched is None:
                raise JobStateError(
                    f"job {job_id} is no longer owned by {self.worker_id!r} "
                    f"(lease lost); refusing to finish planning"
                )
            self._persist()
            return self._job(self._require_doc(job_id))

    def shard_spec(self, job_id: str) -> dict[str, Any]:
        """A sub-job's execution inputs, as persisted by the planner."""
        with self._lock:
            self._refresh_locked()
            document = self._require_doc(job_id)
            return {
                "units": document.get("units", []),
                "mode": document.get("mode"),
                "horizon": int(document.get("horizon", 0)),
                "generation": document.get("generation"),
                "parent_id": document.get("parent_id"),
            }

    def complete_shard(
        self,
        job_id: str,
        attempt: int,
        output: list[Mapping[str, Any]],
        elapsed_seconds: float = 0.0,
        timings: Mapping[str, Any] | None = None,
    ) -> Job:
        """A shard's success — tagged CAP output lands *with* the transition.

        One CAS writes the terminal state and the output atomically, so a
        crash leaves either a queued/running shard (re-runnable) or a
        succeeded one with durable output — never a success without its
        caps (the ``mid-shard`` crash point fires just before this call).

        ``timings`` is the shard runner's profiler document (per-phase and
        per-unit wall times); persisted alongside ``elapsed_seconds`` it is
        the measured ground truth ``estimate_seed_cost`` calibration reads.
        """
        with self._exclusive():
            document = self._require_doc(job_id)
            ensure_transition(document["state"], SUCCEEDED)
            # The CAP documents spill into their own collection instead of
            # bloating the job registry (every registry refresh re-parses
            # every job document; shard outputs can dwarf the jobs).  The
            # spill lands *before* the success CAS in the same exclusive
            # (fsynced) section: a crash between the two leaves an orphan
            # output document for a still-runnable shard, which the re-run
            # simply replaces — never a success without its caps.
            spilled = {
                "shard_id": job_id,
                "parent_id": document.get("parent_id"),
                "output": [dict(entry) for entry in output],
                "elapsed_seconds": float(elapsed_seconds),
            }
            outputs = self.database.collection(_SHARD_OUTPUTS)
            if outputs.replace_one({"shard_id": job_id}, spilled) is None:
                outputs.insert_one(spilled)
            changes: dict[str, Any] = {
                "progress": 1.0,
                "elapsed_seconds": float(elapsed_seconds),
            }
            if timings is not None:
                changes["timings"] = dict(timings)
            self._finish_locked(
                document,
                SUCCEEDED,
                changes,
                expected_attempt=attempt,
            )
            return self._job(self._require_doc(job_id))

    def shard_outputs(self, parent_id: str) -> list[dict[str, Any]]:
        """Every shard's tagged output (+ timings) once all have succeeded.

        Raises :class:`JobStateError` while any shard is unfinished — the
        merge step's claim gate should prevent that, but a merge runner
        racing a late reclamation must fail loudly, not merge a partial
        CAP list.
        """
        with self._lock:
            self._refresh_locked()
            parent = self._require_doc(parent_id)
            spills = self.database.collection(_SHARD_OUTPUTS)
            outputs: list[dict[str, Any]] = []
            for shard_id in parent.get("shard_ids", []):
                shard = self._require_doc(shard_id)
                if shard["state"] != SUCCEEDED:
                    raise JobStateError(
                        f"shard {shard_id} is {shard['state']!r}; the merge "
                        f"needs every shard succeeded"
                    )
                spilled = spills.find_one({"shard_id": shard_id})
                if spilled is not None:
                    output = spilled.get("output", [])
                # Pre-spill registries stored the output inline on the job
                # document; keep reading that form so old stores merge.
                elif "output" in shard:
                    output = shard.get("output", [])
                else:
                    raise JobStateError(
                        f"shard {shard_id} succeeded but its spilled output "
                        f"document is missing"
                    )
                outputs.append(
                    {
                        "shard_id": shard_id,
                        "output": output,
                        "elapsed_seconds": float(
                            shard.get("elapsed_seconds", 0.0)
                        ),
                    }
                )
            return outputs

    def release(
        self,
        job_id: str,
        attempt: int | None = None,
        *,
        retry_in: float | None = None,
    ) -> bool:
        """Voluntarily give a claim back (graceful shutdown, not a crash).

        CAS-guarded ``running → queued`` with no backoff gate: the job is
        immediately claimable by any surviving process — takeover does not
        wait out the lease.  If cancellation was requested meanwhile, the
        release completes it instead.  Returns whether this worker still
        owned the claim.

        ``retry_in`` sets a short ``not_before`` gate instead of immediate
        claimability — the resident stream job's idle cadence: drained, it
        releases with a sub-second gate so the polling worker re-claims on
        a beat instead of spinning.
        """
        expected: dict[str, Any] = {
            "state": RUNNING,
            "worker_id": self.worker_id,
        }
        if attempt is not None:
            expected["attempt"] = attempt
        with self._exclusive():
            document = self._doc(job_id)
            if document is None:
                return False
            if document.get("cancel_requested"):
                changes: dict[str, Any] = {
                    "state": CANCELLED,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "finished_at": self._clock(),
                }
            else:
                changes = {
                    "state": QUEUED,
                    "worker_id": None,
                    "lease_expires_at": None,
                    "started_at": None,
                    "not_before": (
                        self._clock() + retry_in if retry_in is not None else None
                    ),
                    "progress": 0.0,
                    "shards_done": 0,
                    "shards_total": 0,
                }
            matched = self._collection().update_if(
                {"job_id": job_id}, expected, changes
            )
            if matched is None:
                return False
            self.spans.close_open_spans(
                job_id, "released", error="claim released"
            )
            self._progress_cache.pop(job_id, None)
            self._persist()
            return True

    def redrive(self, job_ids: Sequence[str] | None = None) -> list[str]:
        """Replay quarantined dead-letter entries as fresh work.

        For each ``dead_letters`` entry (optionally filtered to
        ``job_ids``), the original failed job document is revived in place:
        CAS back to ``queued`` with its **attempt counter reset to 0**, the
        error and backoff gate cleared — an operator-sanctioned second
        life after the poison-input (or flaky-infrastructure) episode the
        quarantine recorded.  Reviving a dead-lettered *sub-job* also
        restores the lineage its failure tore down: the failed planned
        parent returns to its lease-less running form and cancelled
        siblings are requeued with fresh counters, so the distributed mine
        can finish.  Consumed entries leave the dead-letter collection.

        Like lease reclamation, this deliberately steps outside the
        lifecycle table (``failed → queued`` is not a worker-legal edge) —
        it is an administrative transition, applied under the registry's
        critical section with CAS guards so a concurrently revived or
        re-failed job is never clobbered.  Returns the revived job ids.
        """
        fresh: dict[str, Any] = {
            "state": QUEUED,
            "attempt": 0,
            "worker_id": None,
            "lease_expires_at": None,
            "started_at": None,
            "finished_at": None,
            "not_before": None,
            "error": None,
            "progress": 0.0,
            "shards_done": 0,
            "shards_total": 0,
            "cancel_requested": False,
        }
        wanted = set(job_ids) if job_ids is not None else None
        redriven: list[str] = []
        with self._exclusive():
            letters = self.database.collection(_DEAD_LETTERS)
            for entry in letters.find(sort="quarantined_at"):
                job_id = str(entry["job_id"])
                if wanted is not None and job_id not in wanted:
                    continue
                document = self._doc(job_id)
                if document is None:
                    # The job was pruned with its parent; the quarantine
                    # record is all that is left — drop it.
                    letters.delete_many({"job_id": job_id})
                    continue
                if document["state"] != FAILED:
                    continue  # already revived, or resolved another way
                if (
                    self._collection().update_if(
                        {"job_id": job_id}, {"state": FAILED}, fresh
                    )
                    is None
                ):
                    continue
                parent_id = document.get("parent_id")
                if parent_id:
                    self._collection().update_if(
                        {"job_id": parent_id},
                        {"state": FAILED},
                        {
                            "state": RUNNING,
                            "worker_id": None,
                            "lease_expires_at": None,
                            "finished_at": None,
                            "error": None,
                            "cancel_requested": False,
                        },
                    )
                    for sibling in self._collection().find(
                        {"parent_id": parent_id}
                    ):
                        if sibling["job_id"] == job_id:
                            continue
                        if sibling["state"] == CANCELLED:
                            self._collection().update_if(
                                {"job_id": sibling["job_id"]},
                                {"state": CANCELLED},
                                dict(fresh),
                            )
                letters.delete_many({"job_id": job_id})
                redriven.append(job_id)
            if redriven:
                self._persist()
        return redriven

    # -- recovery ---------------------------------------------------------------

    def recover(self) -> dict[str, list[str]]:
        """Startup recovery over the shared registry.

        * ``running`` jobs with a lapsed lease are requeued (their worker
          died mid-mine); live leases are left alone — another process may
          legitimately be mining them right now.
        * ``succeeded`` jobs are *republished*: their result documents are
          checked against the results collection, so the job resource keeps
          answering (and linking to its PR 4 result resource) after a
          restart; a succeeded job whose result document is gone is
          reported, not re-run (results are only deleted deliberately).
        * ``queued`` jobs are reported so the caller can schedule them onto
          its executor — a restart must finish what the dead process
          accepted.
        * planned distributed parents are left ``running`` (they are
          lease-less by design); instead the child-resolution pass runs, so
          a parent whose shard dead-lettered while every server was down
          still fails with its diagnosis.  Jobs that exhausted
          ``max_attempts`` during this recovery are reported under
          ``dead_lettered``.
        """
        summary: dict[str, list[str]] = {
            "requeued": [],
            "republished": [],
            "missing_results": [],
            "dead_lettered": [],
            "queued": [],
        }
        with self._exclusive():
            results = self.database.collection(self._results_collection)
            now = self._clock()
            changed = False
            for document in self._collection().find(sort="sequence"):
                state = document["state"]
                if state == RUNNING:
                    if (
                        document.get("kind", KIND_MINE) == KIND_MINE
                        and document.get("planned")
                    ):
                        continue  # child-driven; resolved below
                    lease = document.get("lease_expires_at")
                    if lease is None or lease < now:
                        job = self._requeue_locked(document, now)
                        changed = True
                        if job.state == QUEUED:
                            summary["requeued"].append(job.job_id)
                        elif job.state == FAILED:
                            summary["dead_lettered"].append(job.job_id)
                elif state == SUCCEEDED:
                    key = document.get("result_key")
                    if key and results.find_one({"key": key}) is None:
                        summary["missing_results"].append(document["job_id"])
                    else:
                        summary["republished"].append(document["job_id"])
            if self._resolve_parents_locked(now):
                changed = True
            if changed:
                self._persist()
            for document in self._collection().find(
                {"state": QUEUED}, sort="sequence"
            ):
                summary["queued"].append(document["job_id"])
        return summary

    # -- retention --------------------------------------------------------------

    def _prune_terminal_locked(self) -> None:
        # Capacity counts top-level jobs; a pruned distributed parent takes
        # its shard/merge documents (and their stored outputs) with it, so
        # sub-jobs can never outlive — or evict — the parents they feed.
        terminal = [
            document
            for document in self._collection().find(
                {"state": {"$in": sorted(TERMINAL_STATES)}}, sort="sequence"
            )
            if document.get("kind", KIND_MINE) == KIND_MINE
        ]
        overflow = terminal[: max(0, len(terminal) - self._terminal_capacity)]
        spans = self.database.collection("spans")
        spills = self.database.collection(_SHARD_OUTPUTS)
        for document in overflow:
            if document["state"] == SUCCEEDED and document.get("result_key"):
                self._evicted_results[document["job_id"]] = document["result_key"]
            for child in self._collection().find(
                {"parent_id": document["job_id"]}
            ):
                spans.delete_many({"job_id": child["job_id"]})
                spills.delete_many({"shard_id": child["job_id"]})
            spans.delete_many({"job_id": document["job_id"]})
            self._collection().delete_many({"job_id": document["job_id"]})
            self._collection().delete_many({"parent_id": document["job_id"]})

    def __len__(self) -> int:
        with self._lock:
            self._refresh_locked()
            return len(self._collection())
