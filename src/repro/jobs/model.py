"""Job model: lifecycle states, the transition table, structured errors.

A *job* is one asynchronous mining run.  Its lifecycle is a small state
machine::

                      ┌──────────► cancelled
                      │                ▲
    queued ────► running ────► succeeded
                      │
                      └───────► failed

``queued → cancelled`` is the immediate path (the job never started, so no
cooperation is needed); ``running → cancelled`` is cooperative — the worker
raises :class:`~repro.core.parallel.MiningCancelled` at the engine's next
shard/component checkpoint.  Terminal states never transition again.

The durable registry (:class:`~repro.jobs.durable.DurableJobStore`) adds one
*recovery* edge outside this table: ``running → queued``, taken only when a
running job's **lease** lapsed (its worker died without finishing).  That
edge is deliberately not in :data:`_TRANSITIONS` — a live worker can never
take it; only lease-expiry reclamation can (see ``DurableJobStore.requeue``).

Everything here is plain data; the thread-safety lives in
:class:`~repro.jobs.store.JobStore` / the durable store.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JOB_KINDS",
    "KIND_MINE",
    "KIND_SHARD",
    "KIND_MERGE",
    "KIND_STREAM",
    "ATTEMPTS_EXHAUSTED",
    "JobStateError",
    "JobError",
    "Job",
    "ensure_transition",
]

QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state, in lifecycle order (the ``GET /jobs?status=`` vocabulary).
JOB_STATES = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

#: Job kinds (PR 7, distributed mining; PR 9, streaming).  A ``mine`` job
#: is the classic whole-run unit *and* the parent of a distributed run;
#: ``shard`` and ``merge`` are its claimable sub-jobs, living in the same
#: registry and moving through the same state machine under their own
#: leases.  A ``stream`` job is the *resident* incremental miner of one
#: dataset's live observation feed: top-level and claimable like a mine,
#: but long-lived — it drains appended batches, releases its claim when
#: idle, and is re-claimed when new observations arrive (or after a crash,
#: via lease expiry), replaying from its persisted high-water mark.
KIND_MINE = "mine"
KIND_SHARD = "shard"
KIND_MERGE = "merge"
KIND_STREAM = "stream"
JOB_KINDS = (KIND_MINE, KIND_SHARD, KIND_MERGE, KIND_STREAM)

#: ``JobError.type`` of a dead-lettered job: it crashed (or lost its lease)
#: on every one of its ``max_attempts`` claims and was quarantined instead
#: of being requeued forever.
ATTEMPTS_EXHAUSTED = "AttemptsExhausted"

_TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({SUCCEEDED, FAILED, CANCELLED}),
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class JobStateError(ValueError):
    """An illegal lifecycle transition (e.g. cancelling a finished job)."""


def ensure_transition(old: str, new: str) -> None:
    """Validate one state-machine edge; raises :class:`JobStateError`."""
    if new not in _TRANSITIONS.get(old, frozenset()):
        raise JobStateError(f"illegal job transition {old!r} -> {new!r}")


@dataclass
class JobError:
    """Structured capture of a failed run (what ``GET /jobs/{id}`` shows)."""

    type: str
    message: str
    traceback: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "JobError":
        return cls(
            type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def to_document(self) -> dict[str, Any]:
        return {"type": self.type, "message": self.message, "traceback": self.traceback}

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "JobError":
        return cls(
            type=str(document["type"]),
            message=str(document["message"]),
            traceback=document.get("traceback"),
        )


@dataclass
class Job:
    """One asynchronous mining run and everything the API reports about it.

    Attributes
    ----------
    job_id:
        ``job-<seq>-<key prefix>`` — unique per store, prefix readable.
    dataset, parameters:
        What is being mined (parameters as their canonical document form).
    key:
        The result cache key of (dataset, parameters) — dedup identity and,
        on success, where the result landed in ``cap_results``.
    state:
        One of :data:`JOB_STATES`.
    progress:
        Monotone fraction in [0, 1]; 1.0 exactly once succeeded.
    shards_done, shards_total:
        The progress fraction's numerator/denominator (component shards).
    created_at, started_at, finished_at:
        Epoch seconds; ``None`` until the phase is reached.
    cancel_requested:
        Set by ``POST /jobs/{id}/cancel``; the running worker polls it.
    error:
        Structured failure capture, only in the ``failed`` state.
    result_key:
        Cache key the stored result is retrievable under (success only;
        equals ``key`` for mining jobs).
    worker_id:
        Identity of the worker process currently (or last) executing the
        job; ``None`` while queued.  Stamped atomically by the durable
        registry's lease claim.
    lease_expires_at:
        Epoch seconds the current claim is valid until; renewed on progress
        updates.  A running job whose lease lapsed may be reclaimed
        (requeued) by any process — its worker is presumed dead.
    attempt:
        How many times the job has been claimed for execution (1 on the
        first claim; grows when lease expiry requeues it).
    kind:
        ``"mine"`` (a whole run / distributed parent), ``"shard"``, or
        ``"merge"`` (distributed sub-jobs; see :data:`JOB_KINDS`).
    parent_id, shard_index:
        Sub-job lineage: the distributed parent's ``job_id`` and, for
        shards, the planner-assigned index (``None`` on top-level jobs).
    distributed, planned:
        On a parent ``mine`` job: submitted for shard-level execution, and
        whether the planner step has persisted its sub-jobs yet.  A planned
        parent stays ``running`` without a lease — its completion is driven
        by its children, not by a worker.
    not_before:
        Exponential-backoff gate: a requeued job is not claimable again
        until this epoch time (``None`` = immediately claimable).
    max_attempts:
        Per-job override of the registry's dead-letter bound (``None`` =
        use the store default; ``0`` = unlimited).
    trace_id:
        The request-minted trace identifier (``X-Request-Id``), inherited
        parent → planner → shard/merge sub-jobs so every span of one
        distributed mine correlates across processes.
    elapsed_seconds, timings:
        Measured execution telemetry written back by ``complete_shard``:
        the shard's wall time and the profiler's per-phase/per-unit
        breakdown (``None`` until the shard has run) — the ground truth
        the planner's ``estimate_seed_cost`` calibration needs.
    """

    job_id: str
    dataset: str
    parameters: dict[str, Any]
    key: str
    created_at: float
    state: str = QUEUED
    progress: float = 0.0
    shards_done: int = 0
    shards_total: int = 0
    started_at: float | None = None
    finished_at: float | None = None
    cancel_requested: bool = False
    error: JobError | None = None
    result_key: str | None = None
    worker_id: str | None = None
    lease_expires_at: float | None = None
    attempt: int = 0
    kind: str = KIND_MINE
    parent_id: str | None = None
    shard_index: int | None = None
    distributed: bool = False
    planned: bool = False
    not_before: float | None = None
    max_attempts: int | None = None
    trace_id: str | None = None
    elapsed_seconds: float | None = None
    timings: dict[str, Any] | None = None
    #: Insertion-order sequence number (stable ``GET /jobs`` ordering).
    sequence: int = field(default=0, repr=False)

    def to_document(self) -> dict[str, Any]:
        """JSON-serialisable form — the ``GET /jobs/{id}`` payload core."""
        return {
            "job_id": self.job_id,
            "dataset": self.dataset,
            "parameters": self.parameters,
            "key": self.key,
            "state": self.state,
            "progress": self.progress,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "error": self.error.to_document() if self.error else None,
            "result_key": self.result_key,
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "attempt": self.attempt,
            "kind": self.kind,
            "parent_id": self.parent_id,
            "shard_index": self.shard_index,
            "distributed": self.distributed,
            "planned": self.planned,
            "not_before": self.not_before,
            "max_attempts": self.max_attempts,
            "trace_id": self.trace_id,
            "elapsed_seconds": self.elapsed_seconds,
            "timings": self.timings,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "Job":
        """Rebuild a job from its stored document (the durable registry)."""
        error = document.get("error")
        return cls(
            job_id=str(document["job_id"]),
            dataset=str(document["dataset"]),
            parameters=dict(document["parameters"]),
            key=str(document["key"]),
            created_at=float(document["created_at"]),
            state=str(document.get("state", QUEUED)),
            progress=float(document.get("progress", 0.0)),
            shards_done=int(document.get("shards_done", 0)),
            shards_total=int(document.get("shards_total", 0)),
            started_at=document.get("started_at"),
            finished_at=document.get("finished_at"),
            cancel_requested=bool(document.get("cancel_requested", False)),
            error=JobError.from_document(error) if error else None,
            result_key=document.get("result_key"),
            worker_id=document.get("worker_id"),
            lease_expires_at=document.get("lease_expires_at"),
            attempt=int(document.get("attempt", 0)),
            kind=str(document.get("kind", KIND_MINE)),
            parent_id=document.get("parent_id"),
            shard_index=document.get("shard_index"),
            distributed=bool(document.get("distributed", False)),
            planned=bool(document.get("planned", False)),
            not_before=document.get("not_before"),
            max_attempts=document.get("max_attempts"),
            trace_id=document.get("trace_id"),
            elapsed_seconds=document.get("elapsed_seconds"),
            timings=document.get("timings"),
            sequence=int(document.get("sequence", 0)),
        )
