"""The lease-polling job worker: multi-process serving's execution loop.

A :class:`JobWorker` thread turns any process holding a
:class:`~repro.jobs.durable.DurableJobStore` into a mining worker for the
*shared* registry, not just for jobs submitted to this process:

* it reclaims running jobs whose lease lapsed (their worker died), then
* claims the oldest queued job — wherever it was enqueued — rebuilds its
  runner from the stored (dataset, parameters) via the ``runner_factory``,
  and executes it through the same
  :func:`~repro.jobs.executor.run_claimed_job` tail the executor uses.

Both steps are compare-and-set claims, so any number of workers across any
number of processes execute each job exactly once.  The loop never dies on
an error: a failed claim or a crashed runner-factory marks the job failed
(or just skips the tick) and the next interval retries.
"""

from __future__ import annotations

import threading
from typing import Callable

from .durable import DurableJobStore
from .executor import JobRunner, run_claimed_job
from .model import Job

__all__ = ["JobWorker"]

#: Builds the executable work for a claimed job (typically
#: ``ServerState.runner_for_job``: load dataset, parse parameters, mine).
RunnerFactory = Callable[[Job], JobRunner]


class JobWorker(threading.Thread):
    """Daemon thread that claims and executes jobs from a durable registry."""

    def __init__(
        self,
        store: DurableJobStore,
        runner_factory: RunnerFactory,
        interval: float = 1.0,
        name: str | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"poll interval must be > 0, got {interval}")
        super().__init__(daemon=True, name=name or f"job-worker-{store.worker_id}")
        self.store = store
        self.runner_factory = runner_factory
        self.interval = float(interval)
        self._stopping = threading.Event()
        #: ``(job_id, attempt)`` of the claim being executed right now.
        self._current: tuple[str, int] | None = None

    def stop(self, wait: bool = False) -> None:
        """Ask the loop to exit; ``wait=True`` joins the thread.

        Graceful shutdown releases the claim being executed *immediately*
        (CAS back to queued), so a surviving process takes the job over
        now instead of waiting out the lease.  The runner also aborts at
        its next engine checkpoint; its late release attempt then
        CAS-fails silently (the claim is no longer this worker's).
        """
        self._stopping.set()
        current = self._current
        if current is not None:
            try:
                self.store.release(*current)
            except Exception:
                pass  # shutdown must not die on a store hiccup
        if wait and self.is_alive():
            self.join()

    def run(self) -> None:  # pragma: no cover - exercised via subprocesses
        while not self._stopping.is_set():
            try:
                worked = self._tick()
            except Exception:
                # Never die: a transient store error (e.g. the snapshot
                # mid-replacement on an unlucky filesystem) retries next tick.
                worked = False
            if worked:
                continue  # drain the queue before sleeping again
            self._stopping.wait(self.interval)

    def _tick(self) -> bool:
        """One poll: reclaim lapsed leases, then run one queued job."""
        self.store.reclaim_expired()
        job = self.store.claim_next()
        if job is None:
            return False
        try:
            runner = self.runner_factory(job)
        except BaseException as exc:  # noqa: BLE001 - job must not stay leased
            from .model import JobStateError

            try:
                self.store.mark_failed(job.job_id, exc, attempt=job.attempt)
            except JobStateError:
                pass
            return True
        self._current = (job.job_id, job.attempt)
        try:
            run_claimed_job(
                self.store, job, runner, should_abort=self._stopping.is_set
            )
        finally:
            self._current = None
        return True
