"""The job queue facade: submit, cancel, observe.

:class:`JobQueue` is what the server and CLI talk to — it composes the
registry (:class:`~repro.jobs.store.JobStore`) with the background executor
(:class:`~repro.jobs.executor.JobExecutor`) and owns the dedup rule:
submissions are identified by the *result cache key* of their
(dataset, parameters) pair, the same canonical hash Section 3.3 caches
results under, so "identical job already in flight" and "result already
cached" are decided by one piece of machinery.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from .executor import JobExecutor, JobRunner
from .model import Job, JobStateError
from .store import JobStore

__all__ = ["JobQueue"]


class JobQueue:
    """Asynchronous mining jobs: dedup'd submission over a thread pool.

    ``store`` may be the in-memory :class:`JobStore` (default) or a
    :class:`~repro.jobs.durable.DurableJobStore` — the queue only speaks
    the registry contract they share.
    """

    def __init__(
        self,
        store: "JobStore | Any | None" = None,
        executor: JobExecutor | None = None,
        width: int = 2,
    ) -> None:
        self.store = store if store is not None else JobStore()
        self.executor = executor if executor is not None else JobExecutor(width)
        self._stopping = threading.Event()

    def submit(
        self,
        dataset: str,
        parameters: Mapping[str, Any],
        key: str,
        runner: JobRunner,
        **open_kwargs: Any,
    ) -> tuple[Job, bool]:
        """Submit a mining run; returns ``(job, created)``.

        ``created=False`` means an identical job (same cache ``key``) was
        already queued or running and is returned instead — the runner is
        *not* scheduled again.  ``runner(control)`` executes on an executor
        thread and returns the cache key its result was stored under.
        Extra keyword arguments (``distributed=``, ``plan_workers=``,
        ``max_attempts=``) pass through to the store's ``open_job``.
        """
        job, created = self.store.open_job(dataset, parameters, key, **open_kwargs)
        if created:
            self.schedule(job.job_id, runner)
        return job, created

    def schedule(self, job_id: str, runner: JobRunner) -> None:
        """Hand one already-registered job to the executor.

        The execution is wired to this queue's stop signal: on shutdown an
        in-flight run aborts at its next checkpoint and (on a shared
        registry) releases its claim for takeover.
        """
        self.executor.submit(
            self.store, job_id, runner, should_abort=self._stopping.is_set
        )

    def cancel(self, job_id: str) -> Job:
        """Request cancellation (immediate when queued, cooperative when
        running); raises ``KeyError`` for unknown ids and
        :class:`~repro.jobs.model.JobStateError` for finished jobs."""
        return self.store.request_cancel(job_id)

    def get(self, job_id: str) -> Job | None:
        return self.store.get(job_id)

    def list(self, status: str | None = None) -> list[Job]:
        return self.store.list(status)

    def children(self, parent_id: str) -> list[Job]:
        """A distributed parent's sub-jobs ([] on stores without sub-jobs)."""
        children = getattr(self.store, "children", None)
        return children(parent_id) if children is not None else []

    def evicted_result_key(self, job_id: str) -> str | None:
        """Result key left behind by an evicted succeeded job, if any."""
        return self.store.evicted_result_key(job_id)

    def counters(self) -> dict[str, int]:
        counts: dict[str, Any] = self.store.counters()
        counts["executor_width"] = self.executor.width
        return counts

    def shutdown(self, wait: bool = False) -> None:
        """Stop the queue promptly without forfeiting shared work.

        Process-local registry: cancel every non-terminal job first, so
        running mines abort at their next checkpoint instead of holding
        the (non-daemon) worker threads — a Ctrl-C exits promptly.

        Shared (store-backed) registry: cancelling would kill work other
        processes can still finish, so instead the stop signal makes
        in-flight runs abort at their next checkpoint and *release* their
        claims (CAS back to queued) for immediate takeover; jobs this
        process never claimed are simply left for the fleet.
        """
        from .model import TERMINAL_STATES

        self._stopping.set()
        if not getattr(self.store, "shared", False):
            for job in self.store.list():
                if job.state not in TERMINAL_STATES:
                    try:
                        self.store.request_cancel(job.job_id)
                    except JobStateError:
                        pass  # finished between the list and the cancel
        self.executor.shutdown(wait=wait)
