"""The job registry: thread-safe lifecycle tracking + dedup index.

:class:`JobStore` owns every :class:`~repro.jobs.model.Job` and is the only
place job state changes.  All mutation happens under one lock, shared by
API-handler threads (submit, cancel, poll) and executor worker threads
(running → terminal transitions, progress ticks), so readers always see a
consistent job.

Two invariants the store enforces beyond the transition table:

* **progress is monotone** — a late progress report can never move the bar
  backwards, and nothing but a successful finish sets it to 1.0;
* **one active job per cache key** — :meth:`open_job` atomically either
  reuses the queued/running job for a key or creates a fresh one, which is
  what makes ``POST /mine mode=async`` dedup race-free.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Mapping

from ..cache.keys import short_key
from .model import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobError,
    JobStateError,
    ensure_transition,
)

__all__ = ["JobStore"]


class JobStore:
    """In-memory registry of async jobs, safe for concurrent use.

    Terminal jobs are retained for polling but bounded: once more than
    ``terminal_capacity`` jobs have finished, the oldest finished ones are
    evicted (a long-lived server running parameter sweeps must not pin
    every historical job — the same reasoning as the server's bounded
    result memo).  Queued/running jobs are never evicted.
    """

    def __init__(self, clock=time.time, terminal_capacity: int = 256) -> None:
        if terminal_capacity < 1:
            raise ValueError(
                f"terminal_capacity must be >= 1, got {terminal_capacity}"
            )
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        #: cache key -> job_id of the one queued/running job for that key.
        self._active_by_key: dict[str, str] = {}
        #: job_id -> result_key for *evicted* succeeded jobs.  Eviction
        #: drops the job metadata but must not strand a ``Location:
        #: /api/v1/jobs/{id}`` link a client was handed this process
        #: lifetime: the mapping lets the job endpoint keep pointing at the
        #: still-cached result resource.  Insertion-ordered and bounded.
        self._evicted_results: dict[str, str] = {}
        self._sequence = 0
        self._clock = clock
        self._terminal_capacity = terminal_capacity
        self._evicted_capacity = max(1024, 4 * terminal_capacity)

    # -- creation / dedup -----------------------------------------------------

    def open_job(
        self,
        dataset: str,
        parameters: Mapping[str, Any],
        key: str,
        trace_id: str | None = None,
    ) -> tuple[Job, bool]:
        """The active job for ``key``, or a new queued one — atomically.

        Returns ``(job, created)``; ``created`` is ``False`` when an
        identical (dataset, parameters) job was already in flight and is
        being reused.  Finished jobs never dedup: re-submitting after
        success simply opens a new job (which the cache will satisfy
        instantly).  ``trace_id`` ties the job to the submitting request;
        a deduped job keeps the trace of the request that created it.
        """
        with self._lock:
            active_id = self._active_by_key.get(key)
            if active_id is not None:
                return self._jobs[active_id], False
            self._sequence += 1
            job = Job(
                job_id=f"job-{self._sequence:04d}-{short_key(key)}",
                dataset=dataset,
                parameters=dict(parameters),
                key=key,
                created_at=self._clock(),
                sequence=self._sequence,
                trace_id=trace_id,
            )
            self._jobs[job.job_id] = job
            self._active_by_key[key] = job.job_id
            self._prune_terminal()
            return job, True

    # -- lookup ---------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self, status: str | None = None) -> list[Job]:
        """Jobs in submission order, optionally filtered by state."""
        if status is not None and status not in JOB_STATES:
            raise JobStateError(
                f"unknown job status {status!r}; expected one of {JOB_STATES}"
            )
        with self._lock:
            jobs: Iterable[Job] = self._jobs.values()
            if status is not None:
                jobs = (job for job in jobs if job.state == status)
            return sorted(jobs, key=lambda job: job.sequence)

    def counters(self) -> dict[str, int]:
        """Per-state job counts (the ``/admin/stats`` payload)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["total"] = len(self._jobs)
            counts["dead_lettered"] = 0  # no retry loop to dead-letter from
            return counts

    def cancel_requested(self, job_id: str) -> bool:
        """The cooperative-cancellation poll the mining control wires to."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.cancel_requested if job is not None else False

    def evicted_result_key(self, job_id: str) -> str | None:
        """The result key of a succeeded job whose metadata was evicted.

        ``None`` for unknown ids and for evicted jobs that never produced a
        result (failed/cancelled evictions keep nothing).
        """
        with self._lock:
            return self._evicted_results.get(job_id)

    # -- lifecycle transitions ------------------------------------------------

    def mark_running(self, job_id: str) -> Job:
        with self._lock:
            job = self._require(job_id)
            ensure_transition(job.state, RUNNING)
            job.state = RUNNING
            job.started_at = self._clock()
            return job

    def set_progress(
        self, job_id: str, done: int, total: int, attempt: int | None = None
    ) -> Job:
        """Record a progress tick; monotone and capped below 1.0.

        The cap keeps ``progress == 1.0`` synonymous with "result ready":
        the last shard's tick lands at <1.0 and :meth:`mark_succeeded`
        completes the bar only once the merged result is stored.
        (``attempt`` is part of the shared registry contract; the
        in-memory store runs every job exactly once, so it is ignored.)
        """
        with self._lock:
            job = self._require(job_id)
            if job.state != RUNNING or total <= 0:
                return job
            fraction = min(max(done / total, 0.0), 1.0)
            fraction = min(fraction, 0.99)
            if fraction < job.progress:
                return job
            job.progress = fraction
            # Ties still advance the counters: the final shards of a big
            # run all land on the capped fraction, and "199/200" must keep
            # counting up even though the bar is pinned at 99%.
            if job.shards_total != total or done > job.shards_done:
                job.shards_done = done
                job.shards_total = total
            return job

    def mark_succeeded(
        self,
        job_id: str,
        result_key: str | None = None,
        attempt: int | None = None,
    ) -> Job:
        with self._lock:
            job = self._require(job_id)
            ensure_transition(job.state, SUCCEEDED)
            # Pollers read Job fields without this lock, and a terminal
            # state is their signal to stop polling — so everything a
            # terminal state promises (the result pointer, the full bar)
            # must be visible *before* the state flips.
            job.progress = 1.0
            if job.shards_total:
                job.shards_done = job.shards_total
            job.result_key = result_key
            job.state = SUCCEEDED
            self._finish(job)
            return job

    def mark_failed(
        self, job_id: str, exc: BaseException, attempt: int | None = None
    ) -> Job:
        with self._lock:
            job = self._require(job_id)
            ensure_transition(job.state, FAILED)
            job.error = JobError.from_exception(exc)  # before the state flip
            job.state = FAILED
            self._finish(job)
            return job

    def mark_cancelled(self, job_id: str, attempt: int | None = None) -> Job:
        with self._lock:
            job = self._require(job_id)
            ensure_transition(job.state, CANCELLED)
            job.state = CANCELLED
            self._finish(job)
            return job

    def request_cancel(self, job_id: str) -> Job:
        """Ask a job to stop.

        Queued jobs cancel immediately (the executor skips them); running
        jobs get the flag and cancel at the engine's next checkpoint.
        Cancelling an already-cancelled job is a no-op; any other terminal
        state raises :class:`JobStateError`.
        """
        with self._lock:
            job = self._require(job_id)
            if job.state == CANCELLED:
                return job
            if job.state in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} already finished ({job.state}); cannot cancel"
                )
            job.cancel_requested = True
            if job.state == QUEUED:
                return self.mark_cancelled(job_id)
            return job

    # -- internals ------------------------------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _finish(self, job: Job) -> None:
        job.finished_at = self._clock()
        if self._active_by_key.get(job.key) == job.job_id:
            del self._active_by_key[job.key]

    def _prune_terminal(self) -> None:
        """Evict the oldest finished jobs beyond the retention bound.

        Eviction removes the job *metadata* only: a succeeded job leaves
        its ``job_id → result_key`` mapping behind so result links issued
        against the job id this process lifetime still resolve (the result
        itself lives on in the ``cap_results`` store, untouched here).
        """
        terminal = sorted(
            (job for job in self._jobs.values() if job.state in TERMINAL_STATES),
            key=lambda job: job.sequence,
        )
        for job in terminal[: max(0, len(terminal) - self._terminal_capacity)]:
            if job.state == SUCCEEDED and job.result_key is not None:
                self._evicted_results[job.job_id] = job.result_key
            del self._jobs[job.job_id]
        while len(self._evicted_results) > self._evicted_capacity:
            self._evicted_results.pop(next(iter(self._evicted_results)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
