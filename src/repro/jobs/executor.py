"""The background executor: worker threads driving mining runs.

A thin wrapper over :class:`concurrent.futures.ThreadPoolExecutor` —
threads, not processes, because the heavy lifting already happens in the
PR 2 process pool (:mod:`repro.core.parallel`): the job thread is the
*driver* of that pool (or of the in-process component loop), spending its
life waiting on shard completions, so a handful of threads oversees many
cores without oversubscription.

:func:`run_job` is the worker-side wrapper around one run: it performs the
``queued → running`` transition — against the durable registry that is an
atomic lease *claim*, so executors and pollers racing across processes
resolve to exactly one winner — wires a
:class:`~repro.core.parallel.MiningControl` to the store (progress ticks in,
cancellation polls out), and maps the outcome onto the state machine —
return value → ``succeeded``, :class:`MiningCancelled` → ``cancelled``, any
other exception → ``failed`` with structured capture.
:func:`run_claimed_job` is the same tail for a job already claimed through
``DurableJobStore.claim_next`` (the polling worker's path).

When ``REPRO_JOBS_EXEC_LOG`` names a file, every execution appends one
``job_id worker attempt=N`` line to it (``O_APPEND``-atomic).  The
fault-injection harness uses this to assert exactly-once execution across
processes; in production the variable is unset and nothing is written.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from ..core.parallel import MiningCancelled, MiningControl
from ..obs.logging import log_context
from .model import KIND_MINE, QUEUED, Job, JobStateError

__all__ = ["HANDLED", "JobExecutor", "run_job", "run_claimed_job"]

_log = logging.getLogger("repro.jobs")

#: Environment variable: warn when one claimed execution (a shard, a merge,
#: a whole mine) runs longer than this many seconds.  Unset/invalid = off.
SLOW_SHARD_ENV = "REPRO_SLOW_SHARD_S"


def _slow_threshold() -> float | None:
    raw = os.environ.get(SLOW_SHARD_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class _Handled:
    """Sentinel: the runner applied its own terminal transition."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "HANDLED"


#: A runner returns this when it already moved the job to a terminal state
#: itself — the planner runner (``finish_planning`` leaves the parent in
#: its planned-running form) and the shard runner (``complete_shard``
#: persists output atomically with the success) do; ``run_claimed_job``
#: then applies no transition of its own.
HANDLED = _Handled()

#: ``runner(control) -> result_key | None | HANDLED`` — one job's work.
JobRunner = Callable[[MiningControl], "str | None"]

#: Environment variable naming the execution audit log (tests only).
EXEC_LOG_ENV = "REPRO_JOBS_EXEC_LOG"


def _log_execution(store, job: Job) -> None:
    path = os.environ.get(EXEC_LOG_ENV)
    if not path:
        return
    worker = getattr(store, "worker_id", "local")
    line = f"{job.job_id} {worker} attempt={job.attempt}\n"
    with open(path, "a") as handle:  # single short write: O_APPEND-atomic
        handle.write(line)


def run_job(store, job_id: str, runner: JobRunner, should_abort=None) -> None:
    """Claim and execute one job end to end, recording its lifecycle."""
    job = store.get(job_id)
    if job is None or job.state != QUEUED:
        # Cancelled (or otherwise finished) before this worker picked it up.
        return
    try:
        claimed = store.mark_running(job_id)
    except Exception:
        # Lost the race — an immediate cancel, or another process's claim,
        # landed between the check above and the transition.
        return
    run_claimed_job(store, claimed, runner, should_abort=should_abort)


def run_claimed_job(store, job: Job, runner: JobRunner, should_abort=None) -> None:
    """Execute a job this worker already claimed (holds the lease on).

    Every store write carries the claim's ``attempt``, so if the lease
    lapses mid-run and the job is re-claimed — even by this same process —
    this thread's late ticks and terminal transition are refused rather
    than applied to the newer attempt.

    ``should_abort`` is *this process's* stop signal (graceful shutdown),
    distinct from the job's cancellation flag: when it trips, the runner
    aborts at the next checkpoint and the claim is **released** — CAS'd
    back to queued for immediate takeover by a surviving process — rather
    than cancelled.

    Every execution opens a trace span *before* the work starts (when the
    store has a span store) so a ``kill -9`` mid-run leaves the open span
    behind as evidence; whoever reclaims the lease marks it
    ``interrupted``.  The span closes through a CAS, so this thread
    finishing late cannot overwrite a reclaimer's verdict.
    """
    _log_execution(store, job)
    job_id, attempt = job.job_id, job.attempt
    trace_id = getattr(job, "trace_id", None)
    spans = getattr(store, "spans", None)
    sid = None
    if spans is not None:
        # A claimed distributed parent is always the planning step — once
        # planned it stays running lease-less and is never claimed again.
        name = (
            "planner"
            if job.kind == KIND_MINE and getattr(job, "distributed", False)
            else job.kind
        )
        sid = spans.begin(
            job_id=job_id,
            attempt=attempt,
            worker_id=getattr(store, "worker_id", "local"),
            name=name,
            kind=job.kind,
            trace_id=trace_id,
            parent_job_id=job.parent_id,
            shard_index=job.shard_index,
        )

    def _close_span(status: str, error: str | None = None) -> None:
        if spans is not None and sid is not None:
            spans.finish(sid, status, error=error)

    def _should_cancel() -> bool:
        if should_abort is not None and should_abort():
            return True
        return store.cancel_requested(job_id)

    control = MiningControl(
        progress=lambda done, total: store.set_progress(
            job_id, done, total, attempt=attempt
        ),
        should_cancel=_should_cancel,
    )
    started = time.monotonic()
    with log_context(trace_id=trace_id, job_id=job_id):
        try:
            result_key = runner(control)
        except MiningCancelled:
            aborting = should_abort is not None and should_abort()
            release = getattr(store, "release", None)
            if aborting and release is not None:
                # release() marks still-open spans "released" itself.
                release(job_id, attempt)
                sid = None
            else:
                _close_span("cancelled")
                _finish(store.mark_cancelled, job_id, attempt=attempt)
        except BaseException as exc:  # noqa: BLE001 - capture, never kill the worker
            _log.warning(
                "job %s attempt %d failed: %s", job_id, attempt, exc
            )
            _close_span("error", error=f"{type(exc).__name__}: {exc}")
            _finish(store.mark_failed, job_id, exc, attempt=attempt)
        else:
            if result_key is HANDLED:
                _close_span("ok")
            else:
                _close_span("ok")
                _finish(
                    store.mark_succeeded,
                    job_id,
                    result_key=result_key,
                    attempt=attempt,
                )
        elapsed = time.monotonic() - started
        threshold = _slow_threshold()
        if threshold is not None and elapsed > threshold:
            _log.warning(
                "slow %s job %s: attempt %d took %.3fs (threshold %.3fs)",
                job.kind,
                job_id,
                attempt,
                elapsed,
                threshold,
            )


def _finish(transition, job_id: str, *args, **kwargs) -> None:
    """Apply a terminal transition, tolerating a lost lease.

    If this worker's lease lapsed mid-run and the job was reclaimed (and
    possibly finished) by another process, the durable store refuses the
    transition with :class:`JobStateError` — the newer attempt's outcome
    stands, and this thread just stops.
    """
    try:
        transition(job_id, *args, **kwargs)
    except JobStateError:
        pass


class JobExecutor:
    """A fixed-width pool of job-driver threads."""

    def __init__(self, width: int = 2) -> None:
        if width < 1:
            raise ValueError(f"executor width must be >= 1, got {width}")
        self.width = width
        self._pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="mining-job"
        )

    def submit(
        self, store, job_id: str, runner: JobRunner, should_abort=None
    ) -> Future:
        """Queue one job for execution; returns the underlying future."""
        return self._pool.submit(run_job, store, job_id, runner, should_abort)

    def shutdown(self, wait: bool = False) -> None:
        """Stop accepting work; pending queued futures are dropped."""
        self._pool.shutdown(wait=wait, cancel_futures=True)
