"""The background executor: worker threads driving mining runs.

A thin wrapper over :class:`concurrent.futures.ThreadPoolExecutor` —
threads, not processes, because the heavy lifting already happens in the
PR 2 process pool (:mod:`repro.core.parallel`): the job thread is the
*driver* of that pool (or of the in-process component loop), spending its
life waiting on shard completions, so a handful of threads oversees many
cores without oversubscription.

:func:`run_job` is the worker-side wrapper around one run: it performs the
``queued → running`` transition, wires a
:class:`~repro.core.parallel.MiningControl` to the store (progress ticks in,
cancellation polls out), and maps the outcome onto the state machine —
return value → ``succeeded``, :class:`MiningCancelled` → ``cancelled``, any
other exception → ``failed`` with structured capture.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from ..core.parallel import MiningCancelled, MiningControl
from .model import QUEUED
from .store import JobStore

__all__ = ["JobExecutor", "run_job"]

#: ``runner(control) -> result_key | None`` — the unit of work a job runs.
JobRunner = Callable[[MiningControl], "str | None"]


def run_job(store: JobStore, job_id: str, runner: JobRunner) -> None:
    """Execute one job end to end, recording its lifecycle in ``store``."""
    job = store.get(job_id)
    if job is None or job.state != QUEUED:
        # Cancelled (or otherwise finished) before this worker picked it up.
        return
    try:
        store.mark_running(job_id)
    except Exception:
        # Lost the race with an immediate cancel between the check above
        # and the transition; the job is terminal, nothing to run.
        return
    control = MiningControl(
        progress=lambda done, total: store.set_progress(job_id, done, total),
        should_cancel=lambda: store.cancel_requested(job_id),
    )
    try:
        result_key = runner(control)
    except MiningCancelled:
        store.mark_cancelled(job_id)
    except BaseException as exc:  # noqa: BLE001 - capture, never kill the worker
        store.mark_failed(job_id, exc)
    else:
        store.mark_succeeded(job_id, result_key=result_key)


class JobExecutor:
    """A fixed-width pool of job-driver threads."""

    def __init__(self, width: int = 2) -> None:
        if width < 1:
            raise ValueError(f"executor width must be >= 1, got {width}")
        self.width = width
        self._pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="mining-job"
        )

    def submit(self, store: JobStore, job_id: str, runner: JobRunner) -> Future:
        """Queue one job for execution; returns the underlying future."""
        return self._pool.submit(run_job, store, job_id, runner)

    def shutdown(self, wait: bool = False) -> None:
        """Stop accepting work; pending queued futures are dropped."""
        self._pool.shutdown(wait=wait, cancel_futures=True)
