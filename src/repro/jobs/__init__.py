"""Asynchronous mining jobs: queue, store, executor, lifecycle model.

The serving tier's answer to long mines (ROADMAP's "async server offload"):
``POST /mine mode=async`` opens a :class:`Job` here, a background executor
thread drives the parallel engine, and the interactive endpoints keep
answering while it runs.  See ``DESIGN.md`` ("Async job queue") for the
state machine, cancellation points, and dedup semantics.
"""

from .executor import JobExecutor, run_job
from .model import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobError,
    JobStateError,
)
from .queue import JobQueue
from .store import JobStore

__all__ = [
    "CANCELLED",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobExecutor",
    "JobQueue",
    "JobStateError",
    "JobStore",
    "run_job",
]
