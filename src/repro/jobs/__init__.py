"""Asynchronous mining jobs: queue, store, executor, lifecycle model.

The serving tier's answer to long mines (ROADMAP's "async server offload"):
``POST /mine mode=async`` opens a :class:`Job` here, a background executor
thread drives the parallel engine, and the interactive endpoints keep
answering while it runs.  With a snapshot-bound store the registry is
*durable* (:class:`DurableJobStore`): jobs survive restarts, several
processes share one registry through lease-based claiming, and a
:class:`JobWorker` thread lets any process execute jobs any other process
enqueued.  See ``DESIGN.md`` ("Async job queue", "Durable jobs") for the
state machine, lease protocol, and recovery rules.
"""

from .durable import DurableJobStore, maybe_fault
from .executor import HANDLED, JobExecutor, run_claimed_job, run_job
from .model import (
    ATTEMPTS_EXHAUSTED,
    CANCELLED,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    KIND_MERGE,
    KIND_MINE,
    KIND_SHARD,
    KIND_STREAM,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobError,
    JobStateError,
)
from .planner import (
    PLAN_WORKERS_DEFAULT,
    MinePlan,
    execute_units,
    merge_outputs,
    plan_mine,
)
from .queue import JobQueue
from .store import JobStore
from .worker import JobWorker

__all__ = [
    "ATTEMPTS_EXHAUSTED",
    "CANCELLED",
    "FAILED",
    "HANDLED",
    "JOB_KINDS",
    "JOB_STATES",
    "KIND_MERGE",
    "KIND_MINE",
    "KIND_SHARD",
    "KIND_STREAM",
    "PLAN_WORKERS_DEFAULT",
    "SUCCEEDED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "DurableJobStore",
    "Job",
    "JobError",
    "JobExecutor",
    "JobQueue",
    "JobStateError",
    "JobStore",
    "JobWorker",
    "MinePlan",
    "execute_units",
    "maybe_fault",
    "merge_outputs",
    "plan_mine",
    "run_claimed_job",
    "run_job",
]
