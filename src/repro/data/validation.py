"""Validation of uploaded datasets.

The upload pipeline rejects malformed files with precise, row-addressed
errors instead of letting bad data reach the miner.  Checks mirror the
paper's format requirements:

* header rows must match the schema exactly;
* every ``(id, attribute)`` in ``data.csv`` must exist in ``location.csv``;
* every attribute must be registered in ``attribute.csv``;
* timestamps must form one evenly spaced timeline shared by all sensors;
* coordinates must be valid WGS-84.
"""

from __future__ import annotations

from collections import defaultdict
from datetime import datetime, timedelta
from typing import Iterable, Sequence

from .schema import DataRow, LocationRow

__all__ = [
    "DatasetValidationError",
    "validate_locations",
    "validate_attributes",
    "validate_data_rows",
    "validate_timeline",
]


class DatasetValidationError(ValueError):
    """Raised when an uploaded dataset violates the schema.

    ``errors`` lists every problem found (the pipeline collects rather than
    stopping at the first), so one failed upload round-trip is enough to fix
    a file.
    """

    def __init__(self, errors: Sequence[str]) -> None:
        if not errors:
            raise ValueError("DatasetValidationError requires at least one error")
        self.errors = list(errors)
        preview = "; ".join(self.errors[:5])
        more = f" (+{len(self.errors) - 5} more)" if len(self.errors) > 5 else ""
        super().__init__(f"{len(self.errors)} validation error(s): {preview}{more}")


def validate_attributes(attributes: Sequence[str]) -> list[str]:
    """Problems with the ``attribute.csv`` contents."""
    errors: list[str] = []
    seen: set[str] = set()
    for i, attr in enumerate(attributes, start=1):
        if not attr or attr != attr.strip():
            errors.append(f"attribute.csv line {i}: invalid attribute name {attr!r}")
        elif attr in seen:
            errors.append(f"attribute.csv line {i}: duplicate attribute {attr!r}")
        seen.add(attr)
    if not attributes:
        errors.append("attribute.csv: no attributes declared")
    return errors


def validate_locations(
    locations: Sequence[LocationRow], attributes: Iterable[str]
) -> list[str]:
    """Problems with ``location.csv`` (ids, coordinates, attribute registry)."""
    errors: list[str] = []
    registry = set(attributes)
    seen: set[str] = set()
    for i, row in enumerate(locations, start=2):  # 1-based + header line
        if not row.sensor_id:
            errors.append(f"location.csv line {i}: empty sensor id")
        if row.sensor_id in seen:
            errors.append(f"location.csv line {i}: duplicate sensor id {row.sensor_id!r}")
        seen.add(row.sensor_id)
        if row.attribute not in registry:
            errors.append(
                f"location.csv line {i}: attribute {row.attribute!r} not in attribute.csv"
            )
        if not -90.0 <= row.lat <= 90.0:
            errors.append(f"location.csv line {i}: latitude {row.lat} out of range")
        if not -180.0 <= row.lon <= 180.0:
            errors.append(f"location.csv line {i}: longitude {row.lon} out of range")
    if not locations:
        errors.append("location.csv: no sensors declared")
    return errors


def validate_data_rows(
    rows: Sequence[DataRow], locations: Sequence[LocationRow]
) -> list[str]:
    """Problems with ``data.csv`` rows against the declared sensors."""
    errors: list[str] = []
    declared = {(r.sensor_id, r.attribute) for r in locations}
    seen_cell: set[tuple[str, datetime]] = set()
    for i, row in enumerate(rows, start=2):
        if (row.sensor_id, row.attribute) not in declared:
            errors.append(
                f"data.csv line {i}: sensor ({row.sensor_id!r}, {row.attribute!r}) "
                f"not declared in location.csv"
            )
        cell = (row.sensor_id, row.time)
        if cell in seen_cell:
            errors.append(
                f"data.csv line {i}: duplicate measurement for sensor "
                f"{row.sensor_id!r} at {row.time}"
            )
        seen_cell.add(cell)
    if not rows:
        errors.append("data.csv: no measurements")
    return errors


def validate_timeline(rows: Sequence[DataRow]) -> list[str]:
    """Check that all timestamps form one evenly spaced shared timeline.

    The paper requires "timestamps must be the same time intervals"; sensors
    may miss values (null) but may not introduce off-grid timestamps.
    """
    errors: list[str] = []
    times = sorted({row.time for row in rows})
    if len(times) < 2:
        if not times:
            return errors  # validate_data_rows already reports emptiness
        errors.append("data.csv: timeline has fewer than two distinct timestamps")
        return errors
    steps = {b - a for a, b in zip(times, times[1:])}
    if len(steps) > 1:
        listed = ", ".join(str(s) for s in sorted(steps)[:4])
        errors.append(
            f"data.csv: timestamps are not evenly spaced (intervals: {listed})"
        )
    if timedelta(0) in steps:
        errors.append("data.csv: zero-length interval between timestamps")
    # Per-sensor timestamps must be a subset of the shared grid — guaranteed
    # once the global grid is even, but sensors missing *rows* entirely (as
    # opposed to null values) are normalised later by resample.align_rows.
    per_sensor: dict[str, int] = defaultdict(int)
    for row in rows:
        per_sensor[row.sensor_id] += 1
    return errors
