"""Dataset registry.

Maps the paper's dataset names to their synthetic generators, provides the
Section-4 inventory table (paper shape vs. generated shape), and recommended
mining parameters per dataset — the values the examples and benchmarks use
so results are comparable across the repository.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.parameters import MiningParameters
from ..core.types import SensorDataset
from .synthetic import (
    PAPER_SHAPES,
    RECOMMENDED_EVOLVING_RATE,
    generate_china6,
    generate_china13,
    generate_covid19,
    generate_santander,
)

__all__ = [
    "DATASET_NAMES",
    "generate",
    "recommended_parameters",
    "dataset_table",
]

_GENERATORS: Mapping[str, Callable[..., SensorDataset]] = {
    "santander": generate_santander,
    "china6": generate_china6,
    "china13": generate_china13,
    "covid19": generate_covid19,
}

DATASET_NAMES = tuple(_GENERATORS)

#: Distance thresholds matched to each generator's spatial layout:
#: Santander neighbourhoods are ~150 m wide, China grid cells ~55–70 km
#: apart, COVID city clusters a few km wide.
_RECOMMENDED: Mapping[str, MiningParameters] = {
    "santander": MiningParameters(
        evolving_rate=RECOMMENDED_EVOLVING_RATE,
        distance_threshold=0.35,
        max_attributes=3,
        min_support=10,
        max_sensors=4,
    ),
    "china6": MiningParameters(
        evolving_rate=RECOMMENDED_EVOLVING_RATE,
        distance_threshold=70.0,
        max_attributes=3,
        min_support=10,
        max_sensors=3,
    ),
    "china13": MiningParameters(
        evolving_rate=RECOMMENDED_EVOLVING_RATE,
        distance_threshold=70.0,
        max_attributes=3,
        min_support=10,
        max_sensors=3,
    ),
    "covid19": MiningParameters(
        evolving_rate=RECOMMENDED_EVOLVING_RATE,
        distance_threshold=25.0,
        max_attributes=4,
        min_support=8,
        max_sensors=4,
    ),
}


def generate(name: str, seed: int = 0, **overrides: object) -> SensorDataset:
    """Generate a registered dataset by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_GENERATORS)}"
        ) from None
    return generator(seed=seed, **overrides)  # type: ignore[arg-type]


def recommended_parameters(name: str) -> MiningParameters:
    """Mining parameters tuned to the named dataset's synthetic layout."""
    try:
        return _RECOMMENDED[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_RECOMMENDED)}"
        ) from None


def dataset_table(seed: int = 0) -> list[dict[str, object]]:
    """The Section-4 dataset inventory: paper shape next to generated shape.

    One row per dataset with the paper's published sensor/record counts and
    the (scaled) counts of the synthetic stand-in actually generated here.
    """
    rows: list[dict[str, object]] = []
    for name in DATASET_NAMES:
        paper = PAPER_SHAPES[name]
        dataset = generate(name, seed=seed)
        rows.append(
            {
                "dataset": name,
                "paper_sensors": paper["sensors"],
                "paper_records": paper["records"],
                "paper_attributes": len(paper["attributes"]),  # type: ignore[arg-type]
                "generated_sensors": len(dataset),
                "generated_records": dataset.num_records,
                "generated_attributes": len(dataset.attributes),
                "region": paper["region"],
                "period": f"{paper['start']}..{paper['end']}",
            }
        )
    return rows
