"""Reading and writing the three-file dataset format, with chunked upload.

The paper's front end splits ``data.csv`` into 10,000-line chunks before
sending it to the server (Section 3.2).  :func:`iter_chunks` reproduces the
client side of that protocol and :class:`ChunkAssembler` the server side;
:func:`read_dataset_dir` / :func:`write_dataset_dir` are the plain local
paths used by examples and tests.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.types import Sensor, SensorDataset
from .resample import assemble_dataset
from .schema import (
    DATA_COLUMNS,
    DEFAULT_CHUNK_LINES,
    LOCATION_COLUMNS,
    DataRow,
    LocationRow,
    format_time,
    format_value,
    parse_time,
    parse_value,
)
from .validation import (
    DatasetValidationError,
    validate_attributes,
    validate_data_rows,
    validate_locations,
    validate_timeline,
)

__all__ = [
    "read_data_csv",
    "read_location_csv",
    "read_attribute_csv",
    "write_dataset_dir",
    "read_dataset_dir",
    "iter_chunks",
    "ChunkAssembler",
    "dataset_to_rows",
]


def read_data_csv(source: io.TextIOBase | str | Path) -> list[DataRow]:
    """Parse ``data.csv`` rows (header required)."""
    with _opened(source) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(h.strip() for h in header) != DATA_COLUMNS:
            raise DatasetValidationError(
                [f"data.csv: expected header {','.join(DATA_COLUMNS)}, got {header}"]
            )
        rows: list[DataRow] = []
        errors: list[str] = []
        for lineno, record in enumerate(reader, start=2):
            if not record:
                continue
            if len(record) != 4:
                errors.append(f"data.csv line {lineno}: expected 4 fields, got {len(record)}")
                continue
            sensor_id, attribute, time_text, value_text = record
            try:
                rows.append(
                    DataRow(sensor_id, attribute, parse_time(time_text), parse_value(value_text))
                )
            except ValueError as exc:
                errors.append(f"data.csv line {lineno}: {exc}")
        if errors:
            raise DatasetValidationError(errors)
        return rows


def read_location_csv(source: io.TextIOBase | str | Path) -> list[LocationRow]:
    """Parse ``location.csv`` rows (header required)."""
    with _opened(source) as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(h.strip() for h in header) != LOCATION_COLUMNS:
            raise DatasetValidationError(
                [f"location.csv: expected header {','.join(LOCATION_COLUMNS)}, got {header}"]
            )
        rows: list[LocationRow] = []
        errors: list[str] = []
        for lineno, record in enumerate(reader, start=2):
            if not record:
                continue
            if len(record) != 4:
                errors.append(
                    f"location.csv line {lineno}: expected 4 fields, got {len(record)}"
                )
                continue
            sensor_id, attribute, lat_text, lon_text = record
            try:
                rows.append(LocationRow(sensor_id, attribute, float(lat_text), float(lon_text)))
            except ValueError as exc:
                errors.append(f"location.csv line {lineno}: {exc}")
        if errors:
            raise DatasetValidationError(errors)
        return rows


def read_attribute_csv(source: io.TextIOBase | str | Path) -> list[str]:
    """Parse ``attribute.csv`` (one attribute per line, no header)."""
    with _opened(source) as handle:
        return [line.strip() for line in handle if line.strip()]


class _opened:
    """Context manager accepting an open text handle, a path, or a string path."""

    def __init__(self, source: io.TextIOBase | str | Path) -> None:
        self.source = source
        self._own = not hasattr(source, "read")
        self._handle: io.TextIOBase | None = None

    def __enter__(self) -> io.TextIOBase:
        if self._own:
            self._handle = open(self.source, "r", newline="")  # type: ignore[arg-type]
            return self._handle
        return self.source  # type: ignore[return-value]

    def __exit__(self, *exc: object) -> None:
        if self._handle is not None:
            self._handle.close()


def dataset_to_rows(dataset: SensorDataset) -> tuple[list[DataRow], list[LocationRow]]:
    """Flatten a dataset back into data/location rows (round-trip support)."""
    data_rows: list[DataRow] = []
    location_rows: list[LocationRow] = []
    for sensor in dataset:
        location_rows.append(
            LocationRow(sensor.sensor_id, sensor.attribute, sensor.lat, sensor.lon)
        )
        values = dataset.values(sensor.sensor_id)
        for t, value in zip(dataset.timeline, values):
            data_rows.append(DataRow(sensor.sensor_id, sensor.attribute, t, float(value)))
    return data_rows, location_rows


def write_dataset_dir(dataset: SensorDataset, directory: str | Path) -> Path:
    """Write ``data.csv``, ``location.csv`` and ``attribute.csv`` to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_rows, location_rows = dataset_to_rows(dataset)
    with open(directory / "data.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(DATA_COLUMNS)
        for row in data_rows:
            writer.writerow(
                [row.sensor_id, row.attribute, format_time(row.time), format_value(row.value)]
            )
    with open(directory / "location.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(LOCATION_COLUMNS)
        for row in location_rows:
            writer.writerow([row.sensor_id, row.attribute, repr(row.lat), repr(row.lon)])
    with open(directory / "attribute.csv", "w", newline="") as handle:
        for attribute in dataset.attributes:
            handle.write(attribute + "\n")
    return directory


def read_dataset_dir(directory: str | Path, name: str | None = None) -> SensorDataset:
    """Load a dataset directory written by :func:`write_dataset_dir`.

    Runs the full validation suite before assembly, exactly like an upload.
    """
    directory = Path(directory)
    attributes = read_attribute_csv(directory / "attribute.csv")
    locations = read_location_csv(directory / "location.csv")
    data_rows = read_data_csv(directory / "data.csv")
    errors = (
        validate_attributes(attributes)
        + validate_locations(locations, attributes)
        + validate_data_rows(data_rows, locations)
        + validate_timeline(data_rows)
    )
    if errors:
        raise DatasetValidationError(errors)
    return assemble_dataset(name or directory.name, data_rows, locations, attributes)


# -- chunked upload protocol (Section 3.2) ----------------------------------


def iter_chunks(
    rows: Sequence[DataRow], chunk_lines: int = DEFAULT_CHUNK_LINES
) -> Iterator[str]:
    """Serialise ``data.csv`` rows into ≤ ``chunk_lines``-line CSV chunks.

    Every chunk repeats the header so each is independently parseable — the
    shape a browser client would POST to the upload endpoint.
    """
    if chunk_lines < 1:
        raise ValueError(f"chunk_lines must be >= 1, got {chunk_lines}")
    for start in range(0, len(rows), chunk_lines):
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(DATA_COLUMNS)
        for row in rows[start : start + chunk_lines]:
            writer.writerow(
                [row.sensor_id, row.attribute, format_time(row.time), format_value(row.value)]
            )
        yield buffer.getvalue()
    if not rows:
        buffer = io.StringIO()
        csv.writer(buffer).writerow(DATA_COLUMNS)
        yield buffer.getvalue()


class ChunkAssembler:
    """Server-side accumulator for the chunked upload protocol.

    Feed chunks with :meth:`add_chunk`; call :meth:`finish` with the
    location and attribute files to validate and assemble the dataset.
    """

    def __init__(self, dataset_name: str) -> None:
        if not dataset_name:
            raise ValueError("dataset_name must be non-empty")
        self.dataset_name = dataset_name
        self._rows: list[DataRow] = []
        self._chunks = 0
        self._finished = False

    @property
    def chunks_received(self) -> int:
        return self._chunks

    @property
    def rows_received(self) -> int:
        return len(self._rows)

    def add_chunk(self, chunk_text: str) -> int:
        """Parse one chunk; returns the number of data rows it contained."""
        if self._finished:
            raise RuntimeError("upload already finished")
        rows = read_data_csv(io.StringIO(chunk_text))
        self._rows.extend(rows)
        self._chunks += 1
        return len(rows)

    def finish(
        self, locations: Sequence[LocationRow], attributes: Sequence[str]
    ) -> SensorDataset:
        """Validate everything received and build the dataset."""
        if self._finished:
            raise RuntimeError("upload already finished")
        errors = (
            validate_attributes(attributes)
            + validate_locations(locations, attributes)
            + validate_data_rows(self._rows, locations)
            + validate_timeline(self._rows)
        )
        if errors:
            raise DatasetValidationError(errors)
        self._finished = True
        return assemble_dataset(self.dataset_name, self._rows, locations, attributes)
