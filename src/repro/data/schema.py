"""The three-file upload schema (Section 3.2 of the paper).

A dataset is uploaded as:

* ``data.csv`` — ``id,attribute,time,data`` with one row per measurement;
  ``data`` is ``null`` when the sensor has no value at that timestamp;
* ``location.csv`` — ``id,attribute,lat,lon`` with one row per sensor;
* ``attribute.csv`` — one attribute name per line.

This module holds the column names, the timestamp format, and the row-level
parsing/formatting helpers shared by the reader and writer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime

__all__ = [
    "DATA_COLUMNS",
    "LOCATION_COLUMNS",
    "NULL_TOKEN",
    "TIME_FORMAT",
    "DEFAULT_CHUNK_LINES",
    "DataRow",
    "LocationRow",
    "parse_time",
    "format_time",
    "parse_value",
    "format_value",
]

DATA_COLUMNS = ("id", "attribute", "time", "data")
LOCATION_COLUMNS = ("id", "attribute", "lat", "lon")

#: The literal the paper uses for missing measurements.
NULL_TOKEN = "null"

#: Timestamp format used in the paper's data.csv example.
TIME_FORMAT = "%Y-%m-%d %H:%M:%S"

#: "For scalably uploading large datasets, we divide the file into 10,000
#: lines and send each divided set to our system." (Section 3.2)
DEFAULT_CHUNK_LINES = 10_000


@dataclass(frozen=True, slots=True)
class DataRow:
    """One parsed row of ``data.csv``."""

    sensor_id: str
    attribute: str
    time: datetime
    value: float  # NaN when the CSV said "null"

    @property
    def is_null(self) -> bool:
        return math.isnan(self.value)


@dataclass(frozen=True, slots=True)
class LocationRow:
    """One parsed row of ``location.csv``."""

    sensor_id: str
    attribute: str
    lat: float
    lon: float


def parse_time(text: str) -> datetime:
    """Parse a ``data.csv`` timestamp."""
    return datetime.strptime(text, TIME_FORMAT)


def format_time(when: datetime) -> str:
    return when.strftime(TIME_FORMAT)


def parse_value(text: str) -> float:
    """Parse a measurement cell; the ``null`` token becomes NaN."""
    stripped = text.strip()
    if stripped == NULL_TOKEN or stripped == "":
        return math.nan
    return float(stripped)


def format_value(value: float) -> str:
    if math.isnan(value):
        return NULL_TOKEN
    return repr(value) if value != int(value) else str(int(value))
