"""Dataset ⇄ document conversion.

"Each dataset is stored in databases, and thus we can use the dataset
without re-uploading by specifying the dataset name" (Section 3.2).  These
helpers give a dataset a JSON-serialisable document form the store can hold
and the server can reload after a restart.  NaN is encoded as ``None``
(JSON has no NaN), timestamps as ISO strings.
"""

from __future__ import annotations

import math
from datetime import datetime
from typing import Any, Mapping

import numpy as np

from ..core.types import Sensor, SensorDataset

__all__ = ["dataset_to_document", "dataset_from_document"]


def dataset_to_document(dataset: SensorDataset) -> dict[str, Any]:
    """A JSON-serialisable snapshot of a full dataset."""
    series: dict[str, list[float | None]] = {}
    for sensor in dataset:
        values = dataset.values(sensor.sensor_id)
        series[sensor.sensor_id] = [
            None if math.isnan(v) else float(v) for v in values
        ]
    return {
        "name": dataset.name,
        "timeline": [t.isoformat() for t in dataset.timeline],
        "attributes": list(dataset.attributes),
        "sensors": [
            {
                "id": s.sensor_id,
                "attribute": s.attribute,
                "lat": s.lat,
                "lon": s.lon,
            }
            for s in dataset
        ],
        "series": series,
    }


def dataset_from_document(doc: Mapping[str, Any]) -> SensorDataset:
    """Rebuild a dataset from its document form."""
    timeline = [datetime.fromisoformat(t) for t in doc["timeline"]]
    sensors = [
        Sensor(entry["id"], entry["attribute"], float(entry["lat"]), float(entry["lon"]))
        for entry in doc["sensors"]
    ]
    measurements = {
        sensor_id: np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        for sensor_id, values in doc["series"].items()
    }
    return SensorDataset(
        str(doc["name"]), timeline, sensors, measurements, attributes=doc["attributes"]
    )
