"""Timeline assembly and gap handling.

Uploaded rows arrive as a flat ``(sensor, time, value)`` list; the miner
wants dense per-sensor arrays on one shared, evenly spaced timeline.  This
module builds that timeline (inserting grid timestamps a sensor skipped
entirely as NaN), plus the small resampling utilities the examples use:

* :func:`assemble_dataset` — rows → :class:`SensorDataset`;
* :func:`fill_gaps` — forward-fill / interpolate short NaN runs;
* :func:`downsample` — thin a dataset to every k-th timestamp (the paper's
  "any space and time scales" — daily city-scale vs. minutely country-scale).
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Sequence

import numpy as np

from ..core.types import Sensor, SensorDataset
from .schema import DataRow, LocationRow

__all__ = ["assemble_dataset", "fill_gaps", "downsample"]


def _shared_timeline(rows: Sequence[DataRow]) -> list[datetime]:
    """The evenly spaced grid spanning every timestamp seen in the rows."""
    times = sorted({row.time for row in rows})
    if len(times) < 2:
        raise ValueError("cannot build a timeline from fewer than two timestamps")
    steps = sorted({(b - a) for a, b in zip(times, times[1:])})
    interval = steps[0]
    if interval <= timedelta(0):
        raise ValueError("timestamps must be strictly increasing")
    span = times[-1] - times[0]
    count = int(round(span / interval)) + 1
    grid = [times[0] + interval * i for i in range(count)]
    off_grid = set(times) - set(grid)
    if off_grid:
        sample = sorted(off_grid)[:3]
        raise ValueError(
            f"timestamps do not fit an even {interval} grid; first offenders: {sample}"
        )
    return grid


def assemble_dataset(
    name: str,
    rows: Sequence[DataRow],
    locations: Sequence[LocationRow],
    attributes: Sequence[str] | None = None,
) -> SensorDataset:
    """Build a dense dataset from validated upload rows.

    Sensors that skipped grid timestamps (no row at all) get NaN there,
    matching the paper's rule that "sensor values are null if the sensors do
    not have the sensor values at timestamps".
    """
    timeline = _shared_timeline(rows)
    position = {t: i for i, t in enumerate(timeline)}
    sensors = [
        Sensor(loc.sensor_id, loc.attribute, loc.lat, loc.lon) for loc in locations
    ]
    measurements = {
        s.sensor_id: np.full(len(timeline), np.nan, dtype=np.float64) for s in sensors
    }
    for row in rows:
        if row.sensor_id not in measurements:
            raise ValueError(f"data row references undeclared sensor {row.sensor_id!r}")
        measurements[row.sensor_id][position[row.time]] = row.value
    return SensorDataset(name, timeline, sensors, measurements, attributes=attributes)


def fill_gaps(
    dataset: SensorDataset, method: str = "interpolate", max_gap: int = 3
) -> SensorDataset:
    """Fill short NaN runs in every sensor's series.

    Parameters
    ----------
    method:
        ``"interpolate"`` (linear between the run's finite neighbours) or
        ``"ffill"`` (repeat the last finite value).
    max_gap:
        Runs longer than this stay NaN — long outages should not be invented.
    """
    if method not in ("interpolate", "ffill"):
        raise ValueError(f'method must be "interpolate" or "ffill", got {method!r}')
    if max_gap < 1:
        raise ValueError(f"max_gap must be >= 1, got {max_gap}")
    filled: dict[str, np.ndarray] = {}
    for sensor in dataset:
        values = dataset.values(sensor.sensor_id).copy()
        isnan = np.isnan(values)
        i = 0
        n = values.shape[0]
        while i < n:
            if not isnan[i]:
                i += 1
                continue
            j = i
            while j < n and isnan[j]:
                j += 1
            run = j - i
            has_left = i > 0
            has_right = j < n
            if run <= max_gap:
                if method == "ffill" and has_left:
                    values[i:j] = values[i - 1]
                elif method == "interpolate" and has_left and has_right:
                    left, right = values[i - 1], values[j]
                    steps = np.arange(1, run + 1, dtype=np.float64) / (run + 1)
                    values[i:j] = left + (right - left) * steps
                elif method == "interpolate" and has_left:
                    values[i:j] = values[i - 1]
            i = j
        filled[sensor.sensor_id] = values
    return SensorDataset(
        dataset.name, dataset.timeline, list(dataset), filled, attributes=dataset.attributes
    )


def downsample(dataset: SensorDataset, every: int, name: str | None = None) -> SensorDataset:
    """Keep every ``every``-th timestamp (aggregation-free thinning)."""
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    if every == 1:
        return dataset
    keep = list(range(0, dataset.num_timestamps, every))
    if len(keep) < 2:
        raise ValueError("downsampling would leave fewer than two timestamps")
    timeline = [dataset.timeline[i] for i in keep]
    measurements = {
        s.sensor_id: dataset.values(s.sensor_id)[keep] for s in dataset
    }
    return SensorDataset(
        name or f"{dataset.name}[every{every}]",
        timeline,
        list(dataset),
        measurements,
        attributes=dataset.attributes,
    )
