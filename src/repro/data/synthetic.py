"""Synthetic versions of the paper's four demonstration datasets.

The real feeds (SmartSantander, Chinese national air-quality network, the
Shanghai/Guangzhou COVID-19 extract) are not redistributable and not
reachable offline, so each generator reproduces the *published shape* of its
dataset — sensor counts, attribute sets, period, spatial layout — and embeds
the correlation structure the paper's scenarios rely on:

* **Santander** (§4, Fig. 1): traffic volume co-evolves with temperature in
  designated neighbourhoods; light co-evolves with temperature everywhere
  (daylight); sound tracks traffic.
* **China6 / China13** (§4 "multiple cities"): pollution events propagate
  along the west→east wind axis, so stations in the same east–west corridor
  co-evolve while north–south neighbours do not.
* **COVID-19** (§4, Fig. 4): traffic-driven pollutants (NO₂, CO) collapse
  after the lockdown date, changing which patterns exist before vs. after.

Co-evolution is injected through *shared jump drivers*: a driver emits
±jumps at random timestamps; every sensor subscribed to a driver applies the
jump (times its gain) on top of its attribute-specific baseline and small
measurement noise.  Mining with ε between the noise floor and the jump size
recovers exactly the subscribed groups — which is what makes the benchmark
assertions meaningful rather than statistical luck.

Generators are deterministic given ``seed`` and scale knobs.  The paper's
full-size shapes are recorded in :data:`PAPER_SHAPES` for the dataset-table
benchmark; defaults are scaled down so the whole suite runs in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Mapping, Sequence

import numpy as np

from ..core.types import Sensor, SensorDataset

__all__ = [
    "PAPER_SHAPES",
    "generate_santander",
    "generate_china6",
    "generate_china13",
    "generate_covid19",
    "JUMP_SIZE",
    "NOISE_STD",
    "RECOMMENDED_EVOLVING_RATE",
]

#: Published dataset inventory (paper, Section 4).
PAPER_SHAPES: Mapping[str, Mapping[str, object]] = {
    "santander": {
        "sensors": 552,
        "records": 2_329_936,
        "attributes": ["temperature", "light", "sound", "traffic_volume", "humidity"],
        "start": "2016-03-01",
        "end": "2016-09-30",
        "region": "Santander, Spain",
    },
    "china6": {
        "sensors": 9_438,
        "records": 6_889_740,
        "attributes": ["pm25", "so2", "no2", "co", "o3", "pm10"],
        "start": "2016-09-01",
        "end": "2018-10-31",
        "region": "China",
    },
    "china13": {
        "sensors": 4_810,
        "records": 3_511_300,
        "attributes": [
            "pm25", "so2", "no2", "co", "o3", "pm10",
            "temperature", "humidity", "air_pressure", "daylight",
            "rainfall_percentage", "rain_volume", "wind_speed",
        ],
        "start": "2016-09-01",
        "end": "2018-10-31",
        "region": "China",
    },
    "covid19": {
        "sensors": 12,
        "records": 52_261,
        "attributes": ["pm25", "pm10", "so2", "no2", "co", "o3"],
        "start": "2020-01-01",
        "end": "2020-06-30",
        "region": "Shanghai and Guangzhou, China",
    },
}

#: Magnitude of an injected co-evolution jump (shared across generators so a
#: single evolving rate works for every synthetic dataset).
JUMP_SIZE = 5.0

#: Standard deviation of per-sensor measurement noise.  Successive-difference
#: noise is ~NOISE_STD·√2, far below JUMP_SIZE.
NOISE_STD = 0.15

#: An ε that separates jumps from noise and from the smooth baselines.
RECOMMENDED_EVOLVING_RATE = 3.0


@dataclass(frozen=True)
class _Driver:
    """A shared jump process: ±JUMP_SIZE steps at random timestamps."""

    steps: np.ndarray  # per-timestamp increments, steps[0] == 0

    @classmethod
    def generate(
        cls, rng: np.random.Generator, n: int, jump_prob: float, jump_size: float = JUMP_SIZE
    ) -> "_Driver":
        jumps = rng.random(n) < jump_prob
        signs = rng.choice(np.array([-1.0, 1.0]), size=n)
        magnitudes = jump_size * (0.9 + 0.2 * rng.random(n))
        steps = np.where(jumps, signs * magnitudes, 0.0)
        steps[0] = 0.0
        return cls(steps=steps)

    def level(self) -> np.ndarray:
        """The integrated (random-walk) level of the driver."""
        return np.cumsum(self.steps)


def _diurnal(n: int, interval_hours: float, amplitude: float, phase_hours: float = 0.0) -> np.ndarray:
    """A 24-hour sinusoid sampled every ``interval_hours``."""
    hours = np.arange(n) * interval_hours
    return amplitude * np.sin(2.0 * math.pi * (hours - phase_hours) / 24.0)


def _series(
    rng: np.random.Generator,
    baseline: np.ndarray,
    drivers: Sequence[tuple[_Driver, float]],
) -> np.ndarray:
    """baseline + Σ gain·driver + noise."""
    out = baseline.astype(np.float64).copy()
    for driver, gain in drivers:
        out += gain * driver.level()
    out += rng.normal(0.0, NOISE_STD, size=out.shape[0])
    return out


def _timeline(start: datetime, steps: int, interval: timedelta) -> list[datetime]:
    return [start + interval * i for i in range(steps)]


def _drop_missing(
    rng: np.random.Generator, values: np.ndarray, missing_rate: float
) -> np.ndarray:
    """NaN-out a random fraction of readings (real feeds have gaps)."""
    if missing_rate <= 0:
        return values
    mask = rng.random(values.shape[0]) < missing_rate
    out = values.copy()
    out[mask] = np.nan
    return out


# ---------------------------------------------------------------------------
# Santander
# ---------------------------------------------------------------------------

def generate_santander(
    seed: int = 0,
    neighbourhoods: int = 12,
    sensors_per_neighbourhood: int = 5,
    steps: int = 336,
    interval: timedelta = timedelta(hours=1),
    correlated_fraction: float = 0.5,
    missing_rate: float = 0.01,
    start: datetime = datetime(2016, 3, 1),
) -> SensorDataset:
    """A scaled synthetic SmartSantander dataset.

    The city is laid out as ``neighbourhoods`` clusters (~150 m across,
    ~600 m apart) around Santander's published coordinates.  Each cluster
    hosts one sensor per attribute (temperature, light, sound,
    traffic_volume, humidity — truncated to ``sensors_per_neighbourhood``).

    In a ``correlated_fraction`` of neighbourhoods, traffic volume and
    temperature share a jump driver — the Figure-1 pattern; in the others
    they are independent.  Light shares the temperature driver everywhere
    (daylight), and sound tracks traffic.

    Defaults give 60 sensors over two weeks of hourly data; pass
    ``neighbourhoods=111, steps=5136`` (approximately) for a full-scale run.
    """
    if sensors_per_neighbourhood < 2 or sensors_per_neighbourhood > 5:
        raise ValueError("sensors_per_neighbourhood must be between 2 and 5")
    rng = np.random.default_rng(seed)
    attributes = ["temperature", "traffic_volume", "light", "sound", "humidity"]
    attributes = attributes[:sensors_per_neighbourhood]
    interval_hours = interval.total_seconds() / 3600.0
    timeline = _timeline(start, steps, interval)

    base_lat, base_lon = 43.4619, -3.8018
    sensors: list[Sensor] = []
    measurements: dict[str, np.ndarray] = {}
    correlated_cut = int(round(neighbourhoods * correlated_fraction))

    for hood in range(neighbourhoods):
        # Neighbourhood centres on a coarse grid, ~0.006° (~600 m) apart.
        row, col = divmod(hood, 4)
        centre_lat = base_lat + 0.006 * row
        centre_lon = base_lon + 0.008 * col
        correlated = hood < correlated_cut
        temp_driver = _Driver.generate(rng, steps, jump_prob=0.08)
        traffic_driver = (
            temp_driver if correlated else _Driver.generate(rng, steps, jump_prob=0.08)
        )
        drivers_by_attr: dict[str, list[tuple[_Driver, float]]] = {
            "temperature": [(temp_driver, 1.0)],
            "light": [(temp_driver, 1.2)],
            "traffic_volume": [(traffic_driver, 1.5)],
            "sound": [(traffic_driver, 0.8)],
            "humidity": [(temp_driver, -0.7)],
        }
        baselines = {
            "temperature": 14.0 + _diurnal(steps, interval_hours, 1.0, phase_hours=9.0),
            "light": 400.0 + _diurnal(steps, interval_hours, 1.2, phase_hours=6.0),
            "traffic_volume": 120.0 + _diurnal(steps, interval_hours, 1.0, phase_hours=8.0),
            "sound": 55.0 + _diurnal(steps, interval_hours, 0.8, phase_hours=8.0),
            "humidity": 70.0 + _diurnal(steps, interval_hours, 0.9, phase_hours=21.0),
        }
        for k, attribute in enumerate(attributes):
            sensor_id = f"san-{hood:03d}-{attribute}"
            # ~100 m jitter inside the neighbourhood.
            lat = centre_lat + float(rng.normal(0.0, 0.0005))
            lon = centre_lon + float(rng.normal(0.0, 0.0007))
            sensors.append(Sensor(sensor_id, attribute, lat, lon))
            values = _series(rng, baselines[attribute], drivers_by_attr[attribute])
            measurements[sensor_id] = _drop_missing(rng, values, missing_rate)

    return SensorDataset(
        "santander", timeline, sensors, measurements, attributes=attributes
    )


# ---------------------------------------------------------------------------
# China (shared machinery for China6 / China13)
# ---------------------------------------------------------------------------

_CHINA6_ATTRIBUTES = ["pm25", "so2", "no2", "co", "o3", "pm10"]
_CHINA13_EXTRA = [
    "temperature", "humidity", "air_pressure", "daylight",
    "rainfall_percentage", "rain_volume", "wind_speed",
]

_CHINA_BASELINES = {
    "pm25": 60.0, "so2": 15.0, "no2": 35.0, "co": 9.0, "o3": 45.0, "pm10": 90.0,
    "temperature": 16.0, "humidity": 55.0, "air_pressure": 1013.0, "daylight": 300.0,
    "rainfall_percentage": 30.0, "rain_volume": 2.0, "wind_speed": 4.0,
}

#: Pollutants ride the corridor (wind-advection) driver; weather attributes
#: in China13 ride a per-station local driver instead.
_CHINA_POLLUTANTS = set(_CHINA6_ATTRIBUTES)


def _generate_china(
    name: str,
    attributes: list[str],
    seed: int,
    grid_rows: int,
    grid_cols: int,
    steps: int,
    interval: timedelta,
    missing_rate: float,
    start: datetime,
) -> SensorDataset:
    """Stations on a ``grid_rows × grid_cols`` national grid.

    Stations in the same row (same latitude band ≈ same west→east wind
    corridor) share a pollutant jump driver; rows are independent.  That
    realises the paper's China scenario: horizontally close stations
    correlate, vertically close ones do not.
    """
    rng = np.random.default_rng(seed)
    interval_hours = interval.total_seconds() / 3600.0
    timeline = _timeline(start, steps, interval)
    # Rows ~0.5° (≈55 km) apart, columns ~0.6° apart: adjacent stations in
    # both axes fall inside a ~70 km distance threshold.
    base_lat, base_lon = 30.0, 110.0
    row_drivers = [
        _Driver.generate(rng, steps, jump_prob=0.10) for _ in range(grid_rows)
    ]
    sensors: list[Sensor] = []
    measurements: dict[str, np.ndarray] = {}
    gains = {
        "pm25": 1.6, "pm10": 1.9, "so2": 0.6, "no2": 0.9, "co": 0.3, "o3": -0.7,
    }
    for row in range(grid_rows):
        for col in range(grid_cols):
            station = f"{name}-r{row}c{col}"
            lat = base_lat + 0.5 * row
            lon = base_lon + 0.6 * col
            local_driver = _Driver.generate(rng, steps, jump_prob=0.10)
            for attribute in attributes:
                sensor_id = f"{station}-{attribute}"
                jitter_lat = lat + float(rng.normal(0.0, 0.002))
                jitter_lon = lon + float(rng.normal(0.0, 0.002))
                sensors.append(Sensor(sensor_id, attribute, jitter_lat, jitter_lon))
                baseline = _CHINA_BASELINES[attribute] + _diurnal(
                    steps, interval_hours, 0.8, phase_hours=rng.uniform(0, 24)
                )
                if attribute in _CHINA_POLLUTANTS:
                    drivers = [(row_drivers[row], gains[attribute])]
                else:
                    drivers = [(local_driver, 1.0)]
                values = _series(rng, baseline, drivers)
                measurements[sensor_id] = _drop_missing(rng, values, missing_rate)
    return SensorDataset(name, timeline, sensors, measurements, attributes=attributes)


def generate_china6(
    seed: int = 0,
    grid_rows: int = 3,
    grid_cols: int = 5,
    steps: int = 240,
    interval: timedelta = timedelta(hours=1),
    missing_rate: float = 0.02,
    start: datetime = datetime(2016, 9, 1),
) -> SensorDataset:
    """Scaled synthetic China6: pollutant stations on a national grid.

    Default: 3×5 stations × 6 pollutants = 90 sensors over 10 days hourly.
    The full-scale shape (9,438 sensors) is in :data:`PAPER_SHAPES`.
    """
    return _generate_china(
        "china6", list(_CHINA6_ATTRIBUTES), seed, grid_rows, grid_cols,
        steps, interval, missing_rate, start,
    )


def generate_china13(
    seed: int = 0,
    grid_rows: int = 2,
    grid_cols: int = 3,
    steps: int = 240,
    interval: timedelta = timedelta(hours=1),
    missing_rate: float = 0.02,
    start: datetime = datetime(2016, 9, 1),
) -> SensorDataset:
    """Scaled synthetic China13: pollutants + weather attributes.

    Weather attributes ride per-station local drivers, so cross-attribute
    CAPs inside a station mix pollution and weather only through the local
    driver — mirroring the richer but sparser correlations of the real
    China13 subset.
    """
    return _generate_china(
        "china13", list(_CHINA6_ATTRIBUTES) + list(_CHINA13_EXTRA), seed,
        grid_rows, grid_cols, steps, interval, missing_rate, start,
    )


# ---------------------------------------------------------------------------
# COVID-19
# ---------------------------------------------------------------------------

def generate_covid19(
    seed: int = 0,
    steps: int = 720,
    interval: timedelta = timedelta(hours=4),
    lockdown: datetime = datetime(2020, 1, 23),
    missing_rate: float = 0.01,
    start: datetime = datetime(2020, 1, 1),
) -> SensorDataset:
    """Scaled synthetic COVID-19 dataset: Shanghai + Guangzhou, 12 sensors.

    Exactly the paper's sensor count: two cities × six pollutants.  Before
    ``lockdown`` the traffic-driven pollutants (NO₂, CO, and partially PM)
    share each city's *activity* driver, so CAPs over {no2, co, pm25, pm10}
    dominate.  After lockdown the activity driver's jumps stop (traffic
    collapse) while the regional *background* driver (industry/weather,
    shared by SO₂ and O₃) keeps evolving — so the before/after CAP sets
    differ structurally, which is what Figure 4 visualises.
    """
    rng = np.random.default_rng(seed)
    attributes = ["pm25", "pm10", "so2", "no2", "co", "o3"]
    interval_hours = interval.total_seconds() / 3600.0
    timeline = _timeline(start, steps, interval)
    lockdown_index = sum(1 for t in timeline if t < lockdown)

    cities = {
        "shanghai": (31.2304, 121.4737),
        "guangzhou": (23.1291, 113.2644),
    }
    sensors: list[Sensor] = []
    measurements: dict[str, np.ndarray] = {}
    for city, (lat, lon) in cities.items():
        activity = _Driver.generate(rng, steps, jump_prob=0.12)
        # Lockdown: traffic activity stops jumping (flat level afterwards).
        act_steps = activity.steps.copy()
        act_steps[lockdown_index:] = 0.0
        activity = _Driver(steps=act_steps)
        background = _Driver.generate(rng, steps, jump_prob=0.12)
        drivers_by_attr = {
            "no2": [(activity, 1.2)],
            "co": [(activity, 0.5)],
            "pm25": [(activity, 0.9)],
            "pm10": [(activity, 1.1)],
            "so2": [(background, 0.8)],
            "o3": [(background, -0.9)],
        }
        level_shift = {
            # Post-lockdown mean drop for traffic pollutants (visual effect).
            "no2": -12.0, "co": -3.0, "pm25": -8.0, "pm10": -10.0, "so2": 0.0, "o3": 4.0,
        }
        for attribute in attributes:
            sensor_id = f"covid-{city}-{attribute}"
            jlat = lat + float(rng.normal(0.0, 0.01))
            jlon = lon + float(rng.normal(0.0, 0.01))
            sensors.append(Sensor(sensor_id, attribute, jlat, jlon))
            baseline = _CHINA_BASELINES.get(attribute, 30.0) + _diurnal(
                steps, interval_hours, 0.8, phase_hours=rng.uniform(0, 24)
            )
            shift = np.zeros(steps)
            shift[lockdown_index:] = level_shift[attribute]
            values = _series(rng, baseline + shift, drivers_by_attr[attribute])
            measurements[sensor_id] = _drop_missing(rng, values, missing_rate)
    return SensorDataset("covid19", timeline, sensors, measurements, attributes=attributes)
