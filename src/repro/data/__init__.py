"""Data layer: the three-CSV upload format, validation, and synthetic datasets."""

from .csv_io import (
    ChunkAssembler,
    dataset_to_rows,
    iter_chunks,
    read_attribute_csv,
    read_data_csv,
    read_dataset_dir,
    read_location_csv,
    write_dataset_dir,
)
from .datasets import DATASET_NAMES, dataset_table, generate, recommended_parameters
from .resample import assemble_dataset, downsample, fill_gaps
from .schema import (
    DATA_COLUMNS,
    DEFAULT_CHUNK_LINES,
    LOCATION_COLUMNS,
    NULL_TOKEN,
    TIME_FORMAT,
    DataRow,
    LocationRow,
)
from .synthetic import (
    JUMP_SIZE,
    NOISE_STD,
    PAPER_SHAPES,
    RECOMMENDED_EVOLVING_RATE,
    generate_china6,
    generate_china13,
    generate_covid19,
    generate_santander,
)
from .validation import DatasetValidationError

__all__ = [
    "ChunkAssembler",
    "DATASET_NAMES",
    "DATA_COLUMNS",
    "DEFAULT_CHUNK_LINES",
    "DataRow",
    "DatasetValidationError",
    "JUMP_SIZE",
    "LOCATION_COLUMNS",
    "LocationRow",
    "NOISE_STD",
    "NULL_TOKEN",
    "PAPER_SHAPES",
    "RECOMMENDED_EVOLVING_RATE",
    "TIME_FORMAT",
    "assemble_dataset",
    "dataset_table",
    "dataset_to_rows",
    "downsample",
    "fill_gaps",
    "generate",
    "generate_china6",
    "generate_china13",
    "generate_covid19",
    "generate_santander",
    "iter_chunks",
    "read_attribute_csv",
    "read_data_csv",
    "read_dataset_dir",
    "read_location_csv",
    "recommended_parameters",
    "write_dataset_dir",
]
