"""Aggregation pipelines for the document store.

The Mongo-style counterpart to SQL GROUP BY, used by the admin/statistics
endpoints ("how many cached results per dataset?", "top patterns by
support").  A pipeline is a list of stages applied in order:

* ``{"$match": <query>}``            — filter with the normal query language;
* ``{"$group": {"_id": "$field" | None, out: {"$sum"|"$avg"|"$min"|"$max"|
  "$count"|"$push": "$field" | 1}}}`` — group and accumulate;
* ``{"$sort": {"field": 1 | -1}}``   — order (single key);
* ``{"$limit": n}`` / ``{"$skip": n}`` — pagination;
* ``{"$project": {"field": 1, ...}}`` — keep only listed fields (plus
  renames via ``{"new": "$old.path"}``);
* ``{"$unwind": "$field"}``          — one output document per array element.

Pipelines operate on plain dicts and return plain dicts; they never mutate
stored documents.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .query import MISSING, QueryError, get_path, matches

__all__ = ["aggregate"]


def _resolve(document: Mapping[str, Any], ref: Any) -> Any:
    """Resolve ``"$field.path"`` references; literals pass through."""
    if isinstance(ref, str) and ref.startswith("$"):
        value = get_path(document, ref[1:])
        return None if value is MISSING else value
    return ref


def _stage_match(docs: list[dict], spec: Mapping[str, Any]) -> list[dict]:
    return [d for d in docs if matches(d, spec)]


def _stage_group(docs: list[dict], spec: Mapping[str, Any]) -> list[dict]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression (use None for all)")
    key_expr = spec["_id"]
    accumulators = {k: v for k, v in spec.items() if k != "_id"}
    for name, acc in accumulators.items():
        if not isinstance(acc, Mapping) or len(acc) != 1:
            raise QueryError(f"accumulator {name!r} must be a single-operator object")
        op = next(iter(acc))
        if op not in ("$sum", "$avg", "$min", "$max", "$count", "$push"):
            raise QueryError(f"unknown accumulator {op!r}")

    groups: dict[Any, list[dict]] = {}
    order: list[Any] = []
    for doc in docs:
        key = _resolve(doc, key_expr)
        try:
            hash(key)
        except TypeError:
            key = repr(key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(doc)

    out: list[dict] = []
    for key in order:
        members = groups[key]
        row: dict[str, Any] = {"_id": key}
        for name, acc in accumulators.items():
            op, operand = next(iter(acc.items()))
            if op == "$count":
                row[name] = len(members)
                continue
            values = [_resolve(d, operand) for d in members]
            if op == "$push":
                row[name] = values
                continue
            numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
            if op == "$sum":
                row[name] = sum(numeric)
            elif op == "$avg":
                row[name] = sum(numeric) / len(numeric) if numeric else None
            elif op == "$min":
                row[name] = min(numeric) if numeric else None
            elif op == "$max":
                row[name] = max(numeric) if numeric else None
        out.append(row)
    return out


def _stage_sort(docs: list[dict], spec: Mapping[str, Any]) -> list[dict]:
    if not isinstance(spec, Mapping) or len(spec) != 1:
        raise QueryError("$sort takes exactly one {field: 1|-1}")
    field, direction = next(iter(spec.items()))
    if direction not in (1, -1):
        raise QueryError("$sort direction must be 1 or -1")
    present = [d for d in docs if get_path(d, field) is not MISSING]
    absent = [d for d in docs if get_path(d, field) is MISSING]
    present.sort(key=lambda d: get_path(d, field), reverse=direction == -1)
    return present + absent


def _stage_limit(docs: list[dict], spec: Any) -> list[dict]:
    if not isinstance(spec, int) or spec < 0:
        raise QueryError("$limit requires a non-negative integer")
    return docs[:spec]


def _stage_skip(docs: list[dict], spec: Any) -> list[dict]:
    if not isinstance(spec, int) or spec < 0:
        raise QueryError("$skip requires a non-negative integer")
    return docs[spec:]


def _stage_project(docs: list[dict], spec: Mapping[str, Any]) -> list[dict]:
    if not isinstance(spec, Mapping) or not spec:
        raise QueryError("$project requires a non-empty field object")
    out = []
    for doc in docs:
        row: dict[str, Any] = {}
        for name, rule in spec.items():
            if rule == 1 or rule is True:
                value = get_path(doc, name)
                if value is not MISSING:
                    row[name] = value
            elif isinstance(rule, str) and rule.startswith("$"):
                row[name] = _resolve(doc, rule)
            else:
                raise QueryError(
                    f"$project rule for {name!r} must be 1 or a '$path' reference"
                )
        out.append(row)
    return out


def _stage_unwind(docs: list[dict], spec: Any) -> list[dict]:
    if not isinstance(spec, str) or not spec.startswith("$"):
        raise QueryError('$unwind requires a "$field" path')
    path = spec[1:]
    out = []
    for doc in docs:
        value = get_path(doc, path)
        if value is MISSING or value is None:
            continue
        if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
            out.append(dict(doc))
            continue
        for element in value:
            clone = dict(doc)
            # Only top-level unwind targets are rewritten; dotted paths keep
            # the original nested document and add a flattened key.
            clone[path] = element
            out.append(clone)
    return out


_STAGES = {
    "$match": _stage_match,
    "$group": _stage_group,
    "$sort": _stage_sort,
    "$limit": _stage_limit,
    "$skip": _stage_skip,
    "$project": _stage_project,
    "$unwind": _stage_unwind,
}


def aggregate(documents: Sequence[Mapping[str, Any]], pipeline: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Run an aggregation pipeline over documents; returns new dicts."""
    current: list[dict] = [dict(d) for d in documents]
    for i, stage in enumerate(pipeline):
        if not isinstance(stage, Mapping) or len(stage) != 1:
            raise QueryError(f"pipeline stage {i} must be a single-operator object")
        op, spec = next(iter(stage.items()))
        handler = _STAGES.get(op)
        if handler is None:
            raise QueryError(f"unknown pipeline stage {op!r}")
        current = handler(current, spec)
    return current
