"""Mongo-style query language for the document store.

The paper stores datasets and CAP results in MongoDB; this module implements
the slice of its query language the system needs (and a bit more, so the
store is genuinely reusable):

* equality on fields, with dotted paths (``"parameters.min_support"``);
* comparison operators ``$eq $ne $gt $gte $lt $lte``;
* membership ``$in $nin``;
* existence ``$exists``;
* array containment ``$all``, size ``$size``;
* boolean combinators ``$and $or $not``;
* regular expressions ``$regex``.

A query is a plain dict, e.g.::

    {"dataset": "santander", "parameters.min_support": {"$gte": 10}}

:func:`matches` evaluates one document; :func:`compile_query` pre-validates
a query and returns a fast predicate.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping, Sequence

__all__ = ["QueryError", "MISSING", "get_path", "matches", "compile_query"]


class _Missing:
    """Sentinel for absent fields; shared by the query engine and indexes."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


MISSING = _Missing()
_MISSING = MISSING


class QueryError(ValueError):
    """Raised for malformed queries (unknown operator, bad operand)."""


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted field path; returns the ``_MISSING`` sentinel if absent."""
    current: Any = document
    for part in path.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            return _MISSING
    return current


def _compare(op: str, value: Any, operand: Any) -> bool:
    if op == "$eq":
        return value == operand
    if op == "$ne":
        return value != operand
    if value is _MISSING:
        return False
    try:
        if op == "$gt":
            return value > operand
        if op == "$gte":
            return value >= operand
        if op == "$lt":
            return value < operand
        if op == "$lte":
            return value <= operand
    except TypeError:
        return False
    raise QueryError(f"unknown comparison operator {op!r}")  # pragma: no cover


def _match_operators(value: Any, spec: Mapping[str, Any]) -> bool:
    for op, operand in spec.items():
        if op in ("$eq", "$ne", "$gt", "$gte", "$lt", "$lte"):
            if not _compare(op, value, operand):
                return False
        elif op == "$in":
            if not isinstance(operand, Sequence) or isinstance(operand, (str, bytes)):
                raise QueryError("$in requires a list operand")
            if value is _MISSING or value not in operand:
                return False
        elif op == "$nin":
            if not isinstance(operand, Sequence) or isinstance(operand, (str, bytes)):
                raise QueryError("$nin requires a list operand")
            if value is not _MISSING and value in operand:
                return False
        elif op == "$exists":
            if not isinstance(operand, bool):
                raise QueryError("$exists requires a boolean operand")
            if operand != (value is not _MISSING):
                return False
        elif op == "$all":
            if not isinstance(operand, Sequence) or isinstance(operand, (str, bytes)):
                raise QueryError("$all requires a list operand")
            if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                return False
            if not all(item in value for item in operand):
                return False
        elif op == "$size":
            if not isinstance(operand, int):
                raise QueryError("$size requires an integer operand")
            if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                return False
            if len(value) != operand:
                return False
        elif op == "$regex":
            if not isinstance(operand, str):
                raise QueryError("$regex requires a string pattern")
            if not isinstance(value, str) or re.search(operand, value) is None:
                return False
        elif op == "$not":
            if not isinstance(operand, Mapping):
                raise QueryError("$not requires an operator object")
            if _match_operators(value, operand):
                return False
        else:
            raise QueryError(f"unknown operator {op!r}")
    return True


def _is_operator_spec(value: Any) -> bool:
    return isinstance(value, Mapping) and any(
        isinstance(k, str) and k.startswith("$") for k in value
    )


def matches(document: Mapping[str, Any], query: Mapping[str, Any]) -> bool:
    """Whether a document satisfies a query."""
    for key, condition in query.items():
        if key == "$and":
            if not isinstance(condition, Sequence):
                raise QueryError("$and requires a list of queries")
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not isinstance(condition, Sequence):
                raise QueryError("$or requires a list of queries")
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$not":
            if not isinstance(condition, Mapping):
                raise QueryError("top-level $not requires a query object")
            if matches(document, condition):
                return False
        elif isinstance(key, str) and key.startswith("$"):
            raise QueryError(f"unknown top-level operator {key!r}")
        else:
            value = get_path(document, key)
            if _is_operator_spec(condition):
                if not _match_operators(value, condition):
                    return False
            else:
                # Plain equality; matching a scalar against an array field
                # succeeds when the array contains it (Mongo semantics).
                if value is _MISSING:
                    if condition is not None:
                        return False
                elif value != condition:
                    if not (
                        isinstance(value, Sequence)
                        and not isinstance(value, (str, bytes))
                        and condition in value
                    ):
                        return False
    return True


def _validate(query: Mapping[str, Any]) -> None:
    """Raise QueryError on malformed structure without needing a document."""
    probe: dict[str, Any] = {}
    matches(probe, query)


def compile_query(query: Mapping[str, Any]) -> Callable[[Mapping[str, Any]], bool]:
    """Validate a query once and return a document predicate."""
    if not isinstance(query, Mapping):
        raise QueryError(f"query must be a mapping, got {type(query).__name__}")
    _validate(query)
    return lambda document: matches(document, query)
