"""The database: named collections behind a crash-safe WAL store engine.

Plays the role MongoDB plays in the paper: one database holds the
``datasets`` collection (uploaded data, so "we can use the dataset without
re-uploading by specifying the dataset name") and the ``cap_results``
collection (cached mining results keyed by dataset + parameters).

Three engines share the :class:`Database` surface:

* ``memory`` (no path) — collections live in this process only;
* ``wal`` (the default for a path) — every mutation appends one
  checksummed record to a per-collection append-only log under
  ``<path>.wal/`` (see :mod:`repro.store.wal`); opening replays the logs,
  recovery truncates torn tails, and several processes share the store
  through one ``flock`` + tail replay.  Deletions are first-class
  tombstone records, so a removal in one process is a removal everywhere;
* ``snapshot`` (opt-in, legacy) — the PR 5 whole-database JSON snapshot,
  kept for export (:meth:`save` always writes it), for migration of
  pre-WAL stores, and as the comparison arm of the WAL benchmarks.

A legacy ``repro-store-v1`` snapshot at ``path`` is migrated to WAL
segments on first open; the original file is left byte-untouched until
the first successful full compaction archives it (``<path>.pre-wal``).
A snapshot or log that fails to parse is quarantined
(``<name>.corrupt-<ts>``) with a structured warning instead of refusing
to start — the store comes up with exactly the last good state.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping
from urllib.parse import quote, unquote

from ..obs.metrics import get_registry
from . import wal
from .collection import Collection

__all__ = ["Database"]

_log = logging.getLogger("repro.store")

_TORN_TRUNCATIONS = get_registry().counter(
    "repro_wal_torn_truncations_total",
    "Torn WAL tails truncated during recovery, by collection.",
    ("collection",),
)
_COMPACTION_SECONDS = get_registry().histogram(
    "repro_wal_compaction_seconds",
    "Duration of one collection-log compaction rewrite.",
    ("collection",),
)

#: Marker file naming the WAL directory format (bumped on layout changes).
_FORMAT_MARKER = "FORMAT"
_FORMAT_VALUE = "repro-store-wal-v1"
#: Marker recording that the segments were migrated from a legacy snapshot
#: (and that the snapshot must survive until the first full compaction).
_MIGRATED_MARKER = "MIGRATED"
_LOCK_FILE = "LOCK"
_LOG_SUFFIX = ".log"
_TMP_SUFFIX = ".compact-tmp"


def _encode_name(name: str) -> str:
    """Collection name -> log file stem (filesystem-safe, reversible)."""
    return quote(name, safe="abcdefghijklmnopqrstuvwxyz"
                            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def _decode_name(stem: str) -> str:
    return unquote(stem)


def collection_records(collection: Collection) -> Iterator[dict[str, Any]]:
    """The live state of one collection as a minimal record stream.

    What migration and compaction write: index definitions first (so
    replay backfills into ready indexes), one ``put`` per live document,
    and a final ``next`` record pinning the id counter — tombstones and
    superseded versions are gone, which is the whole point.
    """
    dump = collection.dump()
    for path in dump["indexes"]["hash"]:
        yield {"op": "index", "path": path, "kind": "hash"}
    for path in dump["indexes"]["sorted"]:
        yield {"op": "index", "path": path, "kind": "sorted"}
    for document in dump["documents"]:
        yield {"op": "put", "doc": document}
    yield {"op": "next", "value": dump["next_id"]}


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_segment(
    target: Path,
    records: Iterable[Mapping[str, Any]],
    *,
    collection_name: str | None = None,
    fault: bool = False,
) -> int:
    """Write a complete segment next to ``target`` and atomically swap it in.

    The temp file is fsync'd *before* the rename and the caller fsyncs the
    directory after — a crash at any point leaves either the old complete
    log or the new complete segment, never a mix.  ``fault=True`` arms the
    ``mid-compaction-swap`` crash point between the two.
    """
    tmp = target.with_name(target.name + _TMP_SUFFIX)
    data = b"".join(wal.encode_record(record) for record in records)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    if fault:
        wal.maybe_fault("mid-compaction-swap", collection_name)
    os.replace(tmp, target)
    return len(data)


class Database:
    """A set of named collections, optionally bound to durable storage."""

    def __init__(self, path: str | Path | None = None,
                 engine: str = "wal") -> None:
        self._collections: dict[str, Collection] = {}
        self.path = Path(path) if path is not None else None
        self._tlock = threading.RLock()
        self._lock_depth = 0
        self._wal_logs: dict[str, wal.CollectionLog] = {}
        self._wal_root: Path | None = None
        self._wal_ready = False
        self._wal_dir_dirty = False
        if self.path is None:
            self.engine = "memory"
        elif engine == "snapshot":
            self.engine = "snapshot"
            if self.path.exists():
                for collection in self._read_snapshot(self.path):
                    self._collections[collection.name] = collection
        elif engine == "wal":
            self.engine = "wal"
            self._wal_root = self.path.with_name(self.path.name + ".wal")
            self._wal_root.mkdir(parents=True, exist_ok=True)
            # Open under the store lock: migrate a legacy snapshot if one
            # is present, clean compaction leftovers, replay the logs, and
            # truncate any torn tail a previous crash left behind.
            with self.exclusive():
                pass
        else:
            raise ValueError(
                f'engine must be "wal" or "snapshot", got {engine!r}'
            )

    # -- collection management ------------------------------------------------

    def _new_collection(self, name: str) -> Collection:
        collection = Collection(name)
        if self.engine == "wal":
            collection.bind_engine(
                guard=self.exclusive,
                journal=lambda record, _name=name: self._wal_append(_name, record),
            )
        return collection

    def collection(self, name: str) -> Collection:
        """Get (creating on first use) a collection — Mongo's ``db[name]``."""
        if name not in self._collections:
            self._collections[name] = self._new_collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[str]:
        return iter(self._collections)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> bool:
        """Remove a collection entirely; returns whether it existed."""
        if self.engine != "wal":
            return self._collections.pop(name, None) is not None
        with self.exclusive():
            existed = self._collections.pop(name, None) is not None
            log = self._wal_logs.pop(name, None)
            if log is not None:
                log.close()
                log.path.unlink(missing_ok=True)
                self._wal_dir_dirty = True
                existed = True
            return existed

    def replace_collection(self, collection: Collection) -> None:
        """Swap in a collection object wholesale (keyed by its name).

        Used by the *snapshot* engine's refresh protocol, which adopts
        another process's view of a collection from the shared snapshot.
        The WAL engine never swaps objects — peers' records replay into
        the existing collection — but rebinding keeps a swapped-in
        collection journaled if someone does it anyway.
        """
        if self.engine == "wal":
            collection.bind_engine(
                guard=self.exclusive,
                journal=lambda record, _name=collection.name: self._wal_append(
                    _name, record
                ),
            )
        self._collections[collection.name] = collection

    def stats(self) -> dict[str, Any]:
        """Document counts per collection (the admin endpoint's payload),
        plus per-segment WAL counters when this store journals."""
        payload: dict[str, Any] = {
            "collections": {
                name: len(collection)
                for name, collection in sorted(self._collections.items())
            },
            "path": str(self.path) if self.path else None,
            "engine": self.engine,
        }
        if self.engine == "wal":
            segments: dict[str, Any] = {}
            for name, log in sorted(self._wal_logs.items()):
                stat = log.stat()
                segments[name] = {
                    "segment_bytes": stat.st_size if stat else 0,
                    "records": log.records,
                    "live_documents": len(self._collections.get(name, ())),
                    "compactions": log.compactions,
                }
            payload["wal"] = segments
        return payload

    # -- WAL engine: locking, replay, recovery ----------------------------------

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """The store's cross-process critical section.

        WAL engine: process-local reentrant lock + ``flock`` on
        ``<root>/LOCK``; entry replays peers' log tails (so a mutation
        always starts from the shared present — id assignment and
        ``update_if`` CAS decisions are then correct across processes)
        and exit fsyncs every dirty log *before* the lock releases, so an
        acknowledged mutation is durable.  Other engines: the process
        lock only (their collections are process-local between saves).

        Reentrant: nested sections piggyback on the outer one (``flock``
        self-deadlocks across fds of one process otherwise) and share its
        single exit fsync.
        """
        with self._tlock:
            if self.engine != "wal":
                yield
                return
            if self._lock_depth > 0:
                self._lock_depth += 1
                try:
                    yield
                finally:
                    self._lock_depth -= 1
                return
            assert self._wal_root is not None
            handle = open(self._wal_root / _LOCK_FILE, "a+")
            try:
                try:
                    import fcntl

                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                except ImportError:  # pragma: no cover - non-POSIX fallback
                    pass
                self._lock_depth = 1
                try:
                    if not self._wal_ready:
                        self._wal_open_locked()
                    self._wal_refresh(truncate_torn=True)
                    yield
                finally:
                    self._lock_depth = 0
                    self._wal_sync()
            finally:
                handle.close()  # closing the fd releases the flock

    def refresh(self) -> None:
        """Adopt changes other processes appended since the last look.

        Cheap when nothing changed (one ``stat`` per log).  Lock-free:
        a tail being appended right now simply decodes short and is
        retried on the next refresh — torn-tail truncation only happens
        inside :meth:`exclusive`, where no live writer can exist.
        """
        if self.engine != "wal":
            return
        with self._tlock:
            if self._lock_depth > 0:
                return  # inside exclusive: entry already refreshed
            self._wal_refresh(truncate_torn=False)

    def _wal_open_locked(self) -> None:
        """First-open work under the lock: migrate a legacy snapshot."""
        assert self.path is not None and self._wal_root is not None
        marker = self._wal_root / _FORMAT_MARKER
        if not marker.exists():
            if self.path.exists():
                migrated = 0
                for collection in self._read_snapshot(self.path):
                    target = self._wal_root / (
                        _encode_name(collection.name) + _LOG_SUFFIX
                    )
                    write_segment(target, collection_records(collection))
                    migrated += 1
                if migrated:
                    (self._wal_root / _MIGRATED_MARKER).write_text(
                        self.path.name + "\n"
                    )
                    _log.warning(
                        "store: migrated legacy snapshot %s to %d WAL "
                        "segment(s) under %s; original kept until the "
                        "first successful compaction",
                        self.path, migrated, self._wal_root,
                    )
            marker.write_text(_FORMAT_VALUE + "\n")
            _fsync_dir(self._wal_root)
        self._wal_ready = True

    def _wal_refresh(self, truncate_torn: bool) -> None:
        assert self._wal_root is not None
        try:
            entries = os.listdir(self._wal_root)
        except FileNotFoundError:  # pragma: no cover - root deleted underneath
            return
        for entry in entries:
            if entry.endswith(_LOG_SUFFIX):
                name = _decode_name(entry[: -len(_LOG_SUFFIX)])
                if name not in self._wal_logs:
                    self._wal_logs[name] = wal.CollectionLog(
                        name, self._wal_root / entry
                    )
                    self.collection(name)  # materialize for replay
            elif entry.endswith(_TMP_SUFFIX) and truncate_torn:
                # Leftover of a compaction killed before its atomic swap:
                # the old log is still complete; the half-segment is noise.
                (self._wal_root / entry).unlink(missing_ok=True)
        for name, log in list(self._wal_logs.items()):
            collection = self.collection(name)
            stat = log.stat()
            if stat is None:
                # A peer dropped the collection (tombstoned wholesale).
                log.close()
                del self._wal_logs[name]
                self._collections.pop(name, None)
                continue
            if log.inode_changed(stat) or stat.st_size < log.applied_offset:
                # A peer compacted: new segment, replay it from zero.
                log.reopen()
                collection.reset_state()
                stat = log.stat()
                if stat is None:  # pragma: no cover - raced a drop
                    continue
            if stat.st_size > log.applied_offset:
                records, valid_end, torn = log.read_tail(stat.st_size)
                for record in records:
                    collection.apply_wal_record(record)
                log.records += len(records)
                log.applied_offset = valid_end
                if torn and truncate_torn:
                    self._quarantine_tail(log, stat.st_size)

    def _quarantine_tail(self, log: wal.CollectionLog, size: int) -> None:
        """Preserve then truncate a torn tail (crash landed mid-append)."""
        torn = os.pread(log.fd, size - log.applied_offset, log.applied_offset)
        sidecar = log.path.with_name(
            f"{log.path.name}.corrupt-{int(time.time() * 1000)}"
        )
        sidecar.write_bytes(torn)
        log.truncate_to(log.applied_offset)
        _TORN_TRUNCATIONS.inc(log.collection_name)
        _log.warning(
            "store: truncated torn tail of %s at byte %d (%d bad byte(s) "
            "quarantined to %s); recovered state is the fsync'd record "
            "prefix", log.path, log.applied_offset, len(torn), sidecar,
        )

    def _wal_append(self, name: str, record: Mapping[str, Any]) -> None:
        assert self.engine == "wal" and self._wal_root is not None
        assert self._lock_depth > 0, "WAL appends require Database.exclusive()"
        log = self._wal_logs.get(name)
        if log is None:
            log = wal.CollectionLog(
                name, self._wal_root / (_encode_name(name) + _LOG_SUFFIX)
            )
            self._wal_logs[name] = log
            self._wal_dir_dirty = True  # new file: directory entry to fsync
        log.append(record)

    def _wal_sync(self) -> None:
        for log in self._wal_logs.values():
            log.sync()
        if self._wal_dir_dirty:
            assert self._wal_root is not None
            _fsync_dir(self._wal_root)
            self._wal_dir_dirty = False

    def compact_collection(self, name: str) -> dict[str, Any]:
        """Rewrite one collection's log to its live state, atomically.

        Crash-safe at any point: the new segment is complete and fsync'd
        before the rename, the old log stays intact until it, and peers
        detect the inode change and replay the fresh segment.  Returns
        before/after byte counts.
        """
        with self.exclusive():
            log = self._wal_logs.get(name)
            if log is None:
                return {"collection": name, "before_bytes": 0,
                        "after_bytes": 0, "compacted": False}
            stat = log.stat()
            before = stat.st_size if stat else 0
            started = time.perf_counter()
            collection = self.collection(name)
            records = list(collection_records(collection))
            after = write_segment(
                log.path, records, collection_name=name, fault=True
            )
            _fsync_dir(log.path.parent)
            log.adopt_segment(after, len(records))
            _COMPACTION_SECONDS.observe(time.perf_counter() - started, name)
            return {"collection": name, "before_bytes": before,
                    "after_bytes": after, "compacted": True}

    def compact(self) -> list[dict[str, Any]]:
        """Compact every collection; archives a migrated legacy snapshot.

        The first successful *full* compaction is the point after which
        the pre-WAL snapshot file is no longer the fallback of record —
        it is renamed to ``<path>.pre-wal`` (never deleted).
        """
        if self.engine != "wal":
            return []
        with self.exclusive():
            results = [
                self.compact_collection(name)
                for name in sorted(self._wal_logs)
            ]
            assert self._wal_root is not None and self.path is not None
            marker = self._wal_root / _MIGRATED_MARKER
            if marker.exists():
                if self.path.exists():
                    archived = self.path.with_name(self.path.name + ".pre-wal")
                    os.replace(self.path, archived)
                    _log.warning(
                        "store: archived migrated legacy snapshot to %s "
                        "after first full compaction", archived,
                    )
                marker.unlink(missing_ok=True)
                self._wal_dir_dirty = True
            return results

    # -- persistence (legacy snapshot format; export + migration) ---------------

    def save(self, path: str | Path | None = None) -> Path:
        """Write a JSON snapshot atomically *and durably*; returns the path.

        The WAL engine does not need this for durability (appends are
        fsync'd per transition) — it remains the export format and the
        snapshot engine's persistence.  The temp file is fsync'd before
        the rename and the directory after it, so the snapshot survives
        power loss, not just process death.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no snapshot path: pass one or construct Database(path=...)")
        snapshot = {
            "format": "repro-store-v1",
            "collections": [c.dump() for c in self._collections.values()],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(snapshot, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, target)
            _fsync_dir(target.parent)
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:
                pass
            raise
        if self.path is None:
            self.path = target
        return target

    def _read_snapshot(self, path: Path) -> list[Collection]:
        """Load a legacy snapshot's collections, quarantining parse failures.

        A snapshot that cannot be *parsed* is moved aside
        (``<name>.corrupt-<ts>``) with a warning and the store starts from
        scratch — a corrupt file must not brick startup.  A snapshot that
        parses but declares an unknown format still raises: it may belong
        to a newer version and silently quarantining it would destroy data
        a newer binary could read.
        """
        try:
            with open(path) as handle:
                snapshot = json.load(handle)
            if not isinstance(snapshot, dict):
                raise json.JSONDecodeError("not an object", "", 0)
        except (json.JSONDecodeError, UnicodeDecodeError):
            quarantined = path.with_name(
                f"{path.name}.corrupt-{int(time.time() * 1000)}"
            )
            os.replace(path, quarantined)
            _log.warning(
                "store: snapshot %s failed to parse; quarantined to %s and "
                "starting from the last good state", path, quarantined,
            )
            return []
        if snapshot.get("format") != "repro-store-v1":
            raise ValueError(
                f"unrecognised snapshot format in {path}: {snapshot.get('format')!r}"
            )
        return [
            Collection.load(dump) for dump in snapshot.get("collections", [])
        ]

    @classmethod
    def open(cls, path: str | Path) -> "Database":
        """Open (or create) a persistent database at ``path``."""
        return cls(path=path)
