"""The database: named collections with optional JSON-file persistence.

Plays the role MongoDB plays in the paper: one database holds the
``datasets`` collection (uploaded data, so "we can use the dataset without
re-uploading by specifying the dataset name") and the ``cap_results``
collection (cached mining results keyed by dataset + parameters).

Persistence is a whole-database JSON snapshot — crash-consistent via
write-to-temp-then-rename — because the store's durability job here is to
survive restarts of the demo server, not to be a WAL-grade engine.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from .collection import Collection

__all__ = ["Database"]


class Database:
    """A set of named collections, optionally bound to a snapshot file."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._collections: dict[str, Collection] = {}
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load_snapshot(self.path)

    # -- collection management ------------------------------------------------

    def collection(self, name: str) -> Collection:
        """Get (creating on first use) a collection — Mongo's ``db[name]``."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[str]:
        return iter(self._collections)

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> bool:
        """Remove a collection entirely; returns whether it existed."""
        return self._collections.pop(name, None) is not None

    def replace_collection(self, collection: Collection) -> None:
        """Swap in a collection object wholesale (keyed by its name).

        Used by refresh protocols that adopt another process's view of a
        collection — e.g. the durable job registry re-reading the ``jobs``
        collection from the shared snapshot.  Callers that created indexes
        on the replaced collection should re-ensure them afterwards
        (``create_index`` is idempotent; loaded snapshots carry their index
        definitions anyway).
        """
        self._collections[collection.name] = collection

    def stats(self) -> dict[str, Any]:
        """Document counts per collection (the admin endpoint's payload)."""
        return {
            "collections": {
                name: len(collection)
                for name, collection in sorted(self._collections.items())
            },
            "path": str(self.path) if self.path else None,
        }

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path | None = None) -> Path:
        """Write a JSON snapshot atomically; returns the path written."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no snapshot path: pass one or construct Database(path=...)")
        snapshot = {
            "format": "repro-store-v1",
            "collections": [c.dump() for c in self._collections.values()],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(snapshot, handle, separators=(",", ":"))
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:
                pass
            raise
        self.path = target
        return target

    def _load_snapshot(self, path: Path) -> None:
        with open(path) as handle:
            snapshot = json.load(handle)
        if snapshot.get("format") != "repro-store-v1":
            raise ValueError(
                f"unrecognised snapshot format in {path}: {snapshot.get('format')!r}"
            )
        for dump in snapshot.get("collections", []):
            collection = Collection.load(dump)
            self._collections[collection.name] = collection

    @classmethod
    def open(cls, path: str | Path) -> "Database":
        """Open (or create) a persistent database at ``path``."""
        return cls(path=path)
