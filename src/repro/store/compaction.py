"""Background compaction for the WAL store engine.

A long-lived store accretes log records: every progress tick, lease
renewal, and requeue appends one, while the *live* state stays small.
Compaction rewrites a collection's current state to a fresh segment and
atomically swaps it in (see :meth:`Database.compact_collection` for the
crash-safety argument: the new segment is fsync'd before the ``rename``,
so a crash at any point leaves either the old complete log or the new
complete segment).

:class:`CompactionThread` runs that sweep on a timer.  It compacts lazily
— only collections whose log carries substantially more records than live
documents — so a quiet store costs one ``stats`` walk per interval and
zero writes.  The server wires one up per process behind
``--compact-seconds``; ``repro store compact`` does the same sweep once,
offline.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Sequence

from .database import Database

__all__ = ["CompactionThread", "needs_compaction"]

_log = logging.getLogger("repro.store")

#: Never compact a log shorter than this many records — the rewrite would
#: cost more than the replay it saves.
MIN_RECORDS = 64

#: Compact when the log holds more than this many records per live
#: document (dead weight from updates, tombstones, and progress ticks).
RECORDS_PER_DOC = 4.0


def needs_compaction(
    records: int,
    live_documents: int,
    *,
    min_records: int = MIN_RECORDS,
    records_per_doc: float = RECORDS_PER_DOC,
) -> bool:
    """The lazy trigger: enough records, mostly dead weight."""
    if records < min_records:
        return False
    return records > max(min_records, records_per_doc * max(live_documents, 1))


class CompactionThread:
    """Periodically compact over-grown collection logs of one database.

    Daemonised and event-driven: :meth:`stop` wakes the timer immediately,
    so shutdown never waits out the interval.  Compaction errors are
    logged and swallowed — a failed sweep leaves the (valid, just long)
    old log in place, and the next interval retries.
    """

    def __init__(
        self,
        database: Database,
        interval_seconds: float = 30.0,
        *,
        min_records: int = MIN_RECORDS,
        records_per_doc: float = RECORDS_PER_DOC,
        extra_sweep: Callable[[], Sequence[dict[str, object]]] | None = None,
    ) -> None:
        self.database = database
        self.interval_seconds = interval_seconds
        self.min_records = min_records
        self.records_per_doc = records_per_doc
        #: Optional piggybacked sweep (e.g. the stream retention pass) run
        #: on the same cadence; its results join the sweep report, its
        #: failures are logged and swallowed like segment-compaction ones.
        self.extra_sweep = extra_sweep
        self.sweeps = 0
        self.compacted = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-store-compactor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        if wait and self._thread.is_alive():
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - defensive
                _log.exception("store compaction sweep failed")

    def sweep(self) -> list[dict[str, object]]:
        """One pass: compact every collection past the threshold."""
        self.sweeps += 1
        results: list[dict[str, object]] = []
        if self.extra_sweep is not None:
            try:
                results.extend(self.extra_sweep())
            except Exception:  # pragma: no cover - defensive
                _log.exception("piggybacked compaction sweep failed")
        wal_stats = self.database.stats().get("wal", {})
        for name, entry in wal_stats.items():
            if not needs_compaction(
                entry["records"],
                entry["live_documents"],
                min_records=self.min_records,
                records_per_doc=self.records_per_doc,
            ):
                continue
            result = self.database.compact_collection(name)
            if result.get("compacted"):
                self.compacted += 1
                _log.info(
                    "compacted collection %r: %d -> %d bytes",
                    name,
                    result["before_bytes"],
                    result["after_bytes"],
                )
            results.append(result)
        return results
