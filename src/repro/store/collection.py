"""Document collections.

A :class:`Collection` owns JSON-like documents keyed by an integer id the
store assigns (exposed as ``_id``), supports Mongo-style ``find`` /
``insert_one`` / ``update_one`` / ``delete_many``, and consults its
secondary indexes to avoid full scans for equality and range queries.

Documents are deep-copied on the way in and out so callers can never mutate
stored state behind the store's back — the same isolation a real database
client gives you.
"""

from __future__ import annotations

import copy
import threading
from contextlib import nullcontext
from typing import Any, Callable, ContextManager, Iterable, Iterator, Mapping, Sequence

from .index import HashIndex, SortedIndex
from .query import MISSING as _MISSING
from .query import QueryError, compile_query, get_path, matches

__all__ = ["Collection"]


class Collection:
    """One named set of documents with optional secondary indexes."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("collection name must be non-empty")
        self.name = name
        self._documents: dict[int, dict[str, Any]] = {}
        self._next_id = 1
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        # Writes are multi-step (id counter, document map, every index);
        # serializing them makes each write — in particular the
        # compare-and-set of :meth:`update_if` — atomic with respect to
        # other writers.  Readers still coordinate with writers at a higher
        # level (``ResultCache``'s lock, ``DurableJobStore``'s lock) as
        # before.
        self._write_lock = threading.RLock()
        # Engine hooks (see :meth:`bind_engine`): a WAL-backed database
        # wraps every mutation in its cross-process critical section and
        # journals the resulting record; unbound collections (unit tests,
        # the in-memory engine) mutate locally with no extra cost.
        self._engine_guard: Callable[[], ContextManager[None]] | None = None
        self._engine_journal: Callable[[Mapping[str, Any]], None] | None = None

    # -- store-engine integration --------------------------------------------

    def bind_engine(
        self,
        guard: Callable[[], ContextManager[None]],
        journal: Callable[[Mapping[str, Any]], None],
    ) -> None:
        """Attach this collection to a journaling store engine.

        ``guard()`` brackets every mutation (the database's exclusive
        section: lock + refresh on entry, fsync on exit); ``journal(rec)``
        appends one WAL record describing a mutation that just happened.
        """
        self._engine_guard = guard
        self._engine_journal = journal

    def _engine(self) -> ContextManager[None]:
        return self._engine_guard() if self._engine_guard is not None else nullcontext()

    def _journal(self, record: Mapping[str, Any]) -> None:
        if self._engine_journal is not None:
            self._engine_journal(record)

    def _journal_put(self, doc_id: int) -> None:
        """Journal the current stored version of one document (upsert)."""
        self._journal({"op": "put", "doc": self._documents[doc_id]})

    # -- WAL replay (engine-internal; never journals) -------------------------

    def apply_wal_record(self, record: Mapping[str, Any]) -> None:
        """Apply one replayed log record to the in-memory state.

        Unknown ops are skipped, not fatal — an older binary replaying a
        newer log must not corrupt what it *can* understand.
        """
        op = record.get("op")
        if op == "put":
            self._replay_put(record["doc"])
        elif op == "del":
            self._replay_delete(record.get("ids", ()))
        elif op == "clear":
            with self._write_lock:
                self._reset_documents()
        elif op == "index":
            with self._write_lock:
                self._create_index(str(record["path"]), str(record["kind"]))
        elif op == "next":
            with self._write_lock:
                self._next_id = max(self._next_id, int(record["value"]))

    def _replay_put(self, document: Mapping[str, Any]) -> None:
        doc = copy.deepcopy(dict(document))
        doc_id = int(doc["_id"])
        with self._write_lock:
            if doc_id in self._documents:
                self._unindex(doc_id)
            self._documents[doc_id] = doc
            self._index(doc_id, doc)
            if doc_id >= self._next_id:
                self._next_id = doc_id + 1

    def _replay_delete(self, doc_ids: Iterable[int]) -> None:
        with self._write_lock:
            for doc_id in doc_ids:
                doc_id = int(doc_id)
                if doc_id in self._documents:
                    self._unindex(doc_id)
                    del self._documents[doc_id]
                # Tombstones also pin the id space: a replayed deletion of
                # the max id must not let a later insert reuse it.
                if doc_id >= self._next_id:
                    self._next_id = doc_id + 1

    def _reset_documents(self) -> None:
        self._documents.clear()
        for path in list(self._hash_indexes):
            self._hash_indexes[path] = HashIndex(path)
        for path in list(self._sorted_indexes):
            self._sorted_indexes[path] = SortedIndex(path)

    def reset_state(self) -> None:
        """Forget all replayed state ahead of a from-zero segment replay
        (a peer compacted this collection's log).  Index *definitions*
        survive — the fresh segment re-declares them anyway and local
        callers may hold queries planned against them."""
        with self._write_lock:
            self._reset_documents()
            self._next_id = 1

    # -- index management ---------------------------------------------------

    def _create_index(self, path: str, kind: str) -> bool:
        """Create an index; returns whether one was actually created."""
        if kind == "hash":
            if path in self._hash_indexes:
                return False
            index = HashIndex(path)
            for doc_id, document in self._documents.items():
                index.insert(doc_id, document)
            self._hash_indexes[path] = index
            return True
        elif kind == "sorted":
            if path in self._sorted_indexes:
                return False
            sindex = SortedIndex(path)
            for doc_id, document in self._documents.items():
                sindex.insert(doc_id, document)
            self._sorted_indexes[path] = sindex
            return True
        else:
            raise ValueError(f'index kind must be "hash" or "sorted", got {kind!r}')

    def create_index(self, path: str, kind: str = "hash") -> None:
        """Create a secondary index over a dotted field path.

        Existing documents are back-filled.  Creating the same index twice
        is a no-op (and journals nothing).
        """
        with self._engine():
            with self._write_lock:
                if self._create_index(path, kind):
                    self._journal({"op": "index", "path": path, "kind": kind})

    def indexes(self) -> dict[str, list[str]]:
        return {
            "hash": sorted(self._hash_indexes),
            "sorted": sorted(self._sorted_indexes),
        }

    # -- writes ---------------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``.

        Under a WAL engine the id is assigned *inside* the exclusive
        section — entry replays peers' appends first, so the counter is
        past every id any process ever used (tombstones included).
        """
        if not isinstance(document, Mapping):
            raise TypeError(f"document must be a mapping, got {type(document).__name__}")
        doc = copy.deepcopy(dict(document))
        with self._engine():
            with self._write_lock:
                doc_id = self._next_id
                self._next_id += 1
                doc["_id"] = doc_id
                self._documents[doc_id] = doc
                for index in self._hash_indexes.values():
                    index.insert(doc_id, doc)
                for sindex in self._sorted_indexes.values():
                    sindex.insert(doc_id, doc)
                self._journal_put(doc_id)
        return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> list[int]:
        with self._engine():  # one critical section (and one fsync) for the batch
            return [self.insert_one(doc) for doc in documents]

    def replace_one(self, query: Mapping[str, Any], document: Mapping[str, Any]) -> int | None:
        """Replace the first matching document (keeping its ``_id``).

        Returns the ``_id`` of the replaced document, or ``None`` if no
        document matched.
        """
        with self._engine():
            with self._write_lock:
                found = self.find_one(query)
                if found is None:
                    return None
                doc_id = found["_id"]
                self._unindex(doc_id)
                doc = copy.deepcopy(dict(document))
                doc["_id"] = doc_id
                self._documents[doc_id] = doc
                self._index(doc_id, doc)
                self._journal_put(doc_id)
                return doc_id

    def update_one(self, query: Mapping[str, Any], changes: Mapping[str, Any]) -> int | None:
        """Set top-level fields on the first matching document."""
        with self._engine():
            with self._write_lock:
                found = self.find_one(query)
                if found is None:
                    return None
                doc_id = self._apply_changes(found["_id"], changes)
                self._journal_put(doc_id)
                return doc_id

    def update_if(
        self,
        query: Mapping[str, Any],
        expected: Mapping[str, Any],
        changes: Mapping[str, Any],
    ) -> int | None:
        """Compare-and-set: update the first ``query`` match only if it
        *still* matches ``expected``.

        ``expected`` uses the same query language as ``find`` and is
        evaluated against the matched document inside the write lock, so
        check and update are one atomic step — the primitive lease-based
        job claiming is built on (two workers CAS-ing the same queued job
        cannot both win).

        Returns the updated document's ``_id``, or ``None`` when nothing
        matched ``query`` or the ``expected`` condition no longer held.
        """
        with self._engine():
            with self._write_lock:
                found = self.find_one(query)
                if found is None or not matches(found, expected):
                    return None
                doc_id = self._apply_changes(found["_id"], changes)
                self._journal_put(doc_id)
                return doc_id

    def _apply_changes(self, doc_id: int, changes: Mapping[str, Any]) -> int:
        doc = self._documents[doc_id]
        self._unindex(doc_id)
        for key, value in changes.items():
            if key == "_id":
                raise QueryError("_id is immutable")
            doc[key] = copy.deepcopy(value)
        self._index(doc_id, doc)
        return doc_id

    def delete_many(self, query: Mapping[str, Any]) -> int:
        """Delete all matching documents; returns the count.

        Journaled as one tombstone record listing the dead ids — replayed
        by every process sharing the log, which is what makes deletion a
        first-class multi-writer operation rather than a race against
        peers' refreshes.
        """
        with self._engine():
            with self._write_lock:
                doc_ids = [doc["_id"] for doc in self.find(query)]
                for doc_id in doc_ids:
                    self._unindex(doc_id)
                    del self._documents[doc_id]
                if doc_ids:
                    self._journal({"op": "del", "ids": doc_ids})
                return len(doc_ids)

    def clear(self) -> None:
        with self._engine():
            with self._write_lock:
                had_documents = bool(self._documents)
                self._reset_documents()
                if had_documents:
                    self._journal({"op": "clear"})

    def _unindex(self, doc_id: int) -> None:
        for index in self._hash_indexes.values():
            index.remove(doc_id)
        for sindex in self._sorted_indexes.values():
            sindex.remove(doc_id)

    def _index(self, doc_id: int, doc: Mapping[str, Any]) -> None:
        for index in self._hash_indexes.values():
            index.insert(doc_id, doc)
        for sindex in self._sorted_indexes.values():
            sindex.insert(doc_id, doc)

    # -- reads ----------------------------------------------------------------

    def _candidate_ids(self, query: Mapping[str, Any]) -> Iterable[int] | None:
        """Use an index to narrow the scan, if any equality/range term has one.

        Returns ``None`` when no index applies (full scan).  Index results
        are a superset-of-matches *for that term*, so the final predicate is
        always re-applied.
        """
        for key, condition in query.items():
            if not isinstance(key, str) or key.startswith("$"):
                continue
            is_plain = not (
                isinstance(condition, Mapping)
                and any(str(k).startswith("$") for k in condition)
            )
            if is_plain and key in self._hash_indexes:
                index = self._hash_indexes[key]
                # Documents missing the field are not in the index and can
                # only equality-match None; scan those separately.
                ids = index.lookup(condition)
                uncovered = [d for d in self._documents if not index.covers(d)]
                return list(ids) + uncovered
            if isinstance(condition, Mapping) and key in self._sorted_indexes:
                ops = set(condition)
                if ops & {"$gt", "$gte", "$lt", "$lte"} and not ops - {
                    "$gt", "$gte", "$lt", "$lte"
                }:
                    low = condition.get("$gte", condition.get("$gt"))
                    high = condition.get("$lte", condition.get("$lt"))
                    sindex = self._sorted_indexes[key]
                    ids = list(
                        sindex.range(
                            low,
                            high,
                            include_low="$gte" in condition or "$gt" not in condition,
                            include_high="$lte" in condition or "$lt" not in condition,
                        )
                    )
                    return ids
        return None

    def find(
        self,
        query: Mapping[str, Any] | None = None,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """All matching documents (deep copies), optionally sorted/limited.

        ``sort`` is a dotted field path; documents missing the field sort
        last regardless of direction.
        """
        query = query or {}
        predicate = compile_query(query)
        candidates = self._candidate_ids(query)
        if candidates is None:
            candidates = list(self._documents)
        results = [
            self._documents[doc_id]
            for doc_id in candidates
            if doc_id in self._documents and predicate(self._documents[doc_id])
        ]
        if sort is not None:
            present = [d for d in results if get_path(d, sort) is not _MISSING]
            absent = [d for d in results if get_path(d, sort) is _MISSING]
            present.sort(key=lambda d: get_path(d, sort), reverse=descending)
            results = present + absent
        else:
            results.sort(key=lambda d: d["_id"])
        if limit is not None:
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            results = results[:limit]
        return copy.deepcopy(results)

    def find_one(self, query: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        found = self.find(query, limit=1)
        return found[0] if found else None

    def aggregate(self, pipeline: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Run an aggregation pipeline over the collection's documents."""
        from .aggregate import aggregate as _aggregate

        return _aggregate(self.find(), pipeline)

    def count(self, query: Mapping[str, Any] | None = None) -> int:
        if not query:
            return len(self._documents)
        predicate = compile_query(query)
        candidates = self._candidate_ids(query)
        if candidates is None:
            candidates = list(self._documents)
        return sum(
            1
            for doc_id in candidates
            if doc_id in self._documents and predicate(self._documents[doc_id])
        )

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.find())

    # -- persistence hooks (used by Database) ----------------------------------

    def dump(self) -> dict[str, Any]:
        """Serialisable snapshot (documents + index definitions).

        Taken under the write lock so a snapshot never observes a
        half-applied write (the durable job registry saves the database
        while executor threads are still transitioning other jobs).
        """
        with self._write_lock:
            return {
                "name": self.name,
                "next_id": self._next_id,
                "documents": [copy.deepcopy(d) for d in self._documents.values()],
                "indexes": self.indexes(),
            }

    @classmethod
    def load(cls, snapshot: Mapping[str, Any]) -> "Collection":
        collection = cls(str(snapshot["name"]))
        for path in snapshot.get("indexes", {}).get("hash", []):
            collection.create_index(path, "hash")
        for path in snapshot.get("indexes", {}).get("sorted", []):
            collection.create_index(path, "sorted")
        for document in snapshot.get("documents", []):
            doc = copy.deepcopy(dict(document))
            doc_id = int(doc["_id"])
            collection._documents[doc_id] = doc
            collection._index(doc_id, doc)
        collection._next_id = int(snapshot.get("next_id", 1))
        if collection._documents:
            collection._next_id = max(
                collection._next_id, max(collection._documents) + 1
            )
        return collection
