"""Write-ahead log primitives: checksummed records, torn-tail recovery.

The WAL-backed store engine journals every mutation of a collection as one
*record* in a per-collection append-only log::

    <length: u32 LE> <crc32c(payload): u32 LE> <payload: UTF-8 JSON>

Appends go through an ``O_APPEND`` fd and are fsync'd before the writing
critical section releases its lock, so an acknowledged transition is on
disk.  Replay walks records from the front and stops at the first bad
length, short payload, checksum mismatch, or unparseable JSON — everything
before that point is exactly the prefix of successfully appended records;
everything after is a *torn tail* (a crash landed mid-append) and is
truncated by recovery, after quarantining the bytes for post-mortems.

The checksum is CRC-32C (Castagnoli) — the polynomial storage engines and
wire protocols (ext4, iSCSI, leveldb) use — implemented table-based in
pure Python because this repo takes no dependencies beyond the toolchain.
``zlib.crc32`` would be CRC-32/ADLER territory and is deliberately not
used: record checksums are a format commitment, not a convenience.

Fault injection mirrors ``repro.jobs.durable``: ``REPRO_STORE_FAULT``
names a crash point (:data:`FAULT_POINTS`) and the process hard-exits
(``os._exit``) there, exactly like ``kill -9`` landing mid-write.  The
spec grammar is ``<point>[@<collection>][:<nth>]`` — e.g.
``mid-append@jobs:2`` kills the process halfway through the second append
to the ``jobs`` collection's log.
"""

from __future__ import annotations

import json
import os
import struct
import time
from pathlib import Path
from typing import Any, Mapping

from ..obs.metrics import get_registry

__all__ = [
    "FAULT_ENV",
    "FAULT_EXIT_CODE",
    "FAULT_POINTS",
    "CollectionLog",
    "crc32c",
    "decode_records",
    "encode_record",
    "maybe_fault",
    "verify_log",
]

#: Environment variable naming the store crash point to hard-exit at.
FAULT_ENV = "REPRO_STORE_FAULT"

#: Supported crash points, in write-path order.
FAULT_POINTS = (
    "mid-append",           # half a record written; the tail is torn
    "pre-fsync",            # record written, fsync never issued
    "mid-compaction-swap",  # new segment written; old log never replaced
)

#: Exit status for store fault exits (jobs faults use 70; keep them apart).
FAULT_EXIT_CODE = 71

_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size

#: Sanity bound on one record; a corrupt length field must not trigger a
#: gigabyte allocation during replay.
MAX_RECORD_BYTES = 256 * 1024 * 1024

# WAL write-path metrics, labelled by collection.  One perf_counter pair
# per append/fsync — noise next to the write(2)/fsync(2) they bracket.
_APPEND_SECONDS = get_registry().histogram(
    "repro_wal_append_seconds",
    "Latency of one WAL record append (write(2) only, not fsync).",
    ("collection",),
)
_FSYNC_SECONDS = get_registry().histogram(
    "repro_wal_fsync_seconds",
    "Latency of one WAL fsync barrier.",
    ("collection",),
)


# -- CRC-32C (Castagnoli), table-based -------------------------------------------

_CRC32C_POLY = 0x82F63B78  # reversed 0x1EDC6F41


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data`` (optionally continuing from a prior value)."""
    crc ^= 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


# -- fault injection --------------------------------------------------------------

_fault_hits: dict[str, int] = {}


def _fault_spec() -> tuple[str, str | None, int] | None:
    """Parse ``REPRO_STORE_FAULT`` into (point, collection, nth)."""
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return None
    point, _, nth_part = raw.partition(":")
    point, _, scope = point.partition("@")
    try:
        nth = int(nth_part) if nth_part else 1
    except ValueError:
        nth = 1
    return point, (scope or None), nth


def fault_armed(point: str, collection: str | None = None) -> bool:
    """True when this call is the configured crash occurrence.

    Counts matching hits so ``:<nth>`` specs can skip past setup writes
    (index creation on a fresh store appends records too).
    """
    spec = _fault_spec()
    if spec is None:
        return False
    want_point, want_scope, nth = spec
    if want_point != point:
        return False
    if want_scope is not None and collection is not None and want_scope != collection:
        return False
    key = f"{want_point}@{want_scope or '*'}"
    _fault_hits[key] = _fault_hits.get(key, 0) + 1
    return _fault_hits[key] == nth


def maybe_fault(point: str, collection: str | None = None) -> None:
    """Hard-exit at an armed crash point — a ``kill -9`` landing here."""
    if fault_armed(point, collection):
        os._exit(FAULT_EXIT_CODE)


# -- record codec -----------------------------------------------------------------


def encode_record(record: Mapping[str, Any]) -> bytes:
    """One length-prefixed, checksummed record: header + JSON payload."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), crc32c(payload)) + payload


def decode_records(
    buffer: bytes, start: int = 0
) -> tuple[list[dict[str, Any]], int, bool]:
    """Replay records from ``buffer[start:]``.

    Returns ``(records, valid_end, torn)``: the decoded records, the byte
    offset just past the last valid record, and whether trailing bytes
    were rejected (short header/payload, bad length, checksum mismatch,
    or undecodable JSON).  Recovery truncates the file to ``valid_end``;
    readers racing a live writer simply retry from it later — an
    in-flight append looks exactly like a torn tail until it completes.
    """
    records: list[dict[str, Any]] = []
    offset = start
    end = len(buffer)
    while True:
        if offset + HEADER_SIZE > end:
            break
        length, checksum = _HEADER.unpack_from(buffer, offset)
        if length > MAX_RECORD_BYTES:
            break
        body_end = offset + HEADER_SIZE + length
        if body_end > end:
            break
        payload = buffer[offset + HEADER_SIZE:body_end]
        if crc32c(payload) != checksum:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = body_end
    return records, offset, offset < end


def verify_log(path: str | Path) -> dict[str, Any]:
    """Offline checksum walk of one log file (``repro store verify``)."""
    data = Path(path).read_bytes()
    records, valid_end, torn = decode_records(data)
    return {
        "path": str(path),
        "records": len(records),
        "total_bytes": len(data),
        "valid_bytes": valid_end,
        "torn_bytes": len(data) - valid_end,
        "torn": torn,
    }


# -- one collection's log ---------------------------------------------------------


class CollectionLog:
    """The append fd + replay cursor for one collection's log file.

    The owning :class:`~repro.store.database.Database` serializes access:
    appends and truncation happen only inside its cross-process exclusive
    section; tail reads may race a live writer and must treat a torn tail
    as "not yet readable" rather than corruption (see
    :func:`decode_records`).
    """

    def __init__(self, collection_name: str, path: Path) -> None:
        self.collection_name = collection_name
        self.path = Path(path)
        self._fd: int | None = None
        #: Bytes of this file already applied to the in-memory collection.
        self.applied_offset = 0
        #: Records seen (replayed + appended) since open/rebuild — the
        #: compaction trigger compares this against the live document count.
        self.records = 0
        self.compactions = 0
        self.dirty = False
        self._open_fd()

    def _open_fd(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
        )

    @property
    def fd(self) -> int:
        assert self._fd is not None
        return self._fd

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- identity / size -------------------------------------------------------

    def stat(self) -> os.stat_result | None:
        try:
            return os.stat(self.path)
        except FileNotFoundError:
            return None

    def inode_changed(self, stat: os.stat_result) -> bool:
        """True when ``path`` now names a different file than our fd (a
        peer's compaction swapped a fresh segment in)."""
        return stat.st_ino != os.fstat(self.fd).st_ino

    def reopen(self) -> None:
        """Re-point at the current file and reset the replay cursor."""
        self.close()
        self._open_fd()
        self.applied_offset = 0
        self.records = 0
        self.dirty = False

    def adopt_segment(self, size: int, records: int) -> None:
        """Switch to a freshly written compacted segment of known content.

        The writer just produced the segment from the in-memory state, so
        nothing needs replaying — the cursor jumps straight to its end.
        """
        self.close()
        self._open_fd()
        self.applied_offset = size
        self.records = records
        self.compactions += 1
        self.dirty = False

    # -- writes ----------------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> int:
        """Append one record; returns its encoded size.

        The write is a single ``O_APPEND`` ``write(2)``; durability comes
        from :meth:`sync` before the exclusive section releases.  The
        ``mid-append`` crash point writes *half* the record and dies —
        producing the torn tail recovery must truncate.
        """
        data = encode_record(record)
        if fault_armed("mid-append", self.collection_name):
            os.write(self.fd, data[: max(1, len(data) // 2)])
            os._exit(FAULT_EXIT_CODE)
        started = time.perf_counter()
        os.write(self.fd, data)
        _APPEND_SECONDS.observe(
            time.perf_counter() - started, self.collection_name
        )
        self.applied_offset += len(data)
        self.records += 1
        self.dirty = True
        return len(data)

    def sync(self) -> None:
        """fsync pending appends (the ``pre-fsync`` crash point)."""
        if not self.dirty:
            return
        maybe_fault("pre-fsync", self.collection_name)
        started = time.perf_counter()
        os.fsync(self.fd)
        _FSYNC_SECONDS.observe(
            time.perf_counter() - started, self.collection_name
        )
        self.dirty = False

    def truncate_to(self, offset: int) -> None:
        """Drop a torn tail (exclusive section only — no live writers)."""
        os.ftruncate(self.fd, offset)
        self.applied_offset = min(self.applied_offset, offset)

    # -- reads -----------------------------------------------------------------

    def read_tail(self, size: int) -> tuple[list[dict[str, Any]], int, bool]:
        """Decode records between the replay cursor and ``size``.

        Returns ``(records, valid_end, torn)``; the caller advances
        ``applied_offset`` after applying the records.
        """
        length = size - self.applied_offset
        if length <= 0:
            return [], self.applied_offset, False
        data = os.pread(self.fd, length, self.applied_offset)
        records, end, torn = decode_records(data)
        return records, self.applied_offset + end, torn
