"""Embedded document store — the MongoDB substitute (see DESIGN.md).

Bound to a path it runs the crash-safe WAL engine by default: every
mutation appends one checksummed, fsync'd record to a per-collection
append-only log under ``<path>.wal/`` (see :mod:`repro.store.wal` and the
"Store engine" section of DESIGN.md).
"""

from .aggregate import aggregate
from .collection import Collection
from .compaction import CompactionThread
from .database import Database
from .index import HashIndex, SortedIndex
from .query import QueryError, compile_query, matches
from .wal import crc32c, verify_log

__all__ = [
    "Collection",
    "CompactionThread",
    "Database",
    "HashIndex",
    "QueryError",
    "SortedIndex",
    "aggregate",
    "compile_query",
    "crc32c",
    "matches",
    "verify_log",
]
