"""Embedded document store — the MongoDB substitute (see DESIGN.md)."""

from .aggregate import aggregate
from .collection import Collection
from .database import Database
from .index import HashIndex, SortedIndex
from .query import QueryError, compile_query, matches

__all__ = [
    "Collection",
    "Database",
    "HashIndex",
    "QueryError",
    "SortedIndex",
    "aggregate",
    "compile_query",
    "matches",
]
