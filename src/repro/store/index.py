"""Secondary indexes for the document store.

Two index kinds, mirroring what the system actually queries:

* :class:`HashIndex` — exact-match lookup on one dotted field path.  Used by
  the cache (lookup by parameter-hash) and by dataset-name queries.
* :class:`SortedIndex` — order-preserving index supporting range scans
  (``$gt``/``$lt`` style), used by support-ordered CAP queries.

Indexes observe inserts/removes through the collection; they never own the
documents.  Values that are missing or unorderable simply stay out of the
index — queries fall back to a scan for those documents (the collection
handles that).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Mapping

from .query import MISSING as _MISSING
from .query import get_path

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """Exact-match index: field value → set of document ids."""

    def __init__(self, path: str) -> None:
        if not path:
            raise ValueError("index path must be non-empty")
        self.path = path
        self._buckets: dict[Any, set[int]] = {}
        self._indexed: dict[int, Any] = {}

    def _key_for(self, document: Mapping[str, Any]) -> Any:
        value = get_path(document, self.path)
        if value is _MISSING or value is None:
            return _MISSING
        try:
            hash(value)
        except TypeError:
            return _MISSING
        return value

    def insert(self, doc_id: int, document: Mapping[str, Any]) -> None:
        key = self._key_for(document)
        if key is _MISSING:
            return
        self._buckets.setdefault(key, set()).add(doc_id)
        self._indexed[doc_id] = key

    def remove(self, doc_id: int) -> None:
        key = self._indexed.pop(doc_id, _MISSING)
        if key is _MISSING:
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> set[int]:
        """Document ids whose indexed field equals ``value``."""
        try:
            hash(value)
        except TypeError:
            return set()
        return set(self._buckets.get(value, ()))

    def covers(self, doc_id: int) -> bool:
        """Whether the document's field was indexable at insert time."""
        return doc_id in self._indexed

    def __len__(self) -> int:
        return len(self._indexed)


class SortedIndex:
    """Order-preserving index supporting range queries on one field."""

    def __init__(self, path: str) -> None:
        if not path:
            raise ValueError("index path must be non-empty")
        self.path = path
        self._entries: list[tuple[Any, int]] = []  # sorted by (value, doc_id)
        self._indexed: dict[int, Any] = {}

    def insert(self, doc_id: int, document: Mapping[str, Any]) -> None:
        value = get_path(document, self.path)
        if value is _MISSING or value is None:
            return
        try:
            bisect.insort(self._entries, (value, doc_id))
        except TypeError:
            return
        self._indexed[doc_id] = value

    def remove(self, doc_id: int) -> None:
        value = self._indexed.pop(doc_id, _MISSING)
        if value is _MISSING:
            return
        pos = bisect.bisect_left(self._entries, (value, doc_id))
        if pos < len(self._entries) and self._entries[pos] == (value, doc_id):
            self._entries.pop(pos)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Document ids with indexed value in the given (optional) bounds."""
        entries = self._entries
        if low is None:
            start = 0
        else:
            key = (low, -1) if include_low else (low, float("inf"))
            try:
                start = bisect.bisect_left(entries, key)
            except TypeError:
                start = 0
        for value, doc_id in entries[start:]:
            if high is not None:
                try:
                    if value > high or (value == high and not include_high):
                        break
                except TypeError:
                    continue
            if low is not None and not include_low:
                try:
                    if value == low:
                        continue
                except TypeError:
                    continue
            yield doc_id

    def covers(self, doc_id: int) -> bool:
        return doc_id in self._indexed

    def __len__(self) -> int:
        return len(self._indexed)
