"""Unit tests for pattern stability analysis."""

from __future__ import annotations

import pytest

from repro.analysis.stability import (
    core_patterns,
    mine_settings,
    pattern_overlap,
    stability_matrix,
)
from repro.core.miner import MiningResult
from repro.core.types import CAP


def cap(ids, support=5):
    return CAP(
        sensor_ids=frozenset(ids), attributes=frozenset({"x", "y"}), support=support
    )


class TestPatternOverlap:
    def test_identical(self):
        caps = [cap({"a", "b"}), cap({"c", "d"})]
        assert pattern_overlap(caps, caps) == 1.0

    def test_disjoint(self):
        assert pattern_overlap([cap({"a", "b"})], [cap({"c", "d"})]) == 0.0

    def test_partial(self):
        a = [cap({"a", "b"}), cap({"c", "d"})]
        b = [cap({"a", "b"}), cap({"e", "f"})]
        assert pattern_overlap(a, b) == pytest.approx(1.0 / 3.0)

    def test_both_empty_is_agreement(self):
        assert pattern_overlap([], []) == 1.0

    def test_one_empty(self):
        assert pattern_overlap([cap({"a", "b"})], []) == 0.0

    def test_support_is_ignored_for_identity(self):
        assert pattern_overlap([cap({"a", "b"}, 5)], [cap({"a", "b"}, 99)]) == 1.0


class TestMineSettings:
    def test_one_result_per_setting(self, tiny_dataset, tiny_params):
        settings = [tiny_params, tiny_params.with_updates(min_support=3)]
        results = mine_settings(tiny_dataset, settings)
        assert len(results) == 2
        assert results[0].parameters == settings[0]

    def test_empty_settings_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            mine_settings(tiny_dataset, [])


class TestStabilityMatrix:
    def _result(self, caps):
        from repro.core.parameters import MiningParameters

        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        return MiningResult("d", params, caps=list(caps))

    def test_diagonal_ones_symmetric(self):
        results = [
            self._result([cap({"a", "b"})]),
            self._result([cap({"a", "b"}), cap({"c", "d"})]),
            self._result([]),
        ]
        matrix = stability_matrix(results)
        assert all(matrix[i][i] == 1.0 for i in range(3))
        assert matrix[0][1] == matrix[1][0] == 0.5
        assert matrix[0][2] == 0.0

    def test_real_sweep_neighbours_overlap_more(self, tiny_dataset, tiny_params):
        settings = [
            tiny_params.with_updates(min_support=1),
            tiny_params.with_updates(min_support=2),
            tiny_params.with_updates(min_support=3),
        ]
        matrix = stability_matrix(mine_settings(tiny_dataset, settings))
        # ψ=1 and ψ=2 both keep {a,b} and {c,d}; ψ=3 keeps only {a,b}.
        assert matrix[0][1] == 1.0
        assert matrix[1][2] == 0.5


class TestCorePatterns:
    def test_intersection_across_settings(self, tiny_dataset, tiny_params):
        results = mine_settings(
            tiny_dataset,
            [tiny_params, tiny_params.with_updates(min_support=3)],
        )
        core = core_patterns(results)
        assert [c.key() for c in core] == [("a", "b")]
        # Supports come from the first setting's result.
        assert core[0].support == 3

    def test_empty_results_list(self):
        assert core_patterns([]) == []

    def test_no_common_patterns(self):
        from repro.core.parameters import MiningParameters

        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        a = MiningResult("d", params, caps=[cap({"a", "b"})])
        b = MiningResult("d", params, caps=[cap({"c", "d"})])
        assert core_patterns([a, b]) == []
