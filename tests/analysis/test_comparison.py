"""Unit tests for before/after comparison (COVID-19, Figure 4)."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.analysis.comparison import (
    attribute_level_shift,
    compare_periods,
)
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_covid19

LOCKDOWN = datetime(2020, 1, 23)


@pytest.fixture(scope="module")
def comparison():
    ds = generate_covid19(seed=0)
    return compare_periods(ds, LOCKDOWN, recommended_parameters("covid19"))


class TestComparePeriods:
    def test_halves_named(self, comparison):
        assert comparison.before.dataset_name.endswith(":before")
        assert comparison.after.dataset_name.endswith(":after")

    def test_patterns_change(self, comparison):
        assert comparison.before.num_caps != comparison.after.num_caps
        assert comparison.vanished or comparison.appeared

    def test_diff_partitions_before(self, comparison):
        assert len(comparison.vanished) + len(comparison.survived) == comparison.before.num_caps

    def test_traffic_patterns_vanish(self, comparison):
        vanished_attrs = set()
        for cap in comparison.vanished:
            vanished_attrs |= cap.attributes
        assert "no2" in vanished_attrs or "co" in vanished_attrs

    def test_level_shifts_direction(self, comparison):
        shifts = comparison.level_shifts()
        # Traffic pollutants drop after lockdown by construction.
        assert shifts["no2"] < 0
        assert shifts["pm10"] < 0

    def test_summary_shape(self, comparison):
        summary = comparison.summary()
        assert summary["caps_before"] == comparison.before.num_caps
        assert summary["split_at"] == LOCKDOWN.isoformat()
        assert isinstance(summary["level_shifts"], dict)

    def test_split_outside_period_rejected(self):
        ds = generate_covid19(seed=0)
        with pytest.raises(ValueError, match="outside"):
            compare_periods(ds, datetime(2021, 1, 1), recommended_parameters("covid19"))

    def test_survived_keys_in_both(self, comparison):
        after_keys = {cap.key() for cap in comparison.after.caps}
        for cap in comparison.survived:
            assert cap.key() in after_keys


class TestAttributeLevels:
    def test_levels_cover_attributes(self):
        ds = generate_covid19(seed=0)
        levels = attribute_level_shift(ds)
        assert set(levels) == set(ds.attributes)

    def test_levels_are_means(self, tiny_dataset):
        levels = attribute_level_shift(tiny_dataset)
        import numpy as np

        expected = float(np.nanmean(tiny_dataset.values("d")))
        assert levels["humidity"] == pytest.approx(expected)
