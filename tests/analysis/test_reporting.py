"""Unit tests for Markdown result summaries."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import caps_to_table, result_to_markdown
from repro.core.miner import MiningResult, MiscelaMiner
from repro.core.types import CAP


@pytest.fixture
def result(tiny_dataset, tiny_params):
    return MiscelaMiner(tiny_params).mine(tiny_dataset)


class TestCapsToTable:
    def test_markdown_table_shape(self, result):
        table = caps_to_table(result.caps)
        lines = table.splitlines()
        assert lines[0].startswith("| support |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(result.caps)

    def test_limit(self, result):
        table = caps_to_table(result.caps, limit=1)
        assert len(table.splitlines()) == 3

    def test_bad_limit(self, result):
        with pytest.raises(ValueError):
            caps_to_table(result.caps, limit=0)

    def test_delays_column(self, tiny_params):
        cap = CAP(
            sensor_ids=frozenset({"a", "b"}),
            attributes=frozenset({"x", "y"}),
            support=2,
            evolving_indices=(1, 2),
            delays={"a": 0, "b": 3},
        )
        table = caps_to_table([cap])
        assert "b+3" in table

    def test_empty(self):
        table = caps_to_table([])
        assert len(table.splitlines()) == 2  # header + separator only


class TestResultToMarkdown:
    def test_document_structure(self, tiny_dataset, result):
        md = result_to_markdown(tiny_dataset, result)
        assert md.startswith("# CAP mining report — tiny")
        assert "## Parameters" in md
        assert "## Findings" in md
        assert "### Correlated attribute pairs" in md
        assert "### Top" in md

    def test_parameters_listed(self, tiny_dataset, result):
        md = result_to_markdown(tiny_dataset, result)
        assert "evolving rate ε" in md
        assert "| min support ψ | 2 |" in md

    def test_attribute_pairs_present(self, tiny_dataset, result):
        md = result_to_markdown(tiny_dataset, result)
        assert "temperature × traffic_volume" in md

    def test_empty_result(self, tiny_dataset, tiny_params):
        empty = MiningResult("tiny", tiny_params, caps=[])
        md = result_to_markdown(tiny_dataset, empty)
        assert "no patterns" in md

    def test_cache_flag_rendered(self, tiny_dataset, tiny_params, result):
        cached = MiningResult(
            "tiny", tiny_params, caps=result.caps, from_cache=True
        )
        md = result_to_markdown(tiny_dataset, cached)
        assert "(from cache)" in md

    def test_axis_report_optional(self, tiny_dataset, result):
        with_axis = result_to_markdown(tiny_dataset, result, include_axis_report=True)
        without = result_to_markdown(tiny_dataset, result, include_axis_report=False)
        assert "geographic axis" not in without
        # tiny_dataset has no pairs >= 1 km inside a CAP, so even with the
        # flag the section may be absent; both must render.
        assert with_axis.startswith("#") and without.startswith("#")
