"""Unit tests for parameter sensitivity sweeps (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    SWEEPABLE_PARAMETERS,
    expected_direction,
    is_monotone,
    sweep,
    SweepPoint,
)
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander


@pytest.fixture(scope="module")
def santander():
    return generate_santander(seed=0, neighbourhoods=6, steps=240)


BASE = recommended_parameters("santander")


class TestSweepMechanics:
    def test_point_per_value(self, santander):
        points = sweep(santander, BASE, "min_support", [5, 10, 20])
        assert [p.value for p in points] == [5.0, 10.0, 20.0]
        assert all(p.parameter == "min_support" for p in points)

    def test_unknown_parameter(self, santander):
        with pytest.raises(KeyError, match="unknown sweep parameter"):
            sweep(santander, BASE, "magic", [1])

    def test_empty_values(self, santander):
        with pytest.raises(ValueError, match="non-empty"):
            sweep(santander, BASE, "min_support", [])

    def test_expected_direction_table(self):
        assert expected_direction("min_support") == "decreasing"
        assert expected_direction("distance_threshold") == "increasing"
        assert set(SWEEPABLE_PARAMETERS) == {
            "evolving_rate", "distance_threshold", "max_attributes", "min_support",
        }


class TestMeasuredDirections:
    """The Section-2.1 sensitivity claims, measured on synthetic Santander."""

    def test_min_support_decreasing(self, santander):
        points = sweep(santander, BASE, "min_support", [2, 5, 10, 20, 40])
        assert is_monotone(points, "decreasing")
        assert points[0].num_caps > points[-1].num_caps

    def test_distance_threshold_increasing(self, santander):
        points = sweep(santander, BASE, "distance_threshold", [0.05, 0.2, 0.5, 1.0])
        assert is_monotone(points, "increasing")

    def test_max_attributes_increasing(self, santander):
        points = sweep(santander, BASE, "max_attributes", [2, 3, 4, 5])
        assert is_monotone(points, "increasing")

    def test_evolving_rate_decreasing_per_definition(self, santander):
        # Implemented per the definition: larger ε → fewer evolving
        # timestamps → fewer CAPs (the paper's prose says the opposite;
        # see DESIGN.md).
        points = sweep(santander, BASE, "evolving_rate", [1.0, 3.0, 6.0, 10.0])
        assert is_monotone(points, "decreasing")
        assert points[0].num_caps > points[-1].num_caps


class TestIsMonotone:
    def _points(self, counts):
        return [SweepPoint("min_support", float(i), c, 0.0) for i, c in enumerate(counts)]

    def test_directions(self):
        assert is_monotone(self._points([5, 4, 4, 1]), "decreasing")
        assert not is_monotone(self._points([5, 6, 4]), "decreasing")
        assert is_monotone(self._points([1, 2, 2]), "increasing")

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            is_monotone(self._points([1]), "sideways")
