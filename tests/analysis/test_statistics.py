"""Unit tests for correlation statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    attribute_pair_counts,
    axis_alignment,
    axis_correlation_report,
    cap_summary,
    co_evolution_rate,
    pairwise_co_evolution,
)
from repro.core.evolving import extract_all_evolving
from repro.core.miner import MiscelaMiner
from repro.core.types import CAP, EvolvingSet, Sensor


def ev(*indices):
    arr = np.array(indices, dtype=np.int64)
    return EvolvingSet(arr, np.ones(len(indices), dtype=np.int8))


class TestCoEvolutionRate:
    def test_identical(self):
        assert co_evolution_rate(ev(1, 2, 3), ev(1, 2, 3)) == 1.0

    def test_disjoint(self):
        assert co_evolution_rate(ev(1, 2), ev(3, 4)) == 0.0

    def test_partial(self):
        assert co_evolution_rate(ev(1, 2, 3), ev(2, 3, 4)) == pytest.approx(0.5)

    def test_both_empty(self):
        assert co_evolution_rate(ev(), ev()) == 0.0


class TestPairwise:
    def test_all_pairs(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        rates = pairwise_co_evolution(tiny_dataset, evolving)
        assert len(rates) == 6  # C(4,2)
        assert rates[("a", "b")] == 1.0
        assert rates[("a", "c")] == 0.0

    def test_subset(self, tiny_dataset, tiny_params):
        evolving = extract_all_evolving(tiny_dataset, tiny_params)
        rates = pairwise_co_evolution(tiny_dataset, evolving, ["a", "b"])
        assert list(rates) == [("a", "b")]


def _cap(ids, attrs, support=5):
    return CAP(sensor_ids=frozenset(ids), attributes=frozenset(attrs), support=support)


class TestAttributePairCounts:
    def test_counts(self):
        caps = [
            _cap({"a", "b"}, {"temperature", "traffic_volume"}),
            _cap({"c", "d"}, {"temperature", "traffic_volume"}),
            _cap({"e", "f"}, {"temperature", "light"}),
        ]
        counts = attribute_pair_counts(caps)
        assert counts[("temperature", "traffic_volume")] == 2
        assert counts[("light", "temperature")] == 1

    def test_triple_attribute_counts_all_pairs(self):
        caps = [_cap({"a", "b", "c"}, {"x", "y", "z"})]
        counts = attribute_pair_counts(caps)
        assert len(counts) == 3

    def test_empty(self):
        assert attribute_pair_counts([]) == {}


class TestCapSummary:
    def test_empty(self):
        summary = cap_summary([])
        assert summary["num_caps"] == 0
        assert summary["max_support"] == 0

    def test_aggregates(self):
        caps = [
            _cap({"a", "b"}, {"x", "y"}, support=10),
            _cap({"a", "b", "c"}, {"x", "y"}, support=4),
        ]
        summary = cap_summary(caps)
        assert summary["num_caps"] == 2
        assert summary["max_support"] == 10
        assert summary["mean_support"] == 7.0
        assert summary["size_histogram"] == {2: 1, 3: 1}


class TestAxis:
    def test_east_west(self):
        a = Sensor("a", "t", 30.0, 110.0)
        b = Sensor("b", "t", 30.01, 111.0)
        assert axis_alignment(a, b) == "east-west"

    def test_north_south(self):
        a = Sensor("a", "t", 30.0, 110.0)
        b = Sensor("b", "t", 31.0, 110.01)
        assert axis_alignment(a, b) == "north-south"

    def test_mixed(self):
        a = Sensor("a", "t", 30.0, 110.0)
        b = Sensor("b", "t", 31.0, 111.2)  # comparable lat/lon separation
        assert axis_alignment(a, b) == "mixed"

    def test_high_latitude_cosine_correction(self):
        # At 70°N one lon degree is ~38 km but one lat degree ~111 km: equal
        # degree offsets are north-south dominated.
        a = Sensor("a", "t", 70.0, 20.0)
        b = Sensor("b", "t", 70.5, 20.5)
        assert axis_alignment(a, b) == "north-south"

    def test_report_on_china(self):
        from repro.data.datasets import recommended_parameters
        from repro.data.synthetic import generate_china6

        ds = generate_china6(seed=0)
        result = MiscelaMiner(recommended_parameters("china6")).mine(ds)
        report = axis_correlation_report(ds, result.caps, min_km=10.0)
        assert set(report) == {"east-west", "north-south", "mixed"}
        assert report["east-west"] > 0

    def test_min_km_excludes_co_located(self, tiny_dataset, tiny_params):
        result = MiscelaMiner(tiny_params).mine(tiny_dataset)
        report = axis_correlation_report(tiny_dataset, result.caps, min_km=500.0)
        assert sum(report.values()) == 0
