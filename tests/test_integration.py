"""End-to-end integration scenarios across the whole stack.

Each test plays one of the paper's demonstration scenarios through multiple
subsystems at once (generators → CSV → upload → store → miner → cache →
viz), the way a user of the released system would.
"""

from __future__ import annotations

import json
from datetime import datetime

import numpy as np
import pytest

from repro import (
    CapReport,
    MiscelaMiner,
    ResultCache,
    TestClient,
    compare_periods,
    create_app,
    generate_covid19,
    generate_santander,
    read_dataset_dir,
    recommended_parameters,
    write_dataset_dir,
)
from repro.store.database import Database


class TestCsvRoundTripThenMine:
    """Generate → CSV dir → reload → mine: identical results both ways."""

    def test_csv_round_trip_preserves_mining_output(self, tmp_path):
        dataset = generate_santander(seed=9, neighbourhoods=4, steps=200)
        params = recommended_parameters("santander")
        direct = MiscelaMiner(params).mine(dataset)

        write_dataset_dir(dataset, tmp_path / "csv")
        reloaded = read_dataset_dir(tmp_path / "csv", name=dataset.name)
        via_csv = MiscelaMiner(params).mine(reloaded)

        assert {(c.key(), c.support) for c in direct.caps} == {
            (c.key(), c.support) for c in via_csv.caps
        }


class TestServerScenario:
    """The full §4 'interactive analysis' demo over the API."""

    def test_attendee_session(self, tmp_path):
        dataset = generate_santander(seed=9, neighbourhoods=4, steps=240)
        params = recommended_parameters("santander")
        app = create_app(Database(tmp_path / "store.json"))
        client = TestClient(app)

        # 1. Upload through the chunked protocol.
        assert client.upload_dataset(dataset).status == 201

        # 2. First parameter setting.
        r1 = client.post("/mine", json_body={
            "dataset": dataset.name, "parameters": params.to_document(),
        })
        assert r1.status == 200 and r1.json()["num_caps"] > 0

        # 3. "Users can easily change parameters": a looser ψ.
        loose = params.with_updates(min_support=5)
        r2 = client.post("/mine", json_body={
            "dataset": dataset.name, "parameters": loose.to_document(),
        })
        assert r2.json()["num_caps"] >= r1.json()["num_caps"]

        # 4. Repeating the first setting is served from cache.
        r3 = client.post("/mine", json_body={
            "dataset": dataset.name, "parameters": params.to_document(),
        })
        assert r3.json()["from_cache"]
        assert r3.json()["caps"] == r1.json()["caps"]

        # 5. Click a sensor, get its correlated sensors, view both charts.
        probe = r1.json()["caps"][0]["sensors"][0]
        corr = client.get(f"/caps/{dataset.name}/sensors/{probe}")
        partners = list(corr.json()["correlated"])
        assert partners
        chart = client.get(
            f"/viz/{dataset.name}/timeseries?sensors={probe},{partners[0]}"
        )
        assert chart.status == 200 and b"<svg" in chart.body
        highlighted_map = client.get(f"/viz/{dataset.name}/map?highlight={probe}")
        assert highlighted_map.status == 200

        # 6. Both cached settings are listed.
        listing = client.get(f"/caps/{dataset.name}").json()
        assert len(listing["cached_results"]) == 2


class TestCovidScenarioEndToEnd:
    def test_figure4_report_files(self, tmp_path):
        dataset = generate_covid19(seed=4)
        params = recommended_parameters("covid19")
        comparison = compare_periods(dataset, datetime(2020, 1, 23), params)
        assert comparison.before.num_caps > comparison.after.num_caps

        before_ds = dataset.slice_time(
            dataset.timeline[0], datetime(2020, 1, 23), name="b"
        )
        report = CapReport(before_ds, comparison.before, max_caps=3)
        path = report.save_html(tmp_path / "before.html")
        html = path.read_text()
        assert "(B) map, CAP highlighted" in html
        # All sensors in the report's maps exist in the sliced dataset.
        for cap in report.caps:
            for sid in cap.sensor_ids:
                assert sid in before_ds


class TestCacheMinerEquivalence:
    """mine_cached must be a pure memoisation of the miner."""

    def test_cached_pipeline_equals_direct(self):
        dataset = generate_santander(seed=9, neighbourhoods=3, steps=200)
        params = recommended_parameters("santander")
        cache = ResultCache(Database())
        direct = MiscelaMiner(params).mine(dataset)
        first = cache.mine_cached(dataset, params)
        replay = cache.mine_cached(dataset, params)
        for result in (first, replay):
            assert [(c.key(), c.support) for c in result.caps] == [
                (c.key(), c.support) for c in direct.caps
            ]


class TestJsonInterchange:
    """The JSON CAP format survives a full dump/reload cycle (Section 3.4)."""

    def test_caps_round_trip_via_json(self, tmp_path):
        from repro.core.types import CAP
        from repro.viz.export import caps_to_json

        dataset = generate_santander(seed=9, neighbourhoods=3, steps=200)
        result = MiscelaMiner(recommended_parameters("santander")).mine(dataset)
        path = tmp_path / "caps.json"
        path.write_text(caps_to_json(result.caps))
        restored = [CAP.from_document(doc) for doc in json.loads(path.read_text())]
        assert {(c.key(), c.support) for c in restored} == {
            (c.key(), c.support) for c in result.caps
        }


class TestMissingDataResilience:
    """The pipeline tolerates heavy NaN rates end to end."""

    @pytest.mark.parametrize("missing_rate", [0.0, 0.1, 0.3])
    def test_mining_survives_missing_data(self, missing_rate):
        dataset = generate_santander(
            seed=9, neighbourhoods=3, steps=240, missing_rate=missing_rate
        )
        result = MiscelaMiner(recommended_parameters("santander")).mine(dataset)
        # Supports shrink with missing data but the pipeline stays sound:
        # every reported co-evolution is backed by finite values.
        for cap in result.caps:
            for sid in cap.sensor_ids:
                values = dataset.values(sid)
                for index in cap.evolving_indices:
                    assert np.isfinite(values[index])
                    assert np.isfinite(values[index - 1])
