"""Stream retention: bounded feeds, horizon cursors, and windowed replay.

The acceptance criteria from the issue, layer by layer:

* **horizon math + feed-size bound** — after a fold ``cap_events`` holds
  at most ``retention_seqs`` documents and the snapshot's
  ``first_live_seq`` is authoritative;
* **cursor contract** — a cursor exactly at ``first_live_seq - 1``
  replays a byte-identical live tail; one below it answers a structured
  ``410 cursor_expired`` carrying ``first_live_seq`` and a usable
  snapshot link; an expired SSE ``Last-Event-ID`` bootstraps from one
  ``event: snapshot`` frame instead of erroring;
* **windowed replay** (property, both evolving backends) — a session
  rebuilt after observation trimming replays only post-watermark epochs
  yet keeps mining byte-identical CAP documents and events;
* **crash convergence** — ``kill -9`` (exit 72 via ``REPRO_STREAM_FAULT``)
  at each point of the three-step fold leaves a state the restarted
  sweep converges from (see the matrix at the bottom).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from datetime import datetime

import pytest

from repro.cache.keys import cache_key
from repro.core.parameters import MiningParameters
from repro.store.database import Database
from repro.stream import (
    ALERTS,
    CAP_EVENTS,
    OBSERVATIONS,
    RetentionError,
    StreamSession,
    append_batch,
    compact_feed,
    compact_observations,
    current_epoch,
    feed_snapshot,
    first_live_seq,
    get_retention,
    read_events,
    set_retention,
    stream_state,
    sweep_retention,
    validate_rule,
)
from repro.stream.retention import FAULT_EXIT_CODE, FAULT_POINTS
from tests.jobs.harness import SRC_DIR, ServerProcess, upload_dataset
from tests.stream.test_stream_e2e import PARAMS, BatchFeeder, append, poll_events


def make_params(backend: str = "bitset") -> MiningParameters:
    return MiningParameters(
        evolving_rate=1.0,
        distance_threshold=2.0,
        max_attributes=3,
        min_support=3,
        evolving_backend=backend,
    )


def next_batch(dataset, database, levels, jump_sensors, length=3, jump=5.0):
    """The next on-grid batch (same engineering as the unit suite)."""
    _, last = current_epoch(database, dataset.name)
    interval = dataset.timeline[1] - dataset.timeline[0]
    start = (
        datetime.fromisoformat(last) if last else dataset.timeline[-1]
    ) + interval
    timeline = [(start + i * interval).isoformat() for i in range(length)]
    series = {}
    for sid in dataset.sensor_ids:
        row = []
        for i in range(length):
            if i == 1 and sid in jump_sensors:
                levels[sid] += jump
            row.append(levels[sid])
        series[sid] = row
    return {"timeline": timeline, "series": series}


def start_levels(dataset) -> dict[str, float]:
    return {sid: float(dataset.values(sid)[-1]) for sid in dataset.sensor_ids}


#: Epoch jump scripts: each entry produces exactly one event (the flat set()
#: produces none), so seq positions are known by construction.
JUMPS = [{"a", "b"}, {"c", "d"}, set(), {"a", "b"}, {"c", "d"}, {"a", "b"}]


def drive(db, dataset, params, epochs, levels=None, session=None):
    """Run ``epochs`` jump scripts through one StreamSession."""
    key = cache_key(dataset.name, params)
    session = session or StreamSession(db, dataset, params, key)
    levels = levels if levels is not None else start_levels(dataset)
    start = session.mined_epoch + 1
    for offset, jumps in enumerate(epochs):
        append_batch(db, dataset, next_batch(dataset, db, levels, jumps))
        session.process_epoch(start + offset)
    return session, levels


def public_events(db, dataset_name):
    return [
        {k: v for k, v in row.items() if k != "_id"}
        for row in db.collection(CAP_EVENTS).find(
            {"dataset": dataset_name}, sort="seq"
        )
    ]


class TestRetentionConfig:
    def test_defaults_off_and_server_default_merges(self):
        db = Database()
        assert get_retention(db, "tiny") == {
            "retention_seqs": None, "retention_seconds": None,
        }
        merged = get_retention(db, "tiny", default={"retention_seqs": 9})
        assert merged["retention_seqs"] == 9

    def test_patch_merge_semantics(self):
        db = Database()
        set_retention(db, "tiny", {"retention_seqs": 5})
        set_retention(db, "tiny", {"retention_seconds": 60.0})
        config = get_retention(db, "tiny")
        assert config["retention_seqs"] == 5  # first key survived the second PATCH
        assert config["retention_seconds"] == 60.0
        set_retention(db, "tiny", {"retention_seqs": None})  # null clears
        assert get_retention(db, "tiny")["retention_seqs"] is None

    def test_dataset_config_overrides_server_default(self):
        db = Database()
        set_retention(db, "tiny", {"retention_seqs": 2})
        assert get_retention(db, "tiny", default={"retention_seqs": 50})[
            "retention_seqs"
        ] == 2

    @pytest.mark.parametrize("payload,match", [
        ("nope", "JSON object"),
        ({"bogus": 1}, "unknown retention keys"),
        ({"retention_seqs": 0}, "positive integer"),
        ({"retention_seqs": True}, "positive integer"),
        ({"retention_seqs": 2.5}, "positive integer"),
        ({"retention_seconds": -1}, "positive number"),
        ({"retention_seconds": True}, "positive number"),
    ])
    def test_invalid_configs_rejected(self, payload, match):
        with pytest.raises(RetentionError, match=match):
            set_retention(Database(), "tiny", payload)


class TestCompactFeed:
    def test_fold_bounds_feed_and_is_idempotent(self, tiny_dataset):
        db = Database()
        params = make_params()
        drive(db, tiny_dataset, params, JUMPS)
        assert len(public_events(db, "tiny")) == 5
        config = set_retention(db, "tiny", {"retention_seqs": 2})
        report = compact_feed(db, "tiny", config)
        assert report["compacted"] is True
        # The feed-size assertion: at most retention_seqs live events.
        live = public_events(db, "tiny")
        assert len(live) <= 2
        assert [e["seq"] for e in live] == [4, 5]
        assert first_live_seq(db, "tiny") == 4
        state = stream_state(db, "tiny")
        assert state["horizon_seq"] == 4
        # Idempotent: nothing left to fold at the same horizon.
        again = compact_feed(db, "tiny", config)
        assert again["compacted"] is False
        assert first_live_seq(db, "tiny") == 4

    def test_snapshot_carries_cap_state_and_invariants(self, tiny_dataset):
        db = Database()
        session, _ = drive(db, tiny_dataset, make_params(), JUMPS)
        compact_feed(db, "tiny", {"retention_seqs": 1})
        snap = feed_snapshot(db, "tiny")
        assert snap["first_live_seq"] == 5
        assert snap["epoch"] == session.mined_epoch
        assert snap["caps"] == session.caps  # the folded CAP state
        # 1 <= horizon_seq <= first_live_seq <= latest_seq + 1
        state = stream_state(db, "tiny")
        latest = int(state["next_seq"]) - 1
        assert 1 <= state["horizon_seq"] <= snap["first_live_seq"] <= latest + 1

    def test_cursor_exactly_at_horizon_replays_identical_tail(self, tiny_dataset):
        db = Database()
        drive(db, tiny_dataset, make_params(), JUMPS)
        before = public_events(db, "tiny")
        compact_feed(db, "tiny", {"retention_seqs": 3})
        first_live = first_live_seq(db, "tiny")
        tail = read_events(db, "tiny", cursor=first_live - 1, limit=100)
        expected = [e for e in before if e["seq"] >= first_live]
        assert json.dumps(tail, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_fold_prunes_alerts_behind_horizon(self, tiny_dataset):
        db = Database()
        db.collection("alert_rules").insert_one(
            validate_rule("tiny", {
                "rule_id": "pair",
                "levels": [{"min_sensors": 2, "severity": "warning"}],
            })
        )
        drive(db, tiny_dataset, make_params(), JUMPS)
        assert len(db.collection(ALERTS).find({"dataset": "tiny"})) == 5
        report = compact_feed(db, "tiny", {"retention_seqs": 2})
        assert report["trimmed_alerts"] == 3
        left = db.collection(ALERTS).find({"dataset": "tiny"}, sort="seq")
        assert [row["seq"] for row in left] == [4, 5]

    def test_age_based_horizon(self, tiny_dataset):
        db = Database()
        clock = [1000.0]
        session = StreamSession(
            db, tiny_dataset, make_params(),
            cache_key("tiny", make_params()), clock=lambda: clock[0],
        )
        levels = start_levels(tiny_dataset)
        for i, jumps in enumerate(JUMPS, start=1):
            append_batch(db, tiny_dataset,
                         next_batch(tiny_dataset, db, levels, jumps))
            session.process_epoch(i)
            clock[0] += 100.0
        # Now 1600; keep events created within the last 250s -> the two
        # newest (created at 1400 and 1500) stay, the rest fold.
        report = compact_feed(
            db, "tiny", {"retention_seconds": 250.0}, clock=lambda: clock[0]
        )
        assert report["compacted"] is True
        assert [e["seq"] for e in public_events(db, "tiny")] == [4, 5]

    def test_sweep_skips_datasets_without_retention(self, tiny_dataset):
        db = Database()
        drive(db, tiny_dataset, make_params(), JUMPS[:2])
        assert sweep_retention(db) == []  # opt-in: nothing configured
        set_retention(db, "tiny", {"retention_seqs": 1})
        reports = sweep_retention(db)
        assert any(r["compacted"] for r in reports)
        assert len(public_events(db, "tiny")) <= 1


class TestWindowedReplay:
    @pytest.mark.parametrize("backend", ["array", "bitset"])
    def test_compacted_session_mines_byte_identical(self, tiny_dataset, backend):
        """The property at the heart of windowed replay: a reference run
        that never compacts and a run that folds + trims mid-stream end
        with byte-identical CAP state and identical live events."""
        params = make_params(backend)

        ref_db = Database()
        ref, _ = drive(ref_db, tiny_dataset, params, JUMPS)
        ref_events = public_events(ref_db, "tiny")

        db = Database()
        _, levels = drive(db, tiny_dataset, params, JUMPS[:4])
        config = set_retention(db, "tiny", {"retention_seqs": 1})
        assert compact_feed(db, "tiny", config)["compacted"] is True
        assert compact_observations(db, "tiny", config)["compacted"] is True
        assert db.collection(OBSERVATIONS).find({"dataset": "tiny"}) == []

        # Rebuild: the watermark checkpoint replaces the trimmed log.
        resumed = StreamSession(db, tiny_dataset, params,
                                cache_key("tiny", params))
        assert resumed.replayed_epochs == 0  # nothing past the watermark
        assert resumed.mined_epoch == 4
        drive(db, tiny_dataset, params, JUMPS[4:], levels=levels,
              session=resumed)

        assert json.dumps(resumed.caps, sort_keys=True) == json.dumps(
            ref.caps, sort_keys=True
        )
        got = public_events(db, "tiny")
        expected = [e for e in ref_events if e["seq"] >= got[0]["seq"]]
        for mine, reference in zip(got, expected):
            mine = {k: v for k, v in mine.items() if k != "created_at"}
            reference = {k: v for k, v in reference.items()
                         if k != "created_at"}
            assert json.dumps(mine, sort_keys=True) == json.dumps(
                reference, sort_keys=True
            )
        assert len(got) == len(expected)

    def test_replay_window_covers_epochs_past_watermark_only(self, tiny_dataset):
        """Trim mid-history, keep later batches: the rebuild replays
        exactly the post-watermark epochs it still has batches for."""
        params = make_params()
        db = Database()
        session, levels = drive(db, tiny_dataset, params, JUMPS[:3])
        watermark_epoch = session.mined_epoch
        config = set_retention(db, "tiny", {"retention_seqs": 100})
        compact_observations(db, "tiny", config)
        # Two more epochs appended but only *ingested* (not mined) after
        # the trim, as if the resident worker died mid-stream.
        for jumps in JUMPS[3:5]:
            append_batch(db, tiny_dataset,
                         next_batch(tiny_dataset, db, levels, jumps))
        resumed = StreamSession(db, tiny_dataset, params,
                                cache_key("tiny", params))
        assert resumed.replayed_epochs == 0  # mined_epoch == watermark epoch
        assert resumed.mined_epoch == watermark_epoch
        resumed.process_epoch(4)
        resumed.process_epoch(5)
        assert [e["epoch"] for e in public_events(db, "tiny")] == [1, 2, 4, 5]

    def test_observation_trim_respects_age_gate(self, tiny_dataset):
        params = make_params()
        db = Database()
        clock = [1000.0]
        session = StreamSession(db, tiny_dataset, params,
                                cache_key("tiny", params),
                                clock=lambda: clock[0])
        levels = start_levels(tiny_dataset)
        for i, jumps in enumerate(JUMPS[:4], start=1):
            append_batch(db, tiny_dataset,
                         next_batch(tiny_dataset, db, levels, jumps),
                         clock=lambda: clock[0])
            session.process_epoch(i)
            clock[0] += 100.0
        # Watermark covers epoch 4, but the age gate (250s at t=1400)
        # only retires batches appended before 1150 -> epochs 1..2.
        report = compact_observations(
            db, "tiny", {"retention_seconds": 250.0}, clock=lambda: clock[0]
        )
        assert report["compacted"] is True and report["compacted_epoch"] == 2
        left = sorted(r["epoch"] for r in
                      db.collection(OBSERVATIONS).find({"dataset": "tiny"}))
        assert left == [3, 4]


class TestRetentionHTTP:
    """The cursor contract over the v1 API (in-process TestClient)."""

    @pytest.fixture
    def served(self, tiny_dataset):
        from repro.server.app import TestClient, create_app

        app = create_app(job_workers=1)
        client = TestClient(app)
        assert client.upload_dataset(tiny_dataset).status == 201
        params = make_params()
        # Drive the stream directly against the app's database — the
        # HTTP layer under test is the feed, not the job runner.
        drive(app.state.database, tiny_dataset, params, JUMPS)
        yield app, client
        app.close()

    def fold(self, app, keep=2):
        config = set_retention(app.state.database, "tiny",
                               {"retention_seqs": keep})
        report = compact_feed(app.state.database, "tiny", config)
        assert report["compacted"] is True
        return report["first_live_seq"]

    def test_expired_cursor_answers_410_envelope(self, served):
        app, client = served
        first_live = self.fold(app)
        response = client.get("/api/v1/datasets/tiny/events?cursor=0")
        assert response.status == 410
        error = response.json()["error"]
        assert error["code"] == "cursor_expired"
        detail = error["detail"]
        assert detail["first_live_seq"] == first_live
        assert detail["cursor"] == 0
        # The recovery link actually resolves.
        snapshot = client.get(detail["links"]["snapshot"])
        assert snapshot.status == 200
        assert snapshot.json()["first_live_seq"] == first_live

    def test_cursor_at_horizon_replays_tail(self, served):
        app, client = served
        before = client.get("/api/v1/datasets/tiny/events?cursor=0").json()
        first_live = self.fold(app)
        page = client.get(
            f"/api/v1/datasets/tiny/events?cursor={first_live - 1}"
        )
        assert page.status == 200
        body = page.json()
        assert body["first_live_seq"] == first_live
        expected = [e for e in before["events"] if e["seq"] >= first_live]
        assert json.dumps(body["events"], sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        # Cursors >= the horizon keep answering 200 (here: the tail's end).
        empty = client.get(
            f"/api/v1/datasets/tiny/events?cursor={body['latest_seq']}"
        )
        assert empty.status == 200 and empty.json()["events"] == []

    def test_snapshot_404_before_any_fold(self, served):
        _, client = served
        response = client.get("/api/v1/datasets/tiny/events/snapshot")
        assert response.status == 404
        assert response.json()["error"]["code"] == "no_snapshot"

    def test_sse_expired_last_event_id_bootstraps_from_snapshot(self, served):
        app, client = served
        first_live = self.fold(app)
        response = client.get(
            "/api/v1/datasets/tiny/events/stream",
            headers={"Last-Event-ID": "0"},
        )
        assert response.status == 200
        text = response.body.decode("utf-8")
        frames = [f for f in text.split("\n\n") if f.strip()]
        # Frame one is the snapshot, id'd at first_live - 1 so the
        # standard reconnect contract continues the live tail from it.
        assert frames[0].startswith(f"id: {first_live - 1}\nevent: snapshot\n")
        payload = json.loads(frames[0].split("data: ", 1)[1])
        assert payload["first_live_seq"] == first_live
        assert f"id: {first_live}\n" in text  # live tail follows
        # A live Last-Event-ID stays on the plain path: no snapshot frame.
        live = client.get(
            "/api/v1/datasets/tiny/events/stream",
            headers={"Last-Event-ID": str(first_live - 1)},
        )
        assert b"event: snapshot" not in live.body

    def test_stream_config_roundtrip_and_validation(self, served):
        _, client = served
        got = client.get("/api/v1/datasets/tiny/stream-config")
        assert got.status == 200
        assert got.json()["retention_seqs"] is None
        patched = client.request(
            "PATCH", "/api/v1/datasets/tiny/stream-config",
            json_body={"retention_seqs": 7},
        )
        assert patched.status == 200
        assert patched.json()["effective"]["retention_seqs"] == 7
        assert client.get(
            "/api/v1/datasets/tiny/stream-config"
        ).json()["retention_seqs"] == 7
        bad = client.request(
            "PATCH", "/api/v1/datasets/tiny/stream-config",
            json_body={"retention_seqs": -3},
        )
        assert bad.status == 400
        assert bad.json()["error"]["code"] == "invalid_retention"
        missing = client.request(
            "PATCH", "/api/v1/datasets/unknown/stream-config",
            json_body={"retention_seqs": 1},
        )
        assert missing.status == 404


# -- crash matrix -----------------------------------------------------------------


def converge_and_verify(store, tiny_dataset, feeder, *, expect_seqs):
    """Restart (no fault), let the sweep converge, verify the contract."""
    with ServerProcess(store, lease_seconds=1.0, worker_poll=0.2,
                       stream_retention=2, compact_seconds=0.3) as server:
        deadline = time.monotonic() + 60.0
        page = None
        while time.monotonic() < deadline:
            status, page = server.get_json(
                "/api/v1/datasets/tiny/events?cursor=0"
            )
            if status == 410:
                break
            time.sleep(0.2)
        assert status == 410, (status, page)
        detail = page["error"]["detail"]
        first_live = detail["first_live_seq"]
        assert first_live == expect_seqs[0]

        status, snap = server.get_json(detail["links"]["snapshot"])
        assert status == 200 and snap["first_live_seq"] == first_live

        status, tail = server.get_json(
            f"/api/v1/datasets/tiny/events?cursor={first_live - 1}"
        )
        assert status == 200
        assert [e["seq"] for e in tail["events"]] == expect_seqs

        # The resident miner keeps mining correctly from the folded state
        # (claim-time rebuild adopted the watermark over trimmed batches).
        append(server, "tiny", feeder.batch({"a", "b"}))
        page = poll_events(server, "tiny", expect_seqs[-1], expect=1)
        (event,) = page["events"]
        assert event["seq"] == expect_seqs[-1] + 1
        assert event["cap"]["sensors"] == ["a", "b"]
    return store


@pytest.mark.parametrize("fault_point", FAULT_POINTS)
def test_kill9_during_fold_converges(tmp_path, tiny_dataset, fault_point):
    store = tmp_path / "db.json"
    feeder = BatchFeeder(tiny_dataset)

    # Phase 1 — seed a known feed with retention OFF: four eventful
    # epochs, events seq 1..4 durable before any fold can run.
    with ServerProcess(store, lease_seconds=1.0, worker_poll=0.2) as server:
        upload_dataset(server, tiny_dataset)
        status, job = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": PARAMS, "mode": "streaming"},
        )
        assert status == 202, (status, job)
        for jumps in ({"a", "b"}, {"c", "d"}, {"a", "b"}, {"c", "d"}):
            append(server, "tiny", feeder.batch(jumps))
        poll_events(server, "tiny", 0, expect=4)

    # Phase 2 — retention on (keep newest 2) with the crash point armed:
    # the sweep starts the fold and hard-exits mid-protocol.
    server = ServerProcess(store, lease_seconds=1.0, worker_poll=0.2,
                           stream_retention=2, compact_seconds=0.3,
                           stream_fault=f"{fault_point}@tiny")
    try:
        assert server.wait_exit(timeout=60.0) == FAULT_EXIT_CODE
    finally:
        server.kill()

    # Whatever the crash left behind, the restarted sweep converges to
    # the same bounded feed, and the horizon cursor contract holds.
    converge_and_verify(store, tiny_dataset, feeder, expect_seqs=[3, 4])

    # Offline CLI agrees: an expired cursor resumes from the horizon
    # with an explicit notice, never a silently-short tail.
    env = {"PYTHONPATH": str(SRC_DIR)}
    tail = subprocess.run(
        [sys.executable, "-m", "repro.cli", "stream", "tail", "tiny",
         "--store", str(store), "--cursor", "0"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert tail.returncode == 0, tail.stderr
    assert "retention horizon" in tail.stdout
