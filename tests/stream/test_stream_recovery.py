"""Stream recovery matrix: the resident miner survives kill -9.

The acceptance criterion: after a SIGKILL lands on the process hosting
the streaming job, a fresh process on the same store resumes from the
persisted high-water mark and the feed ends up with no lost and no
duplicated ``cap_events`` — seq stays gap-free and strictly monotone.
"""

from __future__ import annotations

import time

from tests.jobs.harness import ServerProcess, upload_dataset
from tests.stream.test_stream_e2e import (
    PARAMS,
    RULE,
    BatchFeeder,
    append,
    poll_events,
)


def test_stream_job_resumes_after_kill9(tmp_path, tiny_dataset):
    store = tmp_path / "db.json"
    feeder = BatchFeeder(tiny_dataset)

    server = ServerProcess(store, lease_seconds=1.0, worker_poll=0.2,
                           worker_id="first")
    try:
        upload_dataset(server, tiny_dataset)
        status, _ = server.post_json("/api/v1/datasets/tiny/alert-rules",
                                     json_body=RULE)
        assert status == 201
        status, job = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": PARAMS, "mode": "streaming"},
        )
        assert status == 202
        job_id = job["job_id"]

        append(server, "tiny", feeder.batch({"a", "b"}))
        page = poll_events(server, "tiny", 0, expect=1)
        assert [(e["seq"], e["type"]) for e in page["events"]] == [(1, "extended")]
    finally:
        server.kill()  # SIGKILL: no release, no snapshot, lease left lapsed

    survivor = ServerProcess(store, lease_seconds=1.0, worker_poll=0.2,
                             worker_id="second")
    try:
        # The reclaimed session replays epoch 1 from the observation log,
        # then drains the new epoch appended through the new process.
        append(survivor, "tiny", feeder.batch({"c", "d"}))
        page = poll_events(survivor, "tiny", 1, expect=1)
        assert [(e["seq"], e["type"]) for e in page["events"]] == [(2, "new")]
        assert page["events"][0]["cap"]["sensors"] == ["c", "d"]

        # The whole feed: gap-free, strictly monotone, one event per epoch,
        # no duplicate ids — epoch 1 was not re-emitted by the replay.
        status, replay = survivor.get_json("/api/v1/datasets/tiny/events?cursor=0")
        assert status == 200
        events = replay["events"]
        assert [e["seq"] for e in events] == [1, 2]
        assert [e["epoch"] for e in events] == [1, 2]
        assert len({e["event_id"] for e in events}) == 2

        # Alerts fired exactly once per matching event across both lives.
        status, alerts = survivor.get_json("/api/v1/datasets/tiny/alerts")
        assert status == 200
        assert sorted(a["seq"] for a in alerts["alerts"]) == [1, 2]
        assert len({a["alert_id"] for a in alerts["alerts"]}) == 2

        # The resident job itself is alive in the surviving process.
        status, doc = survivor.get_json(f"/api/v1/jobs/{job_id}")
        assert status == 200 and doc["state"] in ("queued", "running")
        assert doc["kind"] == "stream"
    finally:
        survivor.kill()


def test_stream_state_purged_by_reupload(tmp_path, tiny_dataset):
    """A destructive re-upload resets the stream: epoch back to 0, feed
    emptied, but alert rules survive as monitoring intent."""
    store = tmp_path / "db.json"
    with ServerProcess(store, lease_seconds=1.0, worker_poll=0.2) as server:
        upload_dataset(server, tiny_dataset)
        status, _ = server.post_json("/api/v1/datasets/tiny/alert-rules",
                                     json_body=RULE)
        assert status == 201
        status, _ = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": PARAMS, "mode": "streaming"},
        )
        assert status == 202
        feeder = BatchFeeder(tiny_dataset)
        append(server, "tiny", feeder.batch({"a", "b"}))
        poll_events(server, "tiny", 0, expect=1)

        upload_dataset(server, tiny_dataset)  # destructive re-upload

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, page = server.get_json("/api/v1/datasets/tiny/events?cursor=0")
            assert status == 200
            if page["events"] == []:
                break
            time.sleep(0.1)
        assert page["events"] == [] and page["latest_seq"] == 0

        # Fresh stream epoch: the grid continues the *base* dataset again.
        fresh = BatchFeeder(tiny_dataset)
        receipt = append(server, "tiny", fresh.batch(set()))
        assert receipt["epoch"] == 1

        status, listing = server.get_json("/api/v1/datasets/tiny/alert-rules")
        assert status == 200
        assert [r["rule_id"] for r in listing["rules"]] == ["co-move"]
