"""Stream subsystem units: ingestion validation, feed diffing, alert rules,
and the StreamSession's exactly-once persistence contract.

Everything here runs in-process against an in-memory Database; the live
server (`test_stream_e2e.py`) and the kill -9 matrix
(`test_stream_recovery.py`) prove the same rules over real processes.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.cache.keys import cache_key
from repro.core.parameters import MiningParameters
from repro.stream import (
    ALERT_RULES,
    CAP_EVENTS,
    STREAM_STATE,
    BatchError,
    RuleError,
    StreamSession,
    append_batch,
    current_epoch,
    diff_caps,
    evaluate_rules,
    match_level,
    read_events,
    render_sse,
    validate_rule,
)
from repro.stream.feed import event_id
from repro.store.database import Database


def make_params(min_support: int = 3) -> MiningParameters:
    return MiningParameters(
        evolving_rate=1.0,
        distance_threshold=2.0,
        max_attributes=3,
        min_support=min_support,
    )


def next_batch(dataset, database, levels, jump_sensors, length=3, jump=5.0):
    """The next on-grid batch; ``jump_sensors`` step by +jump at slot 1.

    ``levels`` carries each sensor's current value across batches so the
    boundary delta between batches is always zero — only the engineered
    jumps count as evolving timestamps.
    """
    _, last = current_epoch(database, dataset.name)
    interval = dataset.timeline[1] - dataset.timeline[0]
    start = (
        datetime.fromisoformat(last) if last else dataset.timeline[-1]
    ) + interval
    timeline = [(start + i * interval).isoformat() for i in range(length)]
    series = {}
    for sid in dataset.sensor_ids:
        row = []
        for i in range(length):
            if i == 1 and sid in jump_sensors:
                levels[sid] += jump
            row.append(levels[sid])
        series[sid] = row
    return {"timeline": timeline, "series": series}


def start_levels(dataset) -> dict[str, float]:
    return {sid: float(dataset.values(sid)[-1]) for sid in dataset.sensor_ids}


class TestIngestValidation:
    def test_append_bumps_epoch_and_logs_batch(self, tiny_dataset):
        db = Database()
        levels = start_levels(tiny_dataset)
        receipt = append_batch(
            db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"a", "b"})
        )
        assert receipt["epoch"] == 1 and receipt["observations"] == 3
        assert current_epoch(db, "tiny")[0] == 1
        logged = db.collection("observations").find_one({"batch_id": "tiny:000001"})
        assert logged["series"]["a"][1] == levels["a"]

    def test_second_batch_continues_the_first(self, tiny_dataset):
        db = Database()
        levels = start_levels(tiny_dataset)
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, set()))
        receipt = append_batch(
            db, tiny_dataset, next_batch(tiny_dataset, db, levels, set())
        )
        assert receipt["epoch"] == 2

    def test_off_grid_timestamps_rejected(self, tiny_dataset):
        db = Database()
        batch = next_batch(tiny_dataset, db, start_levels(tiny_dataset), set())
        batch["timeline"][0] = batch["timeline"][1]  # gap at the boundary
        with pytest.raises(BatchError, match="sampling grid"):
            append_batch(db, tiny_dataset, batch)

    def test_wrong_sensor_set_rejected(self, tiny_dataset):
        db = Database()
        batch = next_batch(tiny_dataset, db, start_levels(tiny_dataset), set())
        del batch["series"]["a"]
        with pytest.raises(BatchError, match="lacks series"):
            append_batch(db, tiny_dataset, batch)
        batch["series"]["a"] = batch["series"]["b"]
        batch["series"]["zz"] = batch["series"]["b"]
        with pytest.raises(BatchError, match="unknown sensors"):
            append_batch(db, tiny_dataset, batch)

    def test_ragged_and_non_numeric_rows_rejected(self, tiny_dataset):
        db = Database()
        batch = next_batch(tiny_dataset, db, start_levels(tiny_dataset), set())
        batch["series"]["a"] = batch["series"]["a"][:-1]
        with pytest.raises(BatchError, match="3 readings"):
            append_batch(db, tiny_dataset, batch)
        batch = next_batch(tiny_dataset, db, start_levels(tiny_dataset), set())
        batch["series"]["a"][0] = "hot"
        with pytest.raises(BatchError, match="non-numeric"):
            append_batch(db, tiny_dataset, batch)
        # Booleans are not readings either, even though bool is an int.
        batch["series"]["a"][0] = True
        with pytest.raises(BatchError, match="non-numeric"):
            append_batch(db, tiny_dataset, batch)

    def test_null_and_nan_readings_normalise_to_none(self, tiny_dataset):
        db = Database()
        batch = next_batch(tiny_dataset, db, start_levels(tiny_dataset), set())
        batch["series"]["a"][0] = None
        batch["series"]["a"][1] = float("nan")
        append_batch(db, tiny_dataset, batch)
        logged = db.collection("observations").find_one({"batch_id": "tiny:000001"})
        assert logged["series"]["a"][:2] == [None, None]


class TestFeedDiff:
    CAP_AB = {"sensors": ["a", "b"], "attributes": ["temperature", "traffic_volume"],
              "support": 3, "evolving_indices": [3, 7, 12], "delays": {}}
    CAP_CD = {"sensors": ["c", "d"], "attributes": ["humidity", "temperature"],
              "support": 2, "evolving_indices": [5, 9], "delays": {}}

    def test_new_extended_retired_classification(self):
        grown = dict(self.CAP_AB, support=4, evolving_indices=[3, 7, 12, 17])
        deltas = diff_caps([self.CAP_AB], [grown, self.CAP_CD])
        assert [(t, c["sensors"]) for t, c in deltas] == [
            ("new", ["c", "d"]),
            ("extended", ["a", "b"]),
        ]
        deltas = diff_caps([self.CAP_AB, self.CAP_CD], [self.CAP_AB])
        assert [(t, c["sensors"]) for t, c in deltas] == [("retired", ["c", "d"])]

    def test_unchanged_caps_emit_nothing(self):
        assert diff_caps([self.CAP_AB], [dict(self.CAP_AB)]) == []

    def test_event_ids_are_deterministic(self):
        a = event_id("k" * 64, 3, "new", self.CAP_AB)
        b = event_id("k" * 64, 3, "new", dict(self.CAP_AB, support=99))
        assert a == b  # identity, not evolution, addresses the event
        assert a != event_id("k" * 64, 4, "new", self.CAP_AB)

    def test_render_sse_frames(self):
        events = [{"seq": 7, "type": "new", "event_id": "ev-x", "dataset": "tiny",
                   "key": "k", "epoch": 1, "cap": self.CAP_AB, "created_at": 0.0}]
        body = render_sse(events)
        assert "id: 7\n" in body and "event: new\n" in body and "data: {" in body
        assert render_sse([]) == ""


class TestRuleGrammar:
    def test_valid_rule_normalises(self):
        rule = validate_rule("tiny", {
            "rule_id": "co-move",
            "levels": [{"min_sensors": 3, "severity": "critical"},
                       {"min_sensors": 2, "severity": "info"}],
        })
        assert rule["event_types"] == ["extended", "new", "retired"]
        assert [l["min_sensors"] for l in rule["levels"]] == [2, 3]
        assert rule["name"] == "co-move" and rule["dataset"] == "tiny"

    @pytest.mark.parametrize("payload,match", [
        ("nope", "JSON object"),
        ({"levels": [{"min_sensors": 2, "severity": "x"}]}, "rule_id"),
        ({"rule_id": "bad id!", "levels": [{"min_sensors": 2, "severity": "x"}]},
         "rule_id"),
        ({"rule_id": "r", "levels": []}, "levels"),
        ({"rule_id": "r", "levels": [{"min_sensors": 1, "severity": "x"}]},
         "min_sensors"),
        ({"rule_id": "r", "levels": [{"min_sensors": 2, "severity": ""}]},
         "severity"),
        ({"rule_id": "r", "levels": [{"min_sensors": 2, "severity": "a"},
                                     {"min_sensors": 2, "severity": "b"}]},
         "distinct"),
        ({"rule_id": "r", "event_types": ["exploded"],
          "levels": [{"min_sensors": 2, "severity": "x"}]}, "unknown event"),
    ])
    def test_invalid_rules_rejected(self, payload, match):
        with pytest.raises(RuleError, match=match):
            validate_rule("tiny", payload)

    def test_match_level_picks_highest_severity(self):
        rule = validate_rule("tiny", {
            "rule_id": "ladder", "event_types": ["new"],
            "levels": [{"min_sensors": 2, "severity": "info"},
                       {"min_sensors": 3, "severity": "critical"}],
        })
        event = {"type": "new", "cap": {"sensors": ["a", "b", "c"],
                                        "attributes": ["temperature"]}}
        assert match_level(rule, event)["severity"] == "critical"
        event["cap"]["sensors"] = ["a", "b"]
        assert match_level(rule, event)["severity"] == "info"
        event["type"] = "retired"
        assert match_level(rule, event) is None

    def test_attribute_filter(self):
        rule = validate_rule("tiny", {
            "rule_id": "temp", "attribute": "temperature",
            "levels": [{"min_sensors": 2, "severity": "warn"}],
        })
        event = {"type": "new", "cap": {"sensors": ["a", "b"],
                                        "attributes": ["humidity"]}}
        assert match_level(rule, event) is None
        event["cap"]["attributes"] = ["humidity", "temperature"]
        assert match_level(rule, event)["severity"] == "warn"

    def test_evaluate_rules_is_deterministic_and_addressed(self):
        rule = validate_rule("tiny", {
            "rule_id": "r1", "levels": [{"min_sensors": 2, "severity": "warn"}],
        })
        event = {"event_id": "ev-abc", "dataset": "tiny", "type": "new",
                 "epoch": 2, "seq": 5,
                 "cap": {"sensors": ["a", "b"], "attributes": ["temperature"]}}
        alerts = evaluate_rules([rule], [event])
        assert [a["alert_id"] for a in alerts] == ["r1:ev-abc"]
        assert alerts[0]["severity"] == "warn" and alerts[0]["num_sensors"] == 2


class TestStreamSession:
    def session(self, db, dataset, params):
        return StreamSession(db, dataset, params, cache_key(dataset.name, params))

    def test_epoch_zero_baseline_emits_no_events(self, tiny_dataset):
        db = Database()
        session = self.session(db, tiny_dataset, make_params())
        assert session.mined_epoch == 0 and session.next_seq == 1
        assert [c["sensors"] for c in session.caps] == [["a", "b"]]
        assert read_events(db, "tiny") == []

    def test_epochs_mine_incrementally_and_feed_monotone(self, tiny_dataset):
        db = Database()
        params = make_params()
        session = self.session(db, tiny_dataset, params)
        levels = start_levels(tiny_dataset)
        # Epoch 1: a+b co-jump -> their CAP extends.
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"a", "b"}))
        events, _ = session.process_epoch(1)
        assert [(e["type"], e["cap"]["sensors"], e["seq"]) for e in events] == [
            ("extended", ["a", "b"], 1)
        ]
        # Epoch 2: c+d reach min_support -> a new CAP.
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"c", "d"}))
        events, _ = session.process_epoch(2)
        assert [(e["type"], e["cap"]["sensors"], e["seq"]) for e in events] == [
            ("new", ["c", "d"], 2)
        ]
        # Epoch 3: flat batch -> no affected components, no events.
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, set()))
        events, _ = session.process_epoch(3)
        assert events == [] and session.mined_epoch == 3
        feed = read_events(db, "tiny")
        assert [e["seq"] for e in feed] == [1, 2]

    def test_out_of_order_epoch_rejected(self, tiny_dataset):
        db = Database()
        session = self.session(db, tiny_dataset, make_params())
        levels = start_levels(tiny_dataset)
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, set()))
        with pytest.raises(ValueError, match="out of order"):
            session.process_epoch(2)

    def test_crash_replay_duplicates_nothing(self, tiny_dataset):
        """Replaying an epoch re-inserts neither events nor alerts."""
        db = Database()
        params = make_params()
        db.collection(ALERT_RULES).insert_one(
            validate_rule("tiny", {
                "rule_id": "pair",
                "levels": [{"min_sensors": 2, "severity": "warning"}],
            })
        )
        session = self.session(db, tiny_dataset, params)
        baseline = [dict(c) for c in session.caps]
        levels = start_levels(tiny_dataset)
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"a", "b"}))
        events, fired = session.process_epoch(1)
        assert len(events) == 1 and len(fired) == 1
        # Roll the high-water mark back as if the worker died immediately
        # after the events landed but the session state was lost.
        db.collection(STREAM_STATE).update_one(
            {"name": "tiny"},
            {"mined_epoch": 0, "caps": baseline, "next_seq": 1},
        )
        replayed = self.session(db, tiny_dataset, params)
        events2, fired2 = replayed.process_epoch(1)
        assert [e["event_id"] for e in events2] == [e["event_id"] for e in events]
        assert fired2 == []  # the alert fired exactly once, ever
        assert len(db.collection(CAP_EVENTS).find({"dataset": "tiny"})) == 1
        assert len(db.collection("alerts").find({"dataset": "tiny"})) == 1

    def test_new_session_resumes_from_high_water_mark(self, tiny_dataset):
        db = Database()
        params = make_params()
        first = self.session(db, tiny_dataset, params)
        levels = start_levels(tiny_dataset)
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"a", "b"}))
        first.process_epoch(1)
        resumed = self.session(db, tiny_dataset, params)
        assert resumed.mined_epoch == 1 and resumed.next_seq == first.next_seq
        assert resumed.caps == first.caps
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, {"c", "d"}))
        events, _ = resumed.process_epoch(2)
        assert [e["seq"] for e in events] == [2]


class TestStreamMetrics:
    def test_counters_and_lag_gauge_exposed(self, tiny_dataset):
        from repro.obs.metrics import get_registry

        db = Database()
        levels = start_levels(tiny_dataset)
        append_batch(db, tiny_dataset, next_batch(tiny_dataset, db, levels, set()))
        rendered = get_registry().render()
        assert "repro_stream_batches_total" in rendered
        assert "repro_stream_lag_seconds" in rendered
        assert "repro_alerts_fired_total" in rendered
