"""Live-server stream e2e: three batches through a real resident miner.

The acceptance path from the issue, over actual sockets and a real store:
upload -> open a streaming job -> register an alert rule -> append three
observation batches -> the feed shows the exact per-epoch CAP delta, a
stored cursor resumes mid-stream, the rule fires exactly once per
matching event, and the CLI can tail the feed afterwards.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from datetime import datetime, timedelta

import pytest

from tests.jobs.harness import SRC_DIR, ServerProcess, upload_dataset

PARAMS = {"evolving_rate": 1.0, "distance_threshold": 2.0,
          "max_attributes": 3, "min_support": 3}

RULE = {"rule_id": "co-move", "name": "Co-moving sensors",
        "event_types": ["new", "extended"],
        "levels": [{"min_sensors": 2, "severity": "warning"},
                   {"min_sensors": 3, "severity": "critical"}]}


class BatchFeeder:
    """Client-side batch builder that keeps the sampling grid and value
    levels continuous across batches (and across server restarts)."""

    def __init__(self, dataset):
        self.dataset = dataset
        self.next_start = dataset.timeline[-1] + timedelta(hours=1)
        self.levels = {
            sid: float(dataset.values(sid)[-1]) for sid in dataset.sensor_ids
        }

    def batch(self, jump_sensors, length=3, jump=5.0):
        timeline = [
            (self.next_start + timedelta(hours=i)).isoformat()
            for i in range(length)
        ]
        self.next_start += timedelta(hours=length)
        series = {}
        for sid in self.dataset.sensor_ids:
            row = []
            for i in range(length):
                if i == 1 and sid in jump_sensors:
                    self.levels[sid] += jump
                row.append(self.levels[sid])
            series[sid] = row
        return {"timeline": timeline, "series": series}


def append(server: ServerProcess, name: str, batch: dict) -> dict:
    status, receipt = server.post_json(
        f"/api/v1/datasets/{name}/observations", json_body=batch
    )
    assert status == 202, (status, receipt)
    return receipt


def poll_events(server, name, cursor, *, expect, timeout=60.0):
    """Long-poll the feed until ``expect`` events past ``cursor`` arrive."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, page = server.get_json(
            f"/api/v1/datasets/{name}/events?cursor={cursor}&wait=10"
        )
        assert status == 200, (status, page)
        if len(page["events"]) >= expect:
            return page
        time.sleep(0.1)
    raise AssertionError(f"feed never showed {expect} events past {cursor}")


def test_live_stream_end_to_end(tmp_path, tiny_dataset):
    store = tmp_path / "db.json"
    with ServerProcess(store, lease_seconds=2.0, worker_poll=0.2) as server:
        upload_dataset(server, tiny_dataset)

        status, rule = server.post_json(
            "/api/v1/datasets/tiny/alert-rules", json_body=RULE
        )
        assert status == 201 and rule["replaced"] is False

        status, job = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": PARAMS, "mode": "streaming"},
        )
        assert status == 202, (status, job)
        assert job["kind"] == "stream" and job["deduplicated"] is False
        job_id = job["job_id"]

        # Resubmission dedups onto the live resident job.
        status, again = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": PARAMS, "mode": "streaming"},
        )
        assert status == 202
        assert again["deduplicated"] is True and again["job_id"] == job_id

        feeder = BatchFeeder(tiny_dataset)

        # Epoch 1: a+b co-jump -> their existing CAP extends.
        receipt = append(server, "tiny", feeder.batch({"a", "b"}))
        assert receipt["epoch"] == 1 and receipt["observations"] == 3
        page = poll_events(server, "tiny", 0, expect=1)
        (event,) = page["events"]
        assert event["type"] == "extended"
        assert event["cap"]["sensors"] == ["a", "b"]
        assert event["epoch"] == 1 and event["seq"] == 1
        assert page["cursor"] == 1
        cursor = page["cursor"]

        # Epoch 2: c+d reach min_support -> a brand-new CAP.
        receipt = append(server, "tiny", feeder.batch({"c", "d"}))
        assert receipt["epoch"] == 2
        page = poll_events(server, "tiny", cursor, expect=1)
        (event,) = page["events"]
        assert event["type"] == "new"
        assert event["cap"]["sensors"] == ["c", "d"]
        assert event["epoch"] == 2 and event["seq"] == 2
        cursor = page["cursor"]

        # Epoch 3: a flat batch changes nothing -> no events, ever.
        append(server, "tiny", feeder.batch(set()))
        status, page = server.get_json(
            f"/api/v1/datasets/tiny/events?cursor={cursor}&wait=2"
        )
        assert status == 200 and page["events"] == []
        assert page["cursor"] == cursor == 2

        # A cursor stored at any point replays the identical prefix.
        status, replay = server.get_json("/api/v1/datasets/tiny/events?cursor=0")
        assert status == 200
        assert [e["seq"] for e in replay["events"]] == [1, 2]
        assert [e["type"] for e in replay["events"]] == ["extended", "new"]

        # The SSE framing carries the same feed with resumable ids.
        status, body = server.request(
            "GET", "/api/v1/datasets/tiny/events/stream?cursor=0"
        )
        assert status == 200
        text = body.decode("utf-8")
        assert "id: 1\n" in text and "id: 2\n" in text
        assert "event: extended\n" in text and "event: new\n" in text

        # Both events match the rule at min_sensors=2 -> exactly two
        # warnings, one per event, never re-fired.
        status, alerts = server.get_json("/api/v1/datasets/tiny/alerts")
        assert status == 200
        fired = alerts["alerts"]
        assert [a["event_id"] for a in fired] == [e["event_id"]
                                                  for e in replay["events"]]
        assert {a["severity"] for a in fired} == {"warning"}
        assert len({a["alert_id"] for a in fired}) == 2
        status, by_rule = server.get_json(
            "/api/v1/datasets/tiny/alerts?rule=co-move"
        )
        assert status == 200 and len(by_rule["alerts"]) == 2

        # Satellite (d): the stream metric families are exposed.
        status, body = server.request("GET", "/api/v1/metrics")
        assert status == 200
        exposition = body.decode("utf-8")
        assert "repro_stream_batches_total" in exposition
        assert "repro_stream_lag_seconds" in exposition
        assert 'repro_alerts_fired_total{rule="co-move"} 2' in exposition
        status, stats = server.get_json("/api/v1/admin/stats")
        assert status == 200
        assert "repro_stream_batches_total" in json.dumps(stats)

        # The resident job is alive (claimed or parked between drains).
        status, doc = server.get_json(f"/api/v1/jobs/{job_id}")
        assert status == 200 and doc["state"] in ("queued", "running")

    # Server gone; the CLI reads the same durable feed and alert log.
    env = {"PYTHONPATH": str(SRC_DIR)}
    tail = subprocess.run(
        [sys.executable, "-m", "repro.cli", "stream", "tail", "tiny",
         "--store", str(store), "--cursor", "0"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert tail.returncode == 0, tail.stderr
    assert "extended" in tail.stdout and "c,d" in tail.stdout
    alerts_cli = subprocess.run(
        [sys.executable, "-m", "repro.cli", "alerts", "tiny",
         "--store", str(store)],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert alerts_cli.returncode == 0, alerts_cli.stderr
    assert "co-move" in alerts_cli.stdout and "warning" in alerts_cli.stdout

    # Alert firings were span-instrumented under the stream job.
    from repro.store.database import Database

    spans = Database(store).collection("spans").find()
    alert_spans = [s for s in spans if s.get("kind") == "alert"]
    assert len(alert_spans) == 2
    assert all(s["name"] == "alert:co-move" for s in alert_spans)
    assert all(s.get("parent_job_id") for s in alert_spans)


def test_stream_rejects_bad_batches_and_rules(tmp_path, tiny_dataset):
    with ServerProcess(tmp_path / "db.json", lease_seconds=2.0) as server:
        upload_dataset(server, tiny_dataset)
        # Off-grid batch -> 400 with the uniform error envelope.
        start = tiny_dataset.timeline[-1] + timedelta(hours=5)
        status, body = server.post_json(
            "/api/v1/datasets/tiny/observations",
            json_body={"timeline": [start.isoformat()],
                       "series": {sid: [0.0] for sid in tiny_dataset.sensor_ids}},
        )
        assert status == 400 and body["error"]["code"] == "invalid_batch"
        status, body = server.post_json(
            "/api/v1/datasets/unknown/observations",
            json_body={"timeline": [], "series": {}},
        )
        assert status == 404
        status, body = server.post_json(
            "/api/v1/datasets/tiny/alert-rules",
            json_body={"rule_id": "r", "levels": [{"min_sensors": 1,
                                                   "severity": "x"}]},
        )
        assert status == 400 and body["error"]["code"] == "invalid_rule"
        # Streaming requires a durable registry -- this server has one, but
        # segmentation is incompatible with incremental mining.
        status, body = server.post_json(
            "/api/v1/datasets/tiny/results",
            json_body={"parameters": {**PARAMS, "segmentation": "bottom_up",
                                      "segmentation_error": 0.5},
                       "mode": "streaming"},
        )
        assert status == 400 and body["error"]["code"] == "invalid_parameters"


def test_rule_lifecycle_roundtrip(tmp_path, tiny_dataset):
    with ServerProcess(tmp_path / "db.json", lease_seconds=2.0) as server:
        upload_dataset(server, tiny_dataset)
        status, _ = server.post_json("/api/v1/datasets/tiny/alert-rules",
                                     json_body=RULE)
        assert status == 201
        status, body = server.post_json("/api/v1/datasets/tiny/alert-rules",
                                        json_body=RULE)
        assert status == 201 and body["replaced"] is True
        status, listing = server.get_json("/api/v1/datasets/tiny/alert-rules")
        assert status == 200
        assert [r["rule_id"] for r in listing["rules"]] == ["co-move"]
        assert "rule_uid" not in listing["rules"][0]
        status, _ = server.request(
            "DELETE", "/api/v1/datasets/tiny/alert-rules/co-move"
        )
        assert status == 204
        status, listing = server.get_json("/api/v1/datasets/tiny/alert-rules")
        assert listing["rules"] == []
        status, _ = server.request(
            "DELETE", "/api/v1/datasets/tiny/alert-rules/co-move"
        )
        assert status == 404
