"""Failure injection and awkward-input tests across the stack.

Production systems earn trust in the unhappy paths: corrupted snapshots,
unwritable disks, oversized requests, weird-but-legal data.  Each test
injects one failure and checks the system degrades the way it promises.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.miner import MiscelaMiner
from repro.core.parameters import MiningParameters
from repro.core.types import Sensor, SensorDataset
from repro.data.datasets import recommended_parameters
from repro.data.synthetic import generate_santander
from repro.server.app import TestClient, create_app
from repro.store.database import Database
from tests.conftest import make_timeline, step_series


class TestStoreCorruption:
    def test_truncated_snapshot_quarantined(self, tmp_path):
        path = tmp_path / "db.json"
        db = Database(path, engine="snapshot")
        db["x"].insert_one({"a": 1})
        db.save()
        # Truncate the file mid-JSON.
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        # Graceful degradation: the bad file is quarantined, not fatal.
        reopened = Database.open(path)
        assert reopened["x"].count() == 0
        quarantined = [p for p in tmp_path.iterdir() if ".corrupt-" in p.name]
        assert len(quarantined) == 1
        # The torn bytes survive for post-mortems.
        assert quarantined[0].read_text() == raw[: len(raw) // 2]

    def test_save_failure_preserves_previous_snapshot(self, tmp_path):
        path = tmp_path / "db.json"
        db = Database(path, engine="snapshot")
        db["x"].insert_one({"a": 1})
        db.save()
        before = path.read_text()

        # Inject: a document that cannot be JSON-encoded.
        db["x"].insert_one({"bad": {"nested": bytes(b"\x00")}})
        with pytest.raises(TypeError):
            db.save()
        # Atomic write: the old snapshot is untouched and no temp litter.
        assert path.read_text() == before
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_save_into_readonly_directory(self, tmp_path):
        target_dir = tmp_path / "ro"
        target_dir.mkdir()
        db = Database()
        db["x"].insert_one({"a": 1})
        os.chmod(target_dir, 0o500)
        try:
            if os.access(target_dir, os.W_OK):  # running as root: chmod is advisory
                pytest.skip("directory permissions not enforced for this user")
            with pytest.raises(OSError):
                db.save(target_dir / "db.json")
        finally:
            os.chmod(target_dir, 0o700)


class TestServerUnhappyPaths:
    def test_oversized_chunk_rejected_with_413(self):
        app = create_app(body_limit=1024)
        client = TestClient(app)
        begin = client.post(
            "/datasets/x/upload/begin",
            json_body={
                "location_csv": "id,attribute,lat,lon\ns,t,0,0\n",
                "attribute_csv": "t\n",
            },
        )
        assert begin.status == 201
        big = "id,attribute,time,data\n" + "s,t,2016-03-01 00:00:00,1\n" * 200
        resp = client.post("/datasets/x/upload/chunk", text_body=big)
        assert resp.status == 413

    def test_abandoned_upload_does_not_leak_into_registry(self):
        client = TestClient(create_app())
        client.post(
            "/datasets/ghost/upload/begin",
            json_body={
                "location_csv": "id,attribute,lat,lon\ns,t,0,0\n",
                "attribute_csv": "t\n",
            },
        )
        # Never finished: dataset list stays empty, mining 404s.
        assert client.get("/datasets").json() == {"datasets": []}
        params = recommended_parameters("santander").to_document()
        assert client.post(
            "/mine", json_body={"dataset": "ghost", "parameters": params}
        ).status == 404

    def test_failed_finish_clears_pending_upload(self):
        client = TestClient(create_app())
        client.post(
            "/datasets/x/upload/begin",
            json_body={
                "location_csv": "id,attribute,lat,lon\ns,t,0,0\n",
                "attribute_csv": "t\n",
            },
        )
        # One chunk referencing an undeclared sensor -> finish must 400.
        client.post(
            "/datasets/x/upload/chunk",
            text_body="id,attribute,time,data\nghost,t,2016-03-01 00:00:00,1\n"
                      "ghost,t,2016-03-01 01:00:00,2\n",
        )
        assert client.post("/datasets/x/upload/finish").status == 400
        # The pending state is gone: another finish now conflicts (409),
        # it does not retry the bad data.
        assert client.post("/datasets/x/upload/finish").status == 409

    def test_malformed_json_body_is_400_not_500(self):
        client = TestClient(create_app())
        resp = client.post("/mine", text_body="{not json")
        assert resp.status == 400


class TestAwkwardData:
    def test_co_located_sensors_are_distinct(self):
        """Paper footnote 2: same location, different attributes."""
        n = 12
        timeline = make_timeline(n)
        sensors = [
            Sensor("t0", "temperature", 43.0, -3.0),
            Sensor("h0", "humidity", 43.0, -3.0),  # exactly co-located
        ]
        measurements = {
            "t0": step_series(n, [3, 7]),
            "h0": step_series(n, [3, 7], base=60.0),
        }
        ds = SensorDataset("colo", timeline, sensors, measurements)
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=0.1, max_attributes=2, min_support=2
        )
        result = MiscelaMiner(params).mine(ds)
        assert {c.key() for c in result.caps} == {("h0", "t0")}

    def test_constant_series_produces_no_patterns(self):
        n = 20
        timeline = make_timeline(n)
        sensors = [
            Sensor("a", "temperature", 43.0, -3.0),
            Sensor("b", "humidity", 43.0005, -3.0),
        ]
        measurements = {"a": np.full(n, 5.0), "b": np.full(n, 6.0)}
        ds = SensorDataset("flat", timeline, sensors, measurements)
        params = MiningParameters(
            evolving_rate=0.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        assert MiscelaMiner(params).mine(ds).caps == []

    def test_all_nan_sensor_is_inert(self):
        n = 16
        timeline = make_timeline(n)
        sensors = [
            Sensor("a", "temperature", 43.0, -3.0),
            Sensor("b", "humidity", 43.0005, -3.0),
            Sensor("dead", "light", 43.0002, -3.0),
        ]
        measurements = {
            "a": step_series(n, [3, 7, 11]),
            "b": step_series(n, [3, 7, 11], base=60.0),
            "dead": np.full(n, np.nan),
        }
        ds = SensorDataset("dead1", timeline, sensors, measurements)
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=3, min_support=2
        )
        result = MiscelaMiner(params).mine(ds)
        assert {c.key() for c in result.caps} == {("a", "b")}

    def test_extreme_missing_rate_still_mines(self):
        ds = generate_santander(seed=1, neighbourhoods=3, steps=240, missing_rate=0.5)
        params = recommended_parameters("santander").with_updates(min_support=2)
        result = MiscelaMiner(params).mine(ds)  # must not raise
        for cap in result.caps:
            assert cap.support >= 2

    def test_minimal_two_step_dataset(self):
        timeline = make_timeline(2)
        sensors = [
            Sensor("a", "temperature", 43.0, -3.0),
            Sensor("b", "humidity", 43.0005, -3.0),
        ]
        measurements = {
            "a": np.array([0.0, 5.0]),
            "b": np.array([0.0, 5.0]),
        }
        ds = SensorDataset("mini", timeline, sensors, measurements)
        params = MiningParameters(
            evolving_rate=1.0, distance_threshold=1.0, max_attributes=2, min_support=1
        )
        result = MiscelaMiner(params).mine(ds)
        assert len(result.caps) == 1
        assert result.caps[0].evolving_indices == (1,)
