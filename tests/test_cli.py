"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_mine_flags(self):
        args = build_parser().parse_args(
            ["mine", "--dataset", "covid19", "--min-support", "5", "--direction-aware"]
        )
        assert args.dataset == "covid19"
        assert args.min_support == 5
        assert args.direction_aware


class TestInventory:
    def test_prints_all_datasets(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        for name in ("santander", "china6", "china13", "covid19"):
            assert name in out
        assert "2329936" in out  # the paper's Santander record count


class TestSchema:
    def test_prints_json_schema(self, capsys):
        assert main(["schema"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "/api/v1/results/{key}/caps" in payload["paths"]

    def test_out_then_check_round_trips(self, tmp_path, capsys):
        target = tmp_path / "API.md"
        assert main(["schema", "--out", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["schema", "--check", str(target)]) == 0
        assert "route parity OK" in capsys.readouterr().out


class TestGenerate:
    def test_writes_csv_directory(self, tmp_path, capsys):
        out = tmp_path / "csvs"
        assert main(["generate", "covid19", "--seed", "3", "--out", str(out)]) == 0
        assert (out / "data.csv").exists()
        assert (out / "location.csv").exists()
        assert (out / "attribute.csv").exists()

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "tokyo", "--out", "/tmp/x"])


class TestMine:
    def test_mines_named_dataset(self, capsys):
        assert main(["mine", "--dataset", "covid19", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "CAPs in" in out
        assert "support" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "caps.json"
        assert main(["mine", "--dataset", "covid19", "--json", str(path)]) == 0
        caps = json.loads(path.read_text())
        assert isinstance(caps, list) and caps
        assert "sensors" in caps[0]

    def test_async_watch_submits_and_polls(self, capsys):
        assert main(
            ["mine", "--dataset", "covid19", "--top", "3",
             "--async", "--watch", "--poll-interval", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out
        assert "succeeded" in out
        assert "CAPs in" in out  # the same result table as the sync path

    def test_async_matches_sync_output_table(self, capsys):
        assert main(["mine", "--dataset", "covid19", "--top", "5"]) == 0
        sync_out = capsys.readouterr().out
        assert main(["mine", "--dataset", "covid19", "--top", "5", "--async"]) == 0
        async_out = capsys.readouterr().out
        # Drop the submit banner and the timing line; the CAP table matches.
        sync_table = sync_out.splitlines()[1:]
        async_table = [
            line for line in async_out.splitlines()
            if not line.startswith("submitted ") and "CAPs in" not in line
        ]
        assert async_table == sync_table

    def test_mine_from_data_dir(self, tmp_path, capsys):
        gen_dir = tmp_path / "gen"
        main(["generate", "covid19", "--out", str(gen_dir)])
        assert main(
            ["mine", "--data-dir", str(gen_dir), "--min-support", "8",
             "--distance-threshold", "25", "--max-attributes", "4"]
        ) == 0

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["mine", "--dataset", "tokyo"])

    def test_parameter_override_changes_results(self, capsys):
        main(["mine", "--dataset", "covid19", "--min-support", "1000"])
        out = capsys.readouterr().out
        assert out.startswith("0 CAPs")


class TestReport:
    def test_writes_html(self, tmp_path, capsys):
        path = tmp_path / "r.html"
        assert main(["report", "--dataset", "covid19", "--out", str(path)]) == 0
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestSweep:
    def test_prints_curve(self, capsys):
        assert main(
            ["sweep", "--dataset", "covid19", "--parameter", "min_support",
             "--values", "2,8,50"]
        ) == 0
        out = capsys.readouterr().out
        assert "min_support" in out and "caps" in out

    def test_svg_output(self, tmp_path, capsys):
        path = tmp_path / "sweep.svg"
        assert main(
            ["sweep", "--dataset", "covid19", "--parameter", "min_support",
             "--values", "2,8", "--svg", str(path)]
        ) == 0
        assert path.read_text().startswith("<svg")

    def test_bad_values(self):
        with pytest.raises(SystemExit, match="bad --values"):
            main(["sweep", "--dataset", "covid19", "--parameter", "min_support",
                  "--values", "2,x"])

    def test_unknown_parameter_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--dataset", "covid19", "--parameter", "magic",
                  "--values", "1"])


class TestCompare:
    def test_covid_split(self, capsys):
        assert main(["compare", "--dataset", "covid19", "--split", "2020-01-23"]) == 0
        out = capsys.readouterr().out
        assert "caps_before" in out
        assert "level shifts" in out

    def test_bad_date(self):
        with pytest.raises(SystemExit, match="bad --split"):
            main(["compare", "--dataset", "covid19", "--split", "someday"])


class TestStore:
    def _seed_store(self, tmp_path):
        from repro.store.database import Database

        path = tmp_path / "store.json"
        db = Database(path)
        for i in range(5):
            db["caps"].insert_one({"i": i})
        db["caps"].delete_many({"i": {"$lte": 2}})
        return path

    def test_verify_clean_store(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(["store", "verify", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "caps.log" in out and "[ok]" in out

    def test_verify_flags_torn_tail(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        with open(tmp_path / "store.json.wal" / "caps.log", "ab") as handle:
            handle.write(b"\x01torn")
        assert main(["store", "verify", "--store", str(path)]) == 1
        assert "[TORN]" in capsys.readouterr().out

    def test_compact_rewrites_live_state(self, tmp_path, capsys):
        from repro.store.database import Database

        path = self._seed_store(tmp_path)
        assert main(["store", "compact", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "caps" in out and "compacted" in out
        assert [d["i"] for d in Database(path)["caps"].find()] == [3, 4]

    def test_missing_store_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no store"):
            main(["store", "verify", "--store", str(tmp_path / "absent.json")])
