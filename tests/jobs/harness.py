"""Fault-injection harness: real store-backed servers, killed on purpose.

Durability claims are only worth what the tests that kill things can prove.
This module runs the actual ``repro.cli serve`` entry point in a subprocess
against a shared snapshot, drives it over real sockets, and takes it down
at chosen transition points:

* **deterministic crash points** — the ``REPRO_JOBS_FAULT`` environment
  variable makes :class:`repro.jobs.durable.DurableJobStore` hard-exit
  (``os._exit``) at a named point in the transition protocol, exactly as
  if ``kill -9`` landed there; ``REPRO_STORE_FAULT`` does the same one
  layer down, inside the WAL write path (:mod:`repro.store.wal`);
* **timing-based kills** — :meth:`ServerProcess.kill` sends a real
  ``SIGKILL``, typically while ``REPRO_JOBS_MINE_DELAY`` holds a claimed
  job mid-mine long enough to observe it ``running``;
* **execution audit** — ``REPRO_JOBS_EXEC_LOG`` makes every worker append
  one line per execution, so exactly-once assertions hold across any
  number of processes appending to one file.

The recovery matrix (``tests/jobs/test_recovery.py``) and the two-process
lease-contention suite (``tests/server/test_multiprocess_jobs.py``) are
built entirely from these pieces.
"""

from __future__ import annotations

import csv
import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.data.csv_io import dataset_to_rows, iter_chunks
from repro.data.schema import LOCATION_COLUMNS

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: Generous ceilings: CI runners are slow and single-core; a healthy run
#: uses a fraction of these.
READY_TIMEOUT = 60.0
REQUEST_TIMEOUT = 30.0
JOB_TIMEOUT = 120.0

TERMINAL = {"succeeded", "failed", "cancelled"}


class ServerDied(AssertionError):
    """The server subprocess exited before it became ready."""


class ServerProcess:
    """One ``repro serve`` subprocess bound to a shared store snapshot."""

    def __init__(
        self,
        store_path: Path,
        *,
        lease_seconds: float = 1.0,
        worker_poll: float = 0.2,
        job_workers: int = 1,
        worker_id: str | None = None,
        fault: str | None = None,
        store_fault: str | None = None,
        stream_fault: str | None = None,
        exec_log: Path | None = None,
        mine_delay: float | None = None,
        shard_delay: float | None = None,
        max_attempts: int | None = None,
        stream_retention: int | None = None,
        compact_seconds: float | None = None,
        start: bool = True,
    ) -> None:
        self.store_path = Path(store_path)
        self.args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--store", str(store_path),
            "--lease-seconds", str(lease_seconds),
            "--worker-poll", str(worker_poll),
            "--job-workers", str(job_workers),
        ]
        if worker_id:
            self.args += ["--worker-id", worker_id]
        if max_attempts is not None:
            self.args += ["--max-attempts", str(max_attempts)]
        if stream_retention is not None:
            self.args += ["--stream-retention", str(stream_retention)]
        if compact_seconds is not None:
            self.args += ["--compact-seconds", str(compact_seconds)]
        self.env = dict(os.environ)
        self.env["PYTHONPATH"] = (
            f"{SRC_DIR}{os.pathsep}{self.env['PYTHONPATH']}"
            if self.env.get("PYTHONPATH")
            else str(SRC_DIR)
        )
        self.env.pop("REPRO_JOBS_FAULT", None)
        self.env.pop("REPRO_STORE_FAULT", None)
        self.env.pop("REPRO_STREAM_FAULT", None)
        self.env.pop("REPRO_JOBS_MINE_DELAY", None)
        self.env.pop("REPRO_JOBS_SHARD_DELAY", None)
        if fault:
            self.env["REPRO_JOBS_FAULT"] = fault
        if store_fault:
            self.env["REPRO_STORE_FAULT"] = store_fault
        if stream_fault:
            self.env["REPRO_STREAM_FAULT"] = stream_fault
        if exec_log:
            self.env["REPRO_JOBS_EXEC_LOG"] = str(exec_log)
        if mine_delay:
            self.env["REPRO_JOBS_MINE_DELAY"] = str(mine_delay)
        if shard_delay:
            self.env["REPRO_JOBS_SHARD_DELAY"] = str(shard_delay)
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self.lines: list[str] = []
        self._reader: threading.Thread | None = None
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ServerProcess":
        self.proc = subprocess.Popen(
            self.args,
            env=self.env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        ready = threading.Event()

        def read() -> None:
            assert self.proc is not None and self.proc.stdout is not None
            for line in self.proc.stdout:
                self.lines.append(line.rstrip("\n"))
                if line.startswith("MISCELA_READY"):
                    self.port = int(line.split("port=")[1])
                    ready.set()
            ready.set()  # EOF: unblock the waiter either way

        self._reader = threading.Thread(target=read, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + READY_TIMEOUT
        while not ready.wait(timeout=0.1):
            if time.monotonic() > deadline:
                self.kill()
                raise ServerDied(f"server not ready in {READY_TIMEOUT}s: {self.lines}")
        if self.port is None:
            raise ServerDied(f"server exited before readiness: {self.lines}")
        return self

    def kill(self) -> int | None:
        """``kill -9`` — the whole point of this harness."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
        return self.proc.wait(timeout=REQUEST_TIMEOUT)

    def interrupt(self) -> int | None:
        """Graceful Ctrl-C: the server saves its snapshot on the way out."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
        return self.proc.wait(timeout=REQUEST_TIMEOUT)

    def terminate(self) -> int | None:
        """Graceful SIGTERM: workers release their claims on the way out."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=REQUEST_TIMEOUT)

    def wait_exit(self, timeout: float = REQUEST_TIMEOUT) -> int:
        """Wait for a fault-point exit (``os._exit``) to happen."""
        assert self.proc is not None
        return self.proc.wait(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.kill()

    # -- HTTP ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        json_body=None,
        text_body: str | None = None,
        timeout: float = REQUEST_TIMEOUT,
    ) -> tuple[int | None, bytes | None]:
        """One request; ``(None, None)`` when the server died mid-request.

        A fault-point exit tears the connection down before any response is
        written — for the crash tests that is the *expected* outcome, so it
        is reported, not raised.
        """
        assert self.port is not None
        data = None
        headers = {}
        if json_body is not None:
            data = json.dumps(json_body).encode()
            headers["Content-Type"] = "application/json"
        elif text_body is not None:
            data = text_body.encode()
            headers["Content-Type"] = "text/plain"
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
            return None, None

    def get_json(self, path: str):
        status, body = self.request("GET", path)
        return status, json.loads(body) if body else None

    def post_json(self, path: str, json_body=None, text_body=None):
        status, body = self.request("POST", path, json_body=json_body,
                                    text_body=text_body)
        return status, json.loads(body) if body else None


# -- dataset upload over real HTTP ----------------------------------------------


def upload_dataset(server: ServerProcess, dataset, chunk_lines: int = 10_000) -> None:
    """Run the three-step chunked upload against a live server."""
    data_rows, location_rows = dataset_to_rows(dataset)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(LOCATION_COLUMNS)
    for row in location_rows:
        writer.writerow([row.sensor_id, row.attribute, repr(row.lat), repr(row.lon)])
    status, _ = server.post_json(
        f"/api/v1/datasets/{dataset.name}/upload/begin",
        json_body={
            "location_csv": buffer.getvalue(),
            "attribute_csv": "\n".join(dataset.attributes) + "\n",
        },
    )
    assert status == 201, f"upload/begin -> {status}"
    for chunk in iter_chunks(data_rows, chunk_lines):
        status, _ = server.post_json(
            f"/api/v1/datasets/{dataset.name}/upload/chunk", text_body=chunk
        )
        assert status == 200, f"upload/chunk -> {status}"
    status, _ = server.post_json(f"/api/v1/datasets/{dataset.name}/upload/finish")
    assert status == 201, f"upload/finish -> {status}"


# -- job driving -----------------------------------------------------------------


def submit_async(server: ServerProcess, dataset_name: str, params_doc: dict):
    """Submit an async mine; returns the job resource, or ``None`` if the
    server died answering (a crash-point landing inside the submission)."""
    status, payload = server.post_json(
        f"/api/v1/datasets/{dataset_name}/results",
        json_body={"parameters": params_doc, "mode": "async"},
    )
    if status is None:
        return None
    assert status == 202, (status, payload)
    return payload


def submit_distributed(
    server: ServerProcess,
    dataset_name: str,
    params_doc: dict,
    plan_workers: int | None = None,
):
    """Submit a distributed (sharded) mine; ``None`` if the server died."""
    body = {"parameters": params_doc, "mode": "distributed"}
    if plan_workers is not None:
        body["plan_workers"] = plan_workers
    status, payload = server.post_json(
        f"/api/v1/datasets/{dataset_name}/results", json_body=body
    )
    if status is None:
        return None
    assert status == 202, (status, payload)
    return payload


def poll_job(server: ServerProcess, job_id: str, timeout: float = JOB_TIMEOUT) -> dict:
    """Poll one job to a terminal state (raises on timeout)."""
    deadline = time.monotonic() + timeout
    doc = None
    while time.monotonic() < deadline:
        status, doc = server.get_json(f"/api/v1/jobs/{job_id}")
        if status == 200 and doc["state"] in TERMINAL:
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s: {doc}")


def wait_for_state(
    server: ServerProcess, job_id: str, state: str, timeout: float = JOB_TIMEOUT
) -> dict:
    deadline = time.monotonic() + timeout
    doc = None
    while time.monotonic() < deadline:
        status, doc = server.get_json(f"/api/v1/jobs/{job_id}")
        if status == 200 and doc["state"] == state:
            return doc
        if status == 200 and doc["state"] in TERMINAL:
            raise AssertionError(f"job {job_id} ended {doc['state']} waiting for {state}")
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state}: {doc}")


def list_jobs(server: ServerProcess) -> list[dict]:
    status, payload = server.get_json("/api/v1/jobs")
    assert status == 200
    return payload["jobs"]


def caps_page_bytes(server: ServerProcess, result_key: str, limit: int = 1000) -> bytes:
    """The raw CAP-page body — the byte-identity assertion's subject."""
    status, body = server.request(
        "GET", f"/api/v1/results/{result_key}/caps?limit={limit}"
    )
    assert status == 200, status
    return body


def read_exec_log(path: Path) -> list[tuple[str, str, int]]:
    """Parsed ``(job_id, worker_id, attempt)`` execution-audit entries."""
    if not Path(path).exists():
        return []
    entries = []
    for line in Path(path).read_text().splitlines():
        job_id, worker, attempt = line.split()
        entries.append((job_id, worker, int(attempt.split("=")[1])))
    return entries


def wait_for_exec_entries(
    path: Path, job_id: str, count: int = 1, timeout: float = REQUEST_TIMEOUT
) -> list[tuple[str, str, int]]:
    """Wait until the audit log shows ``count`` executions of one job.

    Kills that should interrupt a *started* execution must synchronize on
    the log line, not on the job's API state: the ``running`` transition
    becomes visible a hair before the worker writes its audit entry, and a
    ``SIGKILL`` landing in that gap would make the expected attempt
    invisible.
    """
    deadline = time.monotonic() + timeout
    entries: list[tuple[str, str, int]] = []
    while time.monotonic() < deadline:
        entries = [e for e in read_exec_log(path) if e[0] == job_id]
        if len(entries) >= count:
            return entries
        time.sleep(0.02)
    raise AssertionError(f"only {len(entries)} execution(s) of {job_id} logged")


def reference_caps_bytes(dataset, params_doc: dict, limit: int = 1000) -> bytes:
    """The ground-truth CAP page: a clean in-process mine of the same
    (dataset, parameters), rendered through the same v1 endpoint."""
    from repro.server.app import TestClient, create_app

    app = create_app(job_workers=1)
    try:
        client = TestClient(app)
        assert client.upload_dataset(dataset).status == 201
        created = client.post(
            f"/api/v1/datasets/{dataset.name}/results",
            json_body={"parameters": params_doc},
        )
        assert created.status == 201, created.json()
        key = created.json()["key"]
        page = client.get(f"/api/v1/results/{key}/caps?limit={limit}")
        assert page.status == 200
        return page.body
    finally:
        app.close()
