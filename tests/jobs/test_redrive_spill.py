"""Satellites: shard-output spilling and dead-letter redrive.

Shard outputs no longer ride inside the job document — they spill into a
dedicated ``shard_outputs`` collection keyed by shard id, keeping the
hot ``jobs`` collection (rewritten on every transition) small.  Dead
letters gain an administrative exit: ``redrive`` replays quarantined
jobs as fresh queued work with reset attempt counters.
"""

from __future__ import annotations

import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    DurableJobStore,
    JobStateError,
)
from repro.store.database import Database

KEY = "a" * 64
OTHER_KEY = "b" * 64
PARAMS = {"min_support": 5}
UNITS = [
    [{"component": 0, "seeds": ["s1"], "first_rank": 0}],
    [{"component": 1, "seeds": ["s2"], "first_rank": 0}],
]
OUTPUT = [{"tag": [0, 0], "caps": []}]


class Clock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        self.now += 0.001
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "db.json"


def make_store(store_path, clock, worker_id, **kwargs) -> DurableJobStore:
    store = DurableJobStore(
        Database(store_path),
        worker_id=worker_id,
        clock=clock,
        lease_seconds=10.0,
        **kwargs,
    )
    store.poll_refresh_seconds = 0.0
    return store


@pytest.fixture
def store(store_path, clock):
    return make_store(store_path, clock, "w1")


def plan(store, *, units=UNITS):
    job, created = store.open_job("ds", PARAMS, KEY, distributed=True)
    assert created
    claimed = store.claim_next()
    store.finish_planning(
        job.job_id, claimed.attempt, shard_units=units, mode="search",
        horizon=4, generation=0,
    )
    return job.job_id


class TestShardOutputSpill:
    def test_output_lands_in_dedicated_collection(self, store):
        parent_id = plan(store)
        shard = store.claim_next()
        store.complete_shard(shard.job_id, shard.attempt, OUTPUT, 0.25)
        spilled = store.database.collection("shard_outputs").find_one(
            {"shard_id": shard.job_id}
        )
        assert spilled is not None
        assert spilled["parent_id"] == parent_id
        assert spilled["output"] == OUTPUT
        assert spilled["elapsed_seconds"] == 0.25
        # The hot job document stays lean: no inline output payload.
        job_doc = store.database.collection("jobs").find_one(
            {"job_id": shard.job_id}
        )
        assert "output" not in job_doc

    def test_shard_outputs_reads_the_spill(self, store):
        parent_id = plan(store)
        for _ in range(2):
            shard = store.claim_next()
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        outputs = store.shard_outputs(parent_id)
        assert [entry["output"] for entry in outputs] == [OUTPUT, OUTPUT]

    def test_legacy_inline_output_still_readable(self, store):
        """Stores written before the spill keep their inline outputs."""
        parent_id = plan(store)
        for _ in range(2):
            shard = store.claim_next()
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        # Rewrite one shard to the pre-spill layout.
        spills = store.database.collection("shard_outputs")
        jobs = store.database.collection("jobs")
        legacy_id = f"{parent_id}-s000"
        spills.delete_many({"shard_id": legacy_id})
        document = jobs.find_one({"job_id": legacy_id})
        document["output"] = [{"tag": [9, 9], "caps": []}]
        jobs.replace_one({"job_id": legacy_id}, document)
        outputs = store.shard_outputs(parent_id)
        assert outputs[0]["output"] == [{"tag": [9, 9], "caps": []}]
        assert outputs[1]["output"] == OUTPUT

    def test_missing_output_everywhere_raises(self, store):
        parent_id = plan(store)
        for _ in range(2):
            shard = store.claim_next()
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT)
        store.database.collection("shard_outputs").delete_many(
            {"shard_id": f"{parent_id}-s000"}
        )
        with pytest.raises(JobStateError, match="output"):
            store.shard_outputs(parent_id)

    def test_replayed_completion_overwrites_spill_idempotently(self, store):
        plan(store)
        shard = store.claim_next()
        store.complete_shard(shard.job_id, shard.attempt, OUTPUT, 0.1)
        # A crash-replayed worker re-reports the same completion; CAS on
        # the job blocks the state change, but the spill write must not
        # have duplicated the document.
        with pytest.raises(JobStateError):
            store.complete_shard(shard.job_id, shard.attempt, OUTPUT, 0.2)
        spills = store.database.collection("shard_outputs").find(
            {"shard_id": shard.job_id}
        )
        assert len(spills) == 1


class TestRedrive:
    def exhaust(self, store, clock, job_id):
        """Burn through every attempt of one job via lease lapses."""
        while True:
            claimed = store.claim_next()
            if claimed is None:
                break
            clock.advance(11.0)
            store.reclaim_expired()
            if store.get(job_id).state == FAILED:
                break

    def test_redrive_revives_a_dead_lettered_job(self, store_path, clock):
        store = make_store(store_path, clock, "w1", max_attempts=1,
                           backoff_base=0.0)
        job, _ = store.open_job("ds", PARAMS, KEY)
        self.exhaust(store, clock, job.job_id)
        assert store.get(job.job_id).state == FAILED
        assert store.counters()["dead_lettered"] == 1

        revived = store.redrive()
        assert revived == [job.job_id]
        fresh = store.get(job.job_id)
        assert fresh.state == QUEUED
        assert fresh.attempt == 0  # counters reset: full retry budget again
        assert fresh.error is None and fresh.not_before is None
        assert store.counters()["dead_lettered"] == 0
        # The revived job is claimable like any new submission.
        assert store.claim_next().job_id == job.job_id

    def test_redrive_filters_by_job_id(self, store_path, clock):
        store = make_store(store_path, clock, "w1", max_attempts=1,
                           backoff_base=0.0)
        first, _ = store.open_job("ds", PARAMS, KEY)
        self.exhaust(store, clock, first.job_id)
        second, _ = store.open_job("ds", PARAMS, OTHER_KEY)
        self.exhaust(store, clock, second.job_id)
        assert store.counters()["dead_lettered"] == 2

        assert store.redrive([second.job_id]) == [second.job_id]
        assert store.get(second.job_id).state == QUEUED
        assert store.get(first.job_id).state == FAILED
        assert store.counters()["dead_lettered"] == 1

    def test_redrive_restores_distributed_lineage(self, store_path, clock):
        store = make_store(store_path, clock, "w1", max_attempts=1,
                           backoff_base=0.0)
        parent_id = plan(store)
        shard = store.claim_next()
        clock.advance(11.0)
        store.reclaim_expired()  # attempt 1 of 1 -> dead letter
        dead_id = shard.job_id
        assert store.get(dead_id).state == FAILED
        assert store.get(parent_id).state == FAILED
        sibling_id = next(
            child.job_id for child in store.children(parent_id)
            if child.job_id != dead_id and child.kind == "shard"
        )
        assert store.get(sibling_id).state == CANCELLED

        assert store.redrive() == [dead_id]
        assert store.get(dead_id).state == QUEUED
        assert store.get(sibling_id).state == QUEUED
        parent = store.get(parent_id)
        assert parent.state == RUNNING and parent.error is None
        # The revived tree runs to completion like a first-time plan.
        for _ in range(2):
            claimed = store.claim_next()
            store.complete_shard(claimed.job_id, claimed.attempt, OUTPUT)
        merge = store.claim_next()
        assert merge.kind == "merge"

    def test_redrive_with_nothing_quarantined_is_a_noop(self, store):
        assert store.redrive() == []

    def test_redrive_skips_already_resolved_jobs(self, store_path, clock):
        store = make_store(store_path, clock, "w1", max_attempts=1,
                           backoff_base=0.0)
        job, _ = store.open_job("ds", PARAMS, KEY)
        self.exhaust(store, clock, job.job_id)
        assert store.redrive() == [job.job_id]
        # The letter is consumed: a second redrive finds nothing, and the
        # (now queued) job is untouched.
        assert store.redrive() == []
        assert store.get(job.job_id).state == QUEUED
